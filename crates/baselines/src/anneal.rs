//! Simulated annealing mapper — the `assign` baseline (Alfeld, Lepreau &
//! Ricci, "A solver for the network testbed mapping problem", CCR 2003).
//!
//! `assign` searches the space of *complete* assignments, accepting
//! cost-increasing moves with probability `exp(−Δ/T)` under a geometric
//! cooling schedule. We use the constrained-embedding cost of
//! [`crate::common::assignment_cost`] (violated edges + violated node
//! constraints); cost zero is a feasible embedding. Two move types, as in
//! `assign`: migrate one query node to a free host node, or swap the
//! images of two query nodes.

use crate::common::{assignment_cost, local_cost, BaselineResult};
use netembed::{Mapping, Problem};
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per epoch (0 < alpha < 1).
    pub alpha: f64,
    /// Moves per temperature epoch.
    pub epoch_len: u32,
    /// Total move budget.
    pub max_iters: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            t0: 4.0,
            alpha: 0.95,
            epoch_len: 500,
            max_iters: 200_000,
            seed: 1,
        }
    }
}

/// Run simulated annealing. Stops early when a zero-cost (feasible)
/// assignment is found.
pub fn anneal(problem: &Problem<'_>, params: &AnnealParams) -> BaselineResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let nq = problem.nq();
    let nr = problem.nr();

    // Random injective start: a partial Fisher-Yates over host ids.
    let mut pool: Vec<NodeId> = (0..nr as u32).map(NodeId).collect();
    for i in 0..nq {
        let j = rng.random_range(i..nr);
        pool.swap(i, j);
    }
    let mut assign: Vec<NodeId> = pool[..nq].to_vec();
    let mut in_use: Vec<bool> = vec![false; nr];
    for &r in &assign {
        in_use[r.index()] = true;
    }

    let mut cost = assignment_cost(problem, &assign);
    let mut best = assign.clone();
    let mut best_cost = cost;
    let mut t = params.t0;
    let mut iters = 0u64;

    'outer: while iters < params.max_iters && best_cost > 0 {
        for _ in 0..params.epoch_len {
            iters += 1;
            if iters >= params.max_iters || best_cost == 0 {
                break 'outer;
            }
            // Propose a move.
            let swap_move = nq >= 2 && rng.random_bool(0.5);
            if swap_move {
                let a = rng.random_range(0..nq);
                let mut b = rng.random_range(0..nq);
                while b == a {
                    b = rng.random_range(0..nq);
                }
                let (va, vb) = (NodeId(a as u32), NodeId(b as u32));
                let before = local_cost(problem, &assign, va) + local_cost(problem, &assign, vb);
                assign.swap(a, b);
                let after = local_cost(problem, &assign, va) + local_cost(problem, &assign, vb);
                if accept(before, after, t, &mut rng) {
                    // Recompute exactly: `before`/`after` can double-count
                    // an edge shared by the two swapped nodes, so they
                    // steer acceptance but are not a safe running delta.
                    cost = assignment_cost(problem, &assign);
                } else {
                    assign.swap(a, b);
                    continue;
                }
            } else {
                // Migrate one query node to a random free host node.
                let a = rng.random_range(0..nq);
                let va = NodeId(a as u32);
                let old = assign[a];
                // Draw a free host node.
                let mut target;
                let mut guard = 0;
                loop {
                    target = NodeId(rng.random_range(0..nr as u32));
                    if !in_use[target.index()] || target == old {
                        break;
                    }
                    guard += 1;
                    if guard > 64 {
                        break;
                    }
                }
                if in_use[target.index()] {
                    continue;
                }
                let before = local_cost(problem, &assign, va);
                assign[a] = target;
                let after = local_cost(problem, &assign, va);
                if accept(before, after, t, &mut rng) {
                    in_use[old.index()] = false;
                    in_use[target.index()] = true;
                    cost = assignment_cost(problem, &assign);
                } else {
                    assign[a] = old;
                    continue;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best.clone_from(&assign);
                if best_cost == 0 {
                    break 'outer;
                }
            }
        }
        t *= params.alpha;
        if t < 1e-4 {
            t = 1e-4; // floor: keep a trickle of exploration
        }
    }

    BaselineResult {
        mapping: Mapping::new(best),
        cost: best_cost,
        feasible: best_cost == 0,
        iterations: iters,
        elapsed: start.elapsed(),
    }
}

fn accept(before: u64, after: u64, t: f64, rng: &mut StdRng) -> bool {
    if after <= before {
        return true;
    }
    let delta = (after - before) as f64;
    rng.random_bool((-delta / t).exp().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netembed::check_mapping;
    use netgraph::{Direction, Network};

    fn clique_host(n: usize) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i + j) % 7 * 10) as f64);
            }
        }
        h
    }

    fn ring_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            q.add_edge(ids[i], ids[(i + 1) % n]);
        }
        q
    }

    #[test]
    fn solves_easy_feasible_instance() {
        let h = clique_host(10);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let r = anneal(&p, &AnnealParams::default());
        assert!(r.feasible, "cost stuck at {}", r.cost);
        check_mapping(&p, &r.mapping).unwrap();
    }

    #[test]
    fn solves_constrained_instance() {
        let h = clique_host(12);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();
        let r = anneal(&p, &AnnealParams::default());
        if r.feasible {
            check_mapping(&p, &r.mapping).unwrap();
        }
        // Must at least have made progress from a random start.
        assert!(r.cost <= 4);
    }

    #[test]
    fn infeasible_instance_burns_budget() {
        let h = clique_host(6);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let params = AnnealParams {
            max_iters: 5_000,
            ..Default::default()
        };
        let r = anneal(&p, &params);
        assert!(!r.feasible);
        assert_eq!(r.iterations, 5_000); // no way to prove infeasibility
    }

    #[test]
    fn deterministic_per_seed() {
        let h = clique_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let r1 = anneal(&p, &AnnealParams::default());
        let r2 = anneal(&p, &AnnealParams::default());
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(r1.iterations, r2.iterations);
    }
}

//! Shared infrastructure for the baseline mappers: assignment cost and the
//! common result type.

use netembed::{Mapping, Problem};
use netgraph::NodeId;
use std::time::Duration;

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The best assignment found (always complete, possibly infeasible).
    pub mapping: Mapping,
    /// Cost of that assignment (0 ⇒ feasible embedding).
    pub cost: u64,
    /// True when `cost == 0` (a feasible embedding was found).
    pub feasible: bool,
    /// Iterations / generations consumed.
    pub iterations: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Cost of a complete assignment: the number of violated requirements.
///
/// * +1 per query edge whose endpoints' images have no host edge, or whose
///   host edge fails the constraint expression;
/// * +1 per query node whose image fails the node constraint.
///
/// Zero cost ⇔ feasible embedding (matches [`netembed::check_mapping`]).
/// Constraint type-errors are treated as violations — metaheuristics have
/// no error channel mid-schedule, and a malformed query then simply never
/// reaches cost zero.
pub fn assignment_cost(problem: &Problem<'_>, assign: &[NodeId]) -> u64 {
    let mut cost = 0u64;
    for q in problem.query.node_ids() {
        match problem.node_ok(q, assign[q.index()]) {
            Ok(true) => {}
            _ => cost += 1,
        }
    }
    for qe in problem.query.edge_refs() {
        let rs = assign[qe.src.index()];
        let rd = assign[qe.dst.index()];
        match problem.host.find_edge(rs, rd) {
            None => cost += 1,
            Some(re) => match problem.edge_ok(qe.id, qe.src, qe.dst, re, rs, rd) {
                Ok(true) => {}
                _ => cost += 1,
            },
        }
    }
    cost
}

/// Incremental cost delta helpers would be the next optimization; the
/// paper-era baselines recompute affected terms per move, which we mirror
/// by recomputing only the terms touching the moved nodes.
pub fn local_cost(problem: &Problem<'_>, assign: &[NodeId], v: NodeId) -> u64 {
    let mut cost = 0u64;
    match problem.node_ok(v, assign[v.index()]) {
        Ok(true) => {}
        _ => cost += 1,
    }
    let q = problem.query;
    let mut seen_edges: Vec<netgraph::EdgeId> = Vec::new();
    for &(_, e) in q.neighbors(v).iter().chain(q.in_neighbors(v)) {
        if seen_edges.contains(&e) {
            continue;
        }
        seen_edges.push(e);
        let (qs, qd) = q.edge_endpoints(e);
        let rs = assign[qs.index()];
        let rd = assign[qd.index()];
        match problem.host.find_edge(rs, rd) {
            None => cost += 1,
            Some(re) => match problem.edge_ok(e, qs, qd, re, rs, rd) {
                Ok(true) => {}
                _ => cost += 1,
            },
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, Network};

    fn nets() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..4 {
            let e = h.add_edge(ids[i], ids[(i + 1) % 4]);
            h.set_edge_attr(e, "d", (10 * (i + 1)) as f64);
        }
        (q, h)
    }

    #[test]
    fn zero_cost_iff_feasible() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "true").unwrap();
        // a→h0, b→h1, c→h2: edges (h0,h1), (h1,h2) exist → cost 0.
        assert_eq!(assignment_cost(&p, &[NodeId(0), NodeId(1), NodeId(2)]), 0);
        // a→h0, b→h2: no edge h0-h2 → cost 1; (h2,h1)? c→h1: edge h1-h2 ok.
        assert_eq!(assignment_cost(&p, &[NodeId(0), NodeId(2), NodeId(1)]), 1);
    }

    #[test]
    fn constraint_violations_counted() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "rEdge.d <= 20.0").unwrap();
        // (h0,h1)=10 ok, (h1,h2)=20 ok → 0.
        assert_eq!(assignment_cost(&p, &[NodeId(0), NodeId(1), NodeId(2)]), 0);
        // (h2,h3)=30 violates → 1.
        assert_eq!(assignment_cost(&p, &[NodeId(1), NodeId(2), NodeId(3)]), 1);
    }

    #[test]
    fn node_constraint_cost() {
        let (q, mut h) = nets();
        for i in 0..4 {
            h.set_node_attr(NodeId(i), "cpu", i as f64);
        }
        let p = Problem::new(&q, &h, "rNode.cpu >= 1.0").unwrap();
        // h0 has cpu 0 → node violation; both incident edges exist.
        assert_eq!(assignment_cost(&p, &[NodeId(0), NodeId(1), NodeId(2)]), 1);
    }

    #[test]
    fn local_cost_counts_touching_terms() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "true").unwrap();
        let assign = [NodeId(0), NodeId(2), NodeId(1)];
        // b (index 1) touches both query edges; (a,b) missing → 1, (b,c) ok.
        assert_eq!(local_cost(&p, &assign, NodeId(1)), 1);
        // a touches only (a,b).
        assert_eq!(local_cost(&p, &assign, NodeId(0)), 1);
        // c touches only (b,c) which is fine.
        assert_eq!(local_cost(&p, &assign, NodeId(2)), 0);
    }
}

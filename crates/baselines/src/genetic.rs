//! Genetic-algorithm mapper — the `wanassign` baseline (White, Lepreau &
//! Guruprasad, HotNets-I 2002; evaluated further in their 2002 OSDI paper).
//!
//! `wanassign` evolves a population of complete assignments. Chromosomes
//! here are injective assignment vectors; fitness is the negated violation
//! cost; selection is k-tournament; crossover copies a prefix from one
//! parent and repairs the suffix to injectivity from the other parent's
//! order (a standard permutation crossover restricted to the used host
//! nodes); mutation migrates or swaps nodes. Elitism keeps the best
//! chromosome. The paper reports wanassign handling only small networks
//! (tens of nodes) with minutes-scale runtimes — the §VII-F bench
//! reproduces that scalability gap.

use crate::common::{assignment_cost, BaselineResult};
use netembed::{Mapping, Problem};
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// GA parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneticParams {
    /// Population size.
    pub population: usize,
    /// Generations budget.
    pub generations: u64,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 64,
            generations: 400,
            tournament: 3,
            mutation_rate: 0.08,
            seed: 1,
        }
    }
}

/// Run the genetic algorithm. Stops early on a feasible chromosome.
pub fn genetic(problem: &Problem<'_>, params: &GeneticParams) -> BaselineResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let nq = problem.nq();
    let nr = problem.nr();

    let random_chromosome = |rng: &mut StdRng| -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = (0..nr as u32).map(NodeId).collect();
        for i in 0..nq {
            let j = rng.random_range(i..nr);
            pool.swap(i, j);
        }
        pool[..nq].to_vec()
    };

    let mut population: Vec<(Vec<NodeId>, u64)> = (0..params.population)
        .map(|_| {
            let c = random_chromosome(&mut rng);
            let cost = assignment_cost(problem, &c);
            (c, cost)
        })
        .collect();

    let mut generations = 0u64;
    let best_of = |pop: &[(Vec<NodeId>, u64)]| {
        pop.iter()
            .min_by_key(|(_, c)| *c)
            .expect("non-empty population")
            .clone()
    };
    let (mut best, mut best_cost) = best_of(&population);

    while generations < params.generations && best_cost > 0 {
        generations += 1;
        let mut next: Vec<(Vec<NodeId>, u64)> = Vec::with_capacity(params.population);
        // Elitism.
        next.push((best.clone(), best_cost));
        while next.len() < params.population {
            let a = tournament(&population, params.tournament, &mut rng);
            let b = tournament(&population, params.tournament, &mut rng);
            let mut child = crossover(a, b, nq, &mut rng);
            mutate(&mut child, nr, params.mutation_rate, &mut rng);
            let cost = assignment_cost(problem, &child);
            next.push((child, cost));
        }
        population = next;
        let (gb, gc) = best_of(&population);
        if gc < best_cost {
            best = gb;
            best_cost = gc;
        }
    }

    BaselineResult {
        mapping: Mapping::new(best),
        cost: best_cost,
        feasible: best_cost == 0,
        iterations: generations,
        elapsed: start.elapsed(),
    }
}

fn tournament<'p>(pop: &'p [(Vec<NodeId>, u64)], k: usize, rng: &mut StdRng) -> &'p [NodeId] {
    let mut best: Option<&(Vec<NodeId>, u64)> = None;
    for _ in 0..k.max(1) {
        let c = &pop[rng.random_range(0..pop.len())];
        if best.is_none_or(|b| c.1 < b.1) {
            best = Some(c);
        }
    }
    &best.expect("k ≥ 1").0
}

/// Prefix from `a`, remainder filled with unused genes of `b` (then of the
/// whole host id space) — keeps the chromosome injective.
fn crossover(a: &[NodeId], b: &[NodeId], nq: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let cut = rng.random_range(0..=nq);
    let mut child: Vec<NodeId> = a[..cut].to_vec();
    let mut used: std::collections::HashSet<NodeId> = child.iter().copied().collect();
    for &g in b {
        if child.len() >= nq {
            break;
        }
        if used.insert(g) {
            child.push(g);
        }
    }
    // Fallback fill from a's remainder (covers duplicates edge cases).
    for &g in &a[cut.min(a.len())..] {
        if child.len() >= nq {
            break;
        }
        if used.insert(g) {
            child.push(g);
        }
    }
    debug_assert_eq!(child.len(), nq);
    child
}

fn mutate(c: &mut [NodeId], nr: usize, rate: f64, rng: &mut StdRng) {
    let nq = c.len();
    for i in 0..nq {
        if !rng.random_bool(rate.clamp(0.0, 1.0)) {
            continue;
        }
        if nq >= 2 && rng.random_bool(0.5) {
            let j = rng.random_range(0..nq);
            c.swap(i, j);
        } else {
            // Migrate to a host node unused by this chromosome.
            let mut guard = 0;
            loop {
                let t = NodeId(rng.random_range(0..nr as u32));
                if !c.contains(&t) {
                    c[i] = t;
                    break;
                }
                guard += 1;
                if guard > 32 {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netembed::check_mapping;
    use netgraph::{Direction, Network};

    fn clique_host(n: usize) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i * j) % 6 * 10) as f64);
            }
        }
        h
    }

    fn star_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let hub = q.add_node("hub");
        for i in 1..n {
            let l = q.add_node(format!("l{i}"));
            q.add_edge(hub, l);
        }
        q
    }

    #[test]
    fn solves_easy_instance() {
        let h = clique_host(10);
        let q = star_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let r = genetic(&p, &GeneticParams::default());
        assert!(r.feasible, "cost stuck at {}", r.cost);
        check_mapping(&p, &r.mapping).unwrap();
    }

    #[test]
    fn chromosomes_stay_injective() {
        let h = clique_host(8);
        let q = star_query(5);
        let p = Problem::new(&q, &h, "rEdge.d <= 20.0").unwrap();
        let r = genetic(
            &p,
            &GeneticParams {
                generations: 50,
                ..Default::default()
            },
        );
        let mut seen = std::collections::HashSet::new();
        for (_, host) in r.mapping.iter() {
            assert!(seen.insert(host), "duplicate host node in chromosome");
        }
    }

    #[test]
    fn infeasible_burns_generations() {
        let h = clique_host(6);
        let q = star_query(3);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let r = genetic(
            &p,
            &GeneticParams {
                generations: 30,
                ..Default::default()
            },
        );
        assert!(!r.feasible);
        assert_eq!(r.iterations, 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let h = clique_host(8);
        let q = star_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let r1 = genetic(&p, &GeneticParams::default());
        let r2 = genetic(&p, &GeneticParams::default());
        assert_eq!(r1.mapping, r2.mapping);
    }
}

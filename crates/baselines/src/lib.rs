//! # baselines — prior network-mapping techniques, re-implemented
//!
//! §II and §VII-F of the paper position NETEMBED against three families of
//! earlier systems, none of which is available as reusable open source:
//!
//! * **`assign`** (Emulab/Netbed, Alfeld–Lepreau–Ricci 2003) — simulated
//!   annealing over complete assignments → [`anneal()`];
//! * **`wanassign`** (White et al. 2002) — a genetic algorithm → [`genetic()`];
//! * **Zhu–Ammar 2006** — greedy assignment minimizing a *stress* metric on
//!   host nodes/links → [`stress`].
//!
//! Each module implements the published algorithm skeleton against the same
//! [`netembed::Problem`] interface the NETEMBED algorithms use, so the
//! §VII-F comparison runs all five on identical workloads. The key
//! qualitative differences the experiments reproduce:
//!
//! * the metaheuristics give **no completeness guarantee** — on feasible
//!   instances they may fail, and on infeasible instances they can only
//!   burn their full iteration budget;
//! * their runtime scales with the iteration budget, not with the
//!   constrainedness of the query, so tightly-constrained queries that ECF
//!   solves in milliseconds still cost the full annealing schedule.

pub mod anneal;
pub mod common;
pub mod genetic;
pub mod stress;

pub use anneal::{anneal, AnnealParams};
pub use common::{assignment_cost, BaselineResult};
pub use genetic::{genetic, GeneticParams};
pub use stress::{stress_greedy, StressParams};

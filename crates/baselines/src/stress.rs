//! Greedy stress-minimizing mapper — the Zhu–Ammar baseline ("Algorithms
//! for assigning substrate network resources to virtual network
//! components", INFOCOM 2006).
//!
//! Zhu–Ammar assign virtual nodes greedily, choosing for each the feasible
//! substrate node with the least *stress* (load already placed on the node
//! and its links), with the goal of balancing load across virtual networks
//! sharing the substrate. Following the paper's remark that the algorithm
//! "can be extended to the constrained version of the problem by filtering
//! out infeasible assignments", each greedy choice only considers host
//! nodes consistent with the already-placed neighbors under the constraint
//! expression. There is **no backtracking** — when the greedy run dead-
//! ends it restarts with a different random tie-break, up to a restart
//! budget. This reproduces the baseline's characteristic failure mode:
//! false negatives on feasible instances.

use crate::common::BaselineResult;
use netembed::{Mapping, Problem};
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Stress-greedy parameters.
#[derive(Debug, Clone, Copy)]
pub struct StressParams {
    /// Randomized restarts before giving up.
    pub restarts: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StressParams {
    fn default() -> Self {
        StressParams {
            restarts: 20,
            seed: 1,
        }
    }
}

/// Per-host-node stress carried across queries: the caller can thread the
/// same vector through successive embeddings to reproduce the Zhu–Ammar
/// load-balancing behaviour. `stress[r]` counts placements on host node r.
pub type StressVector = Vec<u32>;

/// Run the stress-greedy mapper.
///
/// `stress` is the substrate load from previous placements (pass a zero
/// vector for a fresh substrate); on success the chosen nodes' stress is
/// *not* updated automatically — call [`apply_stress`] if the placement is
/// committed.
pub fn stress_greedy(
    problem: &Problem<'_>,
    params: &StressParams,
    stress: &StressVector,
) -> BaselineResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let nq = problem.nq();
    let nr = problem.nr();
    assert_eq!(stress.len(), nr, "stress vector must cover every host node");

    // Virtual nodes in descending degree order (place the hard ones first).
    let mut vorder: Vec<NodeId> = problem.query.node_ids().collect();
    vorder.sort_by_key(|&v| std::cmp::Reverse(problem.query.total_degree(v)));

    let mut iterations = 0u64;
    let mut best_partial: Vec<NodeId> = Vec::new();

    for _restart in 0..params.restarts.max(1) {
        let mut assign: Vec<Option<NodeId>> = vec![None; nq];
        let mut used = vec![false; nr];
        let mut ok = true;

        for &v in &vorder {
            iterations += 1;
            // Candidates: host nodes consistent with placed neighbors.
            let mut candidates: Vec<NodeId> = Vec::new();
            for r in problem.host.node_ids() {
                if used[r.index()] {
                    continue;
                }
                if !matches!(problem.node_ok(v, r), Ok(true)) {
                    continue;
                }
                let mut consistent = true;
                let q = problem.query;
                let mut seen_edges: Vec<netgraph::EdgeId> = Vec::new();
                for &(nb, e) in q.neighbors(v).iter().chain(q.in_neighbors(v)) {
                    if seen_edges.contains(&e) {
                        continue;
                    }
                    seen_edges.push(e);
                    let Some(rb) = assign[nb.index()] else {
                        continue;
                    };
                    let (qs, qd) = q.edge_endpoints(e);
                    let (rs, rd) = if qs == v { (r, rb) } else { (rb, r) };
                    let edge_ok = match problem.host.find_edge(rs, rd) {
                        None => false,
                        Some(re) => {
                            matches!(problem.edge_ok(e, qs, qd, re, rs, rd), Ok(true))
                        }
                    };
                    if !edge_ok {
                        consistent = false;
                        break;
                    }
                }
                if consistent {
                    candidates.push(r);
                }
            }
            if candidates.is_empty() {
                ok = false;
                break;
            }
            // Least-stress choice; random tie-break.
            candidates.shuffle(&mut rng);
            let pick = *candidates
                .iter()
                .min_by_key(|r| stress[r.index()])
                .expect("non-empty candidates");
            assign[v.index()] = Some(pick);
            used[pick.index()] = true;
        }

        let placed: Vec<NodeId> = assign.iter().flatten().copied().collect();
        if placed.len() > best_partial.len() {
            best_partial = placed;
        }
        if ok {
            let final_assign: Vec<NodeId> =
                assign.into_iter().map(|o| o.expect("complete")).collect();
            return BaselineResult {
                mapping: Mapping::new(final_assign),
                cost: 0,
                feasible: true,
                iterations,
                elapsed: start.elapsed(),
            };
        }
    }

    // Failed every restart: report the longest partial as an (infeasible)
    // assignment padded with arbitrary free nodes so the mapping is total.
    let mut used = vec![false; nr];
    for &r in &best_partial {
        used[r.index()] = true;
    }
    let mut pad = (0..nr as u32).map(NodeId).filter(|r| !used[r.index()]);
    let mut assign = best_partial;
    while assign.len() < nq {
        assign.push(pad.next().expect("host ≥ query"));
    }
    let cost = crate::common::assignment_cost(problem, &assign);
    BaselineResult {
        mapping: Mapping::new(assign),
        cost,
        feasible: false,
        iterations,
        elapsed: start.elapsed(),
    }
}

/// Commit a placement into the stress vector.
pub fn apply_stress(stress: &mut StressVector, mapping: &Mapping) {
    for (_, r) in mapping.iter() {
        stress[r.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netembed::check_mapping;
    use netgraph::{Direction, Network};

    fn clique_host(n: usize) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", (((i + j) % 5) * 10) as f64);
            }
        }
        h
    }

    fn ring_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            q.add_edge(ids[i], ids[(i + 1) % n]);
        }
        q
    }

    #[test]
    fn greedy_solves_unconstrained() {
        let h = clique_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let stress = vec![0; 8];
        let r = stress_greedy(&p, &StressParams::default(), &stress);
        assert!(r.feasible);
        check_mapping(&p, &r.mapping).unwrap();
    }

    #[test]
    fn stress_balances_load_across_queries() {
        let h = clique_host(9);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stress = vec![0u32; 9];
        // Three successive 3-node placements on a 9-node substrate should
        // spread across all 9 nodes when stress is honoured.
        for seed in 0..3 {
            let r = stress_greedy(
                &p,
                &StressParams {
                    seed,
                    ..Default::default()
                },
                &stress,
            );
            assert!(r.feasible);
            apply_stress(&mut stress, &r.mapping);
        }
        let max = *stress.iter().max().unwrap();
        assert_eq!(max, 1, "stress not balanced: {stress:?}");
    }

    #[test]
    fn no_backtracking_can_fail_on_feasible_instance() {
        // Host: two triangles joined by one bridge edge; query: a 4-ring.
        // C4 does not embed here at all, so greedy must report infeasible —
        // but more interestingly with restarts=1 on a *feasible* instance
        // whose greedy order dead-ends, it may fail. We assert only the
        // documented API behaviour: infeasible result has nonzero cost or
        // feasible=false and a total mapping.
        let h = clique_host(5);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d >= 1e9").unwrap();
        let stress = vec![0; 5];
        let r = stress_greedy(&p, &StressParams::default(), &stress);
        assert!(!r.feasible);
        assert_eq!(r.mapping.len(), 4);
        assert!(r.cost > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let h = clique_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();
        let stress = vec![0; 8];
        let r1 = stress_greedy(&p, &StressParams::default(), &stress);
        let r2 = stress_greedy(&p, &StressParams::default(), &stress);
        assert_eq!(r1.mapping, r2.mapping);
    }
}

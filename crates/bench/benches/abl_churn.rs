//! Ablation: in-place filter patching vs. full rebuilds under model
//! churn, end to end through the service.
//!
//! The scenario is the paper's monitoring loop: a warm service keeps
//! answering the same prepared request while the hosting model churns
//! — here a removal-only stream (link delays only ever rise, so filter
//! candidates only ever leave). Three delta disciplines against the
//! same fat-tree host and query:
//!
//! * **patch** — every commit goes through `update_dirty` with the
//!   touched endpoints declared: the epoch bump is repaired in place
//!   (`FilterMatrix::patch` re-evaluates only the dirty rows), so the
//!   warm submit stays a cache hit and the miss counter never moves
//!   after the cold build.
//! * **promote** — tracked no-op commits (empty dirty window): the
//!   superseded entry is re-keyed without touching a single cell; the
//!   floor the patch path is measured against.
//! * **rebuild** — the same mutations through plain `update`, which
//!   breaks the dirty chain: every commit invalidates the entry and
//!   the warm submit pays a full `O(query edges × host edges)` build —
//!   the pre-patch baseline.
//!
//! Reported per mode: median/p90 warm-submit latency across the churn
//! rounds plus the cache's `hits / misses / patches / promotions /
//! patch_rebuilds` ledger. The acceptance numbers are `misses == 1`
//! (the cold build only) with `patches == rounds` on the patch row,
//! against `misses == 1 + rounds` on the rebuild row.
//!
//! Results land in `BENCH_churn.json` at the workspace root
//! (committed, like `BENCH_scale.json`). Run with:
//!
//! ```text
//! cargo bench -p bench --bench abl_churn
//! ```

use netembed::{Options, SearchMode};
use netgraph::{Direction, Network, NodeId};
use service::{DirtySet, NetEmbedService, QueryRequest};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Removal-only churn commits per mode (one host link degraded per
/// round; the fat tree below has ~2k host links, so victims never
/// repeat).
const ROUNDS: usize = 128;

/// Host links whose delay stays in-constraint at generation time; the
/// churn pushes one per round past the threshold.
const DELAY_LIMIT: f64 = 0.045;

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct Row {
    mode: &'static str,
    rounds: usize,
    cold_submit_ns: u64,
    median_warm_ns: u64,
    p90_warm_ns: u64,
    hits: u64,
    misses: u64,
    patches: u64,
    promotions: u64,
    patch_rebuilds: u64,
}

/// The three delta disciplines, applied to round `i`'s victim link.
enum Discipline {
    Patch,
    Promote,
    Rebuild,
}

fn edge_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let x = q.add_node("x");
    let y = q.add_node("y");
    q.add_edge(x, y);
    q
}

fn run_mode(
    mode: &'static str,
    discipline: Discipline,
    host: &Network,
    victims: &[(NodeId, NodeId)],
) -> Row {
    let svc = NetEmbedService::new();
    svc.registry().register("dc", host.clone());
    let req = QueryRequest {
        host: "dc".into(),
        query: edge_query(),
        constraint: format!("rEdge.delay <= {DELAY_LIMIT}"),
        options: Options {
            mode: SearchMode::First,
            ..Options::default()
        },
    };

    let t = Instant::now();
    let cold = svc.submit(&req).expect("cold submit");
    let cold_submit_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(cold.stats.filter_cache_hits, 0, "{mode}: cold must build");
    assert!(cold.outcome.found_any(), "{mode}: base host feasible");

    let mut warm_ns: Vec<u64> = Vec::with_capacity(ROUNDS);
    for (src, dst) in victims.iter().copied().take(ROUNDS) {
        let degrade = move |net: &mut Network| {
            let e = net.find_edge(src, dst).expect("victim link exists");
            net.set_edge_attr(e, "delay", 1.0);
        };
        match discipline {
            Discipline::Patch => {
                svc.registry()
                    .update_dirty("dc", DirtySet::from_ids([src.0, dst.0]), degrade)
                    .expect("tracked commit");
            }
            Discipline::Promote => {
                svc.registry()
                    .update_dirty("dc", DirtySet::new(), |_net| {})
                    .expect("tracked no-op commit");
            }
            Discipline::Rebuild => {
                svc.registry().update("dc", degrade).expect("plain commit");
            }
        }
        let t = Instant::now();
        let warm = black_box(svc.submit(&req).expect("warm submit"));
        warm_ns.push(t.elapsed().as_nanos() as u64);
        assert!(
            warm.outcome.found_any(),
            "{mode}: churn left the query feasible"
        );
    }
    warm_ns.sort_unstable();

    let row = Row {
        mode,
        rounds: ROUNDS,
        cold_submit_ns,
        median_warm_ns: warm_ns[warm_ns.len() / 2],
        p90_warm_ns: percentile_ns(&warm_ns, 0.90),
        hits: svc.cache().hits(),
        misses: svc.cache().misses(),
        patches: svc.cache().patches(),
        promotions: svc.cache().promotions(),
        patch_rebuilds: svc.cache().patch_rebuilds(),
    };

    // The ledger *is* the acceptance: tracked removal-only churn never
    // rebuilds; the broken chain always does.
    match discipline {
        Discipline::Patch => {
            assert_eq!(row.misses, 1, "patch mode must only build once (cold)");
            assert_eq!(row.patches, ROUNDS as u64);
            assert_eq!(row.patch_rebuilds, 0);
        }
        Discipline::Promote => {
            assert_eq!(row.misses, 1, "promote mode must only build once (cold)");
            assert_eq!(row.promotions, ROUNDS as u64);
        }
        Discipline::Rebuild => {
            assert_eq!(
                row.misses,
                1 + ROUNDS as u64,
                "broken chain rebuilds per epoch"
            );
            assert_eq!(row.patches, 0);
        }
    }

    println!(
        "{:<8} rounds={:<4} cold {:>9} ns  warm median {:>9} ns  p90 {:>9} ns  hits={:<4} misses={:<4} patches={:<4} promotions={:<4} patch_rebuilds={}",
        row.mode,
        row.rounds,
        row.cold_submit_ns,
        row.median_warm_ns,
        row.p90_warm_ns,
        row.hits,
        row.misses,
        row.patches,
        row.promotions,
        row.patch_rebuilds,
    );
    row
}

fn write_json(nr: usize, nedges: usize, rows: &[Row], path: &PathBuf) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"abl_churn\",\n");
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"host_nodes\": {nr},\n"));
    out.push_str(&format!("  \"host_edges\": {nedges},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"rounds\": {}, \"cold_submit_ns\": {}, \
             \"median_warm_submit_ns\": {}, \"p90_warm_submit_ns\": {}, \
             \"hits\": {}, \"misses\": {}, \"patches\": {}, \"promotions\": {}, \
             \"patch_rebuilds\": {}}}{}\n",
            r.mode,
            r.rounds,
            r.cold_submit_ns,
            r.median_warm_ns,
            r.p90_warm_ns,
            r.hits,
            r.misses,
            r.patches,
            r.promotions,
            r.patch_rebuilds,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_churn.json");
}

fn main() {
    // k=16 Clos fabric, 16 hosts per edge switch: ~2.4k nodes, ~4k
    // links, 2048 of them host links — the churn victims.
    let host = topogen::fat_tree(
        &topogen::FatTreeParams {
            k: 16,
            hosts_per_edge: 16,
        },
        &mut topogen::rng(0xC0FE),
    );
    let victims: Vec<(NodeId, NodeId)> = host
        .edge_refs()
        .filter(|e| {
            host.node_attr_by_name(e.src, "tier")
                .and_then(netgraph::AttrValue::as_str)
                == Some("host")
                || host
                    .node_attr_by_name(e.dst, "tier")
                    .and_then(netgraph::AttrValue::as_str)
                    == Some("host")
        })
        .map(|e| (e.src, e.dst))
        .collect();
    assert!(victims.len() >= ROUNDS, "enough host links to churn");

    let (nr, nedges) = (host.node_count(), host.edge_count());
    let rows = vec![
        run_mode("promote", Discipline::Promote, &host, &victims),
        run_mode("patch", Discipline::Patch, &host, &victims),
        run_mode("rebuild", Discipline::Rebuild, &host, &victims),
    ];

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_churn.json");
    write_json(nr, nedges, &rows, &path);
    println!("\nwrote {}", path.display());
}

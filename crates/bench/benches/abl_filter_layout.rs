//! Ablation: hash-map filter layout (the seed) vs. the CSR-arena layout,
//! on the paper's clique (fig 13) and BRITE (fig 11) scenarios.
//!
//! Five measurements per scenario:
//!
//! * **build** — first-stage filter construction only
//!   (`HashFilterMatrix::build` vs `FilterMatrix::build`);
//! * **build_par** — the same construction via `FilterMatrix::build_par`
//!   at [`PAR_THREADS`] threads (bitwise-identical output; the JSON also
//!   records the machine's core count, since the speedup is bounded by
//!   physical parallelism);
//! * **search** — second stage only, over a prebuilt filter: the seed's
//!   allocating, hash-probing, `binary_search`-intersecting DFS vs. the
//!   allocation-free word-level CSR DFS. Both traverse the identical
//!   Lemma-1 order and see identical solution prefixes;
//! * **scratch_reuse** — the CSR search again, but through one caller-held
//!   `SearchScratch` reused across runs (the service batch path), vs. the
//!   fresh-arena-per-call `search_csr` series;
//! * **search_par / search_steal** — the parallel second stage at
//!   [`STEAL_WORKERS`] workers: `search_par` runs the scheduler with
//!   splitting disabled (the static strided root partition, the old
//!   code path), `search_steal` with the default work-stealing policy.
//!   On a multi-core box `search_steal` is where skewed scenarios (see
//!   the `skew-hub` row: one hub node owns every root subtree) catch
//!   up; on a 1-core box the pair documents the scheduler's overhead
//!   (the JSON records `host_cores` — compare `steal_overhead` there);
//! * **pool_cold / pool_warm** — the same stealing search with a fresh
//!   `ParallelScratch` (empty `WorkerPool` → per-run thread spawn+join,
//!   the pre-pool behaviour) vs. one reused scratch whose pool threads
//!   park between runs (the service steady state; zero spawns). The
//!   gap is pure thread-spawn cost, which dominates the µs-scale fig11
//!   parallel rows — compare `pool_warm_speedup` in the JSON;
//! * **planner_coalesce / submit_concurrent** — [`PLANNER_CLIENTS`]
//!   concurrent identical clients against a per-sample **fresh model
//!   epoch** (cold filter cache each time): `submit_concurrent` has
//!   each client go through `NetEmbedService::submit` independently
//!   (concurrent misses deduplicated by the cache's in-flight build
//!   table), `planner_coalesce` funnels them through the cross-request
//!   `service::Planner`, which groups equivalent pending requests and
//!   dispatches each group through one prepared pipeline.
//!   `coalesce_speedup` > 1.0 means grouping beat independent dispatch
//!   on this machine (see `host_cores`);
//! * **embed** — end-to-end bounded enumeration (build + search).
//!
//! Besides the stdout report, results land machine-readably in
//! `BENCH_filter.json` at the workspace root (committed, so the perf
//! trajectory of later PRs has a baseline). Run with:
//!
//! ```text
//! cargo bench -p bench --bench abl_filter_layout
//! ```

use bench::{bench_brite, bench_planetlab, planted};
use netembed::filter::reference::{self, HashFilterMatrix};
use netembed::order::{compute_order, predecessors};
use netembed::{
    ecf, parallel, CollectUpTo, Deadline, FilterMatrix, NodeOrder, Options, ParallelScratch,
    Problem, SearchMode, SearchScratch, SearchStats, StealPolicy,
};
use netgraph::Network;
use service::{NetEmbedService, QueryRequest};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use topogen::{clique_query, QueryWorkload};

/// Bounded enumeration cap (mirrors fig13's `UpTo` bound; keeps clique
/// scenarios finite).
const MATCH_CAP: usize = 2000;
/// Samples per measurement; the median is reported. Odd and generous:
/// the µs-scale fig11 searches need the extra samples for a stable
/// median on a busy box.
const SAMPLES: usize = 51;
/// Thread count for the `build_par` series.
const PAR_THREADS: usize = 4;
/// Worker count for the `search_par`/`search_steal` series.
const STEAL_WORKERS: usize = 4;
/// Concurrent client threads for the `planner_coalesce` /
/// `submit_concurrent` series.
const PLANNER_CLIENTS: usize = 4;

fn median_ns(mut f: impl FnMut() -> u64) -> u64 {
    // One untimed warm-up run absorbs first-touch effects (page faults,
    // lazily grown buffers) before sampling starts.
    black_box(f());
    let mut times: Vec<u64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    name: String,
    nq: usize,
    nr: usize,
    solutions: usize,
    build_hash_ns: u64,
    build_csr_ns: u64,
    build_par_ns: u64,
    search_hash_ns: u64,
    search_csr_ns: u64,
    search_scratch_ns: u64,
    search_par_ns: u64,
    search_steal_ns: u64,
    pool_cold_ns: u64,
    pool_warm_ns: u64,
    planner_coalesce_ns: u64,
    submit_concurrent_ns: u64,
    embed_hash_ns: u64,
    embed_csr_ns: u64,
}

fn run_scenario(name: &str, host: &Network, wl: &QueryWorkload) -> Row {
    run_scenario_capped(name, host, wl, MATCH_CAP)
}

fn run_scenario_capped(name: &str, host: &Network, wl: &QueryWorkload, cap: usize) -> Row {
    let problem = Problem::new(&wl.query, host, &wl.constraint).expect("valid scenario");

    let build_hash_ns = median_ns(|| {
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let f = HashFilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();
        f.cell_count() as u64
    });
    let build_csr_ns = median_ns(|| {
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let f = FilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();
        f.cell_count() as u64
    });
    let build_par_ns = median_ns(|| {
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let f = FilterMatrix::build_par(&problem, PAR_THREADS, &mut dl, &mut stats).unwrap();
        f.cell_count() as u64
    });

    let embed_hash = || {
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let filter = HashFilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();
        // Candidate counts are layout-independent, so ordering from the
        // hash filter yields the exact order the CSR search uses.
        let order = compute_order(&wl.query, &filter, NodeOrder::AscendingCandidates);
        let preds = predecessors(&wl.query, &order);
        reference::search_up_to(&problem, &filter, &order, &preds, cap).len()
    };
    let embed_csr = || {
        let mut sink = CollectUpTo::new(cap);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search(
            &problem,
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut sink,
            &mut stats,
        )
        .unwrap();
        sink.solutions.len()
    };

    // Sanity: both layouts must enumerate the same bounded solution set.
    let (n_hash, n_csr) = (embed_hash(), embed_csr());
    assert_eq!(n_hash, n_csr, "{name}: layouts disagree on solution count");

    // Search-only: both filters prebuilt outside the timer; each side
    // computes the (identical, layout-independent) Lemma-1 order inside
    // its timer, from its own filter.
    let mut dl = Deadline::unlimited();
    let mut s = SearchStats::default();
    let hash_filter = HashFilterMatrix::build(&problem, &mut dl, &mut s).unwrap();
    let csr_filter = FilterMatrix::build(&problem, &mut dl, &mut s).unwrap();
    let search_hash_ns = median_ns(|| {
        let order = compute_order(&wl.query, &hash_filter, NodeOrder::AscendingCandidates);
        let preds = predecessors(&wl.query, &order);
        reference::search_up_to(&problem, &hash_filter, &order, &preds, cap).len() as u64
    });
    let search_csr_ns = median_ns(|| {
        let mut sink = CollectUpTo::new(cap);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search_prebuilt(
            &problem,
            &csr_filter,
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut sink,
            &mut stats,
        );
        sink.solutions.len() as u64
    });

    // Scratch reuse: same prebuilt search, but the per-depth DFS arena is
    // a caller-held scratch that survives across the sampled runs (the
    // warm-up run pays the allocation; every sample after it is free of
    // arena setup) — the service batch path's steady state.
    let mut scratch = SearchScratch::new();
    let search_scratch_ns = median_ns(|| {
        let mut sink = CollectUpTo::new(cap);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search_prebuilt_with_scratch(
            &problem,
            &csr_filter,
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut sink,
            &mut stats,
            &mut scratch,
        );
        sink.solutions.len() as u64
    });

    // Parallel second stage at STEAL_WORKERS workers, one warm
    // ParallelScratch per series (the steady state both paths share).
    // `search_par` is the static strided root partition (splitting
    // disabled — the pre-work-stealing code path); `search_steal` is the
    // default work-stealing policy.
    let run_par = |policy: StealPolicy, scratch: &mut ParallelScratch| -> u64 {
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = parallel::search_prebuilt_with_policy(
            &problem,
            &csr_filter,
            STEAL_WORKERS,
            Some(cap),
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut stats,
            scratch,
            policy,
        );
        sols.len() as u64
    };
    let mut par_scratch = ParallelScratch::new();
    let search_par_ns = median_ns(|| run_par(StealPolicy::disabled(), &mut par_scratch));
    let mut steal_scratch = ParallelScratch::new();
    let search_steal_ns = median_ns(|| run_par(StealPolicy::default(), &mut steal_scratch));

    // Persistent-pool ablation on the same work-stealing search:
    // `pool_cold` constructs a fresh `ParallelScratch` — and with it an
    // empty `WorkerPool` — inside the timed region, so every run pays
    // the full thread spawn+join (~65µs for 4 threads on the reference
    // box: the pre-pool behaviour of `parallel::search*`); `pool_warm`
    // reuses one scratch whose pool threads stay parked between runs —
    // the service layer's steady state, zero spawns after warm-up.
    let pool_cold_ns = median_ns(|| {
        let mut cold_scratch = ParallelScratch::new();
        run_par(StealPolicy::default(), &mut cold_scratch)
    });
    let mut warm_scratch = ParallelScratch::new();
    let pool_warm_ns = median_ns(|| run_par(StealPolicy::default(), &mut warm_scratch));

    // Cross-request series: PLANNER_CLIENTS concurrent identical
    // clients, each sample against a freshly-bumped model epoch so the
    // filter cache is cold every time (that is the event the planner
    // and the in-flight dedup amortize; an unbumped loop would measure
    // nothing but cache hits). One long-lived service per series keeps
    // scratch/pool warm across samples — the steady state both sides
    // share. `submit_concurrent`: independent `submit`s racing through
    // the cache's in-flight build table. `planner_coalesce`: the same
    // clients funneled through one coalescing planner.
    let request = QueryRequest {
        host: "bench".into(),
        query: wl.query.clone(),
        constraint: wl.constraint.clone(),
        options: Options {
            mode: SearchMode::UpTo(cap),
            ..Options::default()
        },
    };
    let submit_svc = NetEmbedService::new();
    let submit_concurrent_ns = median_ns(|| {
        submit_svc.registry().register("bench", host.clone());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..PLANNER_CLIENTS)
                .map(|_| s.spawn(|| submit_svc.submit(&request).unwrap().mappings().len() as u64))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
    });
    let planner_svc = NetEmbedService::new();
    let planner_coalesce_ns = median_ns(|| {
        planner_svc.registry().register("bench", host.clone());
        let planner = planner_svc.planner();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..PLANNER_CLIENTS)
                .map(|_| s.spawn(|| planner.run(&request).unwrap().mappings().len() as u64))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
    });

    let embed_hash_ns = median_ns(|| embed_hash() as u64);
    let embed_csr_ns = median_ns(|| embed_csr() as u64);

    let row = Row {
        name: name.to_string(),
        nq: wl.query.node_count(),
        nr: host.node_count(),
        solutions: n_csr,
        build_hash_ns,
        build_csr_ns,
        build_par_ns,
        search_hash_ns,
        search_csr_ns,
        search_scratch_ns,
        search_par_ns,
        search_steal_ns,
        pool_cold_ns,
        pool_warm_ns,
        planner_coalesce_ns,
        submit_concurrent_ns,
        embed_hash_ns,
        embed_csr_ns,
    };
    println!(
        "{:<24} nq={:<3} nr={:<4} sols={:<5} build {:>9} -> {:>9} ns ({:.2}x)   build_par({PAR_THREADS}t) {:>9} ns ({:.2}x)   search {:>9} -> {:>9} ns ({:.2}x)   scratch {:>9} ns ({:.2}x)   par({STEAL_WORKERS}w) {:>9} ns   steal({STEAL_WORKERS}w) {:>9} ns ({:.2}x)   pool cold {:>9} -> warm {:>9} ns ({:.2}x)   submit({PLANNER_CLIENTS}c) {:>10} -> planner {:>10} ns ({:.2}x)   embed {:>10} -> {:>10} ns ({:.2}x)",
        row.name,
        row.nq,
        row.nr,
        row.solutions,
        row.build_hash_ns,
        row.build_csr_ns,
        row.build_hash_ns as f64 / row.build_csr_ns.max(1) as f64,
        row.build_par_ns,
        row.build_csr_ns as f64 / row.build_par_ns.max(1) as f64,
        row.search_hash_ns,
        row.search_csr_ns,
        row.search_hash_ns as f64 / row.search_csr_ns.max(1) as f64,
        row.search_scratch_ns,
        row.search_csr_ns as f64 / row.search_scratch_ns.max(1) as f64,
        row.search_par_ns,
        row.search_steal_ns,
        row.search_par_ns as f64 / row.search_steal_ns.max(1) as f64,
        row.pool_cold_ns,
        row.pool_warm_ns,
        row.pool_cold_ns as f64 / row.pool_warm_ns.max(1) as f64,
        row.submit_concurrent_ns,
        row.planner_coalesce_ns,
        row.submit_concurrent_ns as f64 / row.planner_coalesce_ns.max(1) as f64,
        row.embed_hash_ns,
        row.embed_csr_ns,
        row.embed_hash_ns as f64 / row.embed_csr_ns.max(1) as f64,
    );
    row
}

/// The deliberately skewed instance: one hub host node (capacity 1)
/// wired to `spokes` capacity-0 spokes that also form a cycle, and a
/// star query whose hub needs capacity ≥ 1. Every root candidate is the
/// hub — the worst case for the static root partition, the natural case
/// for depth-bounded re-splitting.
fn skew_scenario(spokes: usize, leaves: usize) -> (Network, QueryWorkload) {
    let mut h = Network::new(netgraph::Direction::Undirected);
    let hub = h.add_node("hub");
    h.set_node_attr(hub, "cap", 1.0);
    let ids: Vec<netgraph::NodeId> = (0..spokes)
        .map(|i| {
            let s = h.add_node(format!("s{i}"));
            h.set_node_attr(s, "cap", 0.0);
            s
        })
        .collect();
    for (i, &s) in ids.iter().enumerate() {
        h.add_edge(hub, s);
        h.add_edge(s, ids[(i + 1) % spokes]);
    }
    let mut q = Network::new(netgraph::Direction::Undirected);
    let qh = q.add_node("qh");
    q.set_node_attr(qh, "cap", 1.0);
    for i in 0..leaves {
        let l = q.add_node(format!("ql{i}"));
        q.set_node_attr(l, "cap", 0.0);
        q.add_edge(qh, l);
    }
    (
        h,
        QueryWorkload {
            query: q,
            ground_truth: None,
            constraint: "rNode.cap >= vNode.cap".to_string(),
        },
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(rows: &[Row], path: &PathBuf) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"abl_filter_layout\",\n");
    out.push_str("  \"unit\": \"ns (median)\",\n");
    out.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    out.push_str(&format!("  \"match_cap\": {MATCH_CAP},\n"));
    out.push_str(&format!("  \"build_par_threads\": {PAR_THREADS},\n"));
    out.push_str(&format!("  \"steal_workers\": {STEAL_WORKERS},\n"));
    out.push_str(&format!("  \"planner_clients\": {PLANNER_CLIENTS},\n"));
    // The shard count the planner series ran with: the default-config
    // resolution (NETEMBED_PLANNER_SHARDS, else one lane per core up
    // to 8), recorded so cross-machine numbers stay comparable.
    let planner_shards = NetEmbedService::new().planner_shards();
    out.push_str(&format!("  \"planner_shards\": {planner_shards},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nq\": {}, \"nr\": {}, \"solutions\": {}, \
             \"build_hashmap_ns\": {}, \"build_csr_ns\": {}, \"build_par_ns\": {}, \
             \"search_hashmap_ns\": {}, \"search_csr_ns\": {}, \"search_scratch_ns\": {}, \
             \"search_par_ns\": {}, \"search_steal_ns\": {}, \
             \"search_pool_cold_ns\": {}, \"search_pool_warm_ns\": {}, \
             \"planner_coalesce_ns\": {}, \"submit_concurrent_ns\": {}, \
             \"embed_hashmap_ns\": {}, \"embed_csr_ns\": {}, \
             \"build_speedup\": {:.3}, \"build_par_speedup\": {:.3}, \
             \"search_speedup\": {:.3}, \"scratch_speedup\": {:.3}, \
             \"steal_overhead\": {:.3}, \"pool_warm_speedup\": {:.3}, \
             \"coalesce_speedup\": {:.3}, \
             \"embed_speedup\": {:.3}}}{}\n",
            json_escape(&r.name),
            r.nq,
            r.nr,
            r.solutions,
            r.build_hash_ns,
            r.build_csr_ns,
            r.build_par_ns,
            r.search_hash_ns,
            r.search_csr_ns,
            r.search_scratch_ns,
            r.search_par_ns,
            r.search_steal_ns,
            r.pool_cold_ns,
            r.pool_warm_ns,
            r.planner_coalesce_ns,
            r.submit_concurrent_ns,
            r.embed_hash_ns,
            r.embed_csr_ns,
            r.build_hash_ns as f64 / r.build_csr_ns.max(1) as f64,
            r.build_csr_ns as f64 / r.build_par_ns.max(1) as f64,
            r.search_hash_ns as f64 / r.search_csr_ns.max(1) as f64,
            r.search_csr_ns as f64 / r.search_scratch_ns.max(1) as f64,
            // > 1.0 means stealing cost that much more wall time than the
            // static partition *on this machine* — see host_cores.
            r.search_steal_ns as f64 / r.search_par_ns.max(1) as f64,
            // > 1.0 means the warm persistent pool saved that factor of
            // wall time over per-run thread spawns.
            r.pool_cold_ns as f64 / r.pool_warm_ns.max(1) as f64,
            // > 1.0 means the coalescing planner beat independent
            // concurrent submits for a cold-epoch burst of
            // planner_clients identical requests.
            r.submit_concurrent_ns as f64 / r.planner_coalesce_ns.max(1) as f64,
            r.embed_hash_ns as f64 / r.embed_csr_ns.max(1) as f64,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_filter.json");
}

fn main() {
    let mut rows = Vec::new();

    // Fig 13 scenario: clique queries with a 10–100 ms window over the
    // PlanetLab-like host.
    let planetlab = bench_planetlab();
    for k in [3usize, 4, 5] {
        let wl = clique_query(k, 10.0, 100.0);
        rows.push(run_scenario(&format!("fig13-clique-k{k}"), &planetlab, &wl));
    }

    // Fig 11 scenario: planted subgraph queries over BRITE-like hosts.
    for host_n in [150usize, 250] {
        let host = bench_brite(host_n);
        let n = host_n / 10;
        let wl = planted(&host, n, 4000 + host_n as u64);
        rows.push(run_scenario(
            &format!("fig11-brite-N{host_n}-q{n}"),
            &host,
            &wl,
        ));
    }

    // Skew scenario for the work-stealing series: a single hub host node
    // owns every root candidate (node capacities restrict the query hub
    // to it), so the static root partition runs the whole tree on one
    // worker while `search_steal` re-splits the hub subtree.
    // The match cap is raised for this row so the measured region is
    // dominated by search work rather than the pool's thread spawns
    // (the whole point is comparing schedulers, not thread startup).
    let (skew_host, skew_wl) = skew_scenario(48, 8);
    rows.push(run_scenario_capped(
        "skew-hub-s48-q8",
        &skew_host,
        &skew_wl,
        4 * MATCH_CAP,
    ));

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_filter.json");
    write_json(&rows, &path);
    println!("\nwrote {}", path.display());
}

//! Ablation: flat filter build vs. the multilevel substrate hierarchy
//! on datacenter-scale hosts (fat-tree 10⁴, power-law 10⁵–2·10⁵ nodes).
//!
//! The comparison is **per distinct query**: the service's filter cache
//! makes byte-identical repeat queries cheap on either path, but every
//! *new* query (or model-epoch bump) pays the flat path's full
//! `O(|VQ|·|VR|)` node admission again, while one coarsening — cached
//! per `(host, epoch)` in the service's `HierarchyCache` — serves every
//! query against that host snapshot. So the timed series run at the
//! engine layer: the flat run builds its filter from scratch each
//! sample, the hierarchical run reuses a prebuilt hierarchy (the warm
//! cache steady state) and pays refinement + restricted build + search.
//!
//! Per scenario:
//!
//! * **hier_build** — the one-time `SubstrateHierarchy::build` cost
//!   that the cache amortizes across queries and requests.
//! * **flat_run / hier_run** — end-to-end engine runs, unlimited
//!   budget, first-match mode.
//! * **flat_budget_outcome / hier_budget_outcome** — the same runs
//!   under [`SCALE_BUDGET`]: on the ≥10⁵-node rows the flat run comes
//!   back `inconclusive` (the admission scan alone blows the budget)
//!   while the hierarchical run returns a verified mapping — the
//!   scale-unlock acceptance of the hierarchy PR.
//! * **levels / expanded_cells / full_cells / expanded_ratio /
//!   abstract_evals** — refinement telemetry from the hierarchical
//!   run: `expanded_ratio` ≪ 1.0 is the point (expanded cells over the
//!   full `|VQ|·|VR|` matrix).
//!
//! Results land in `BENCH_scale.json` at the workspace root
//! (committed, like `BENCH_filter.json`). Run with:
//!
//! ```text
//! cargo bench -p bench --bench abl_hierarchy
//! ```

use netembed::{
    Algorithm, EmbedScratch, Engine, HierarchySpec, Options, Outcome, Problem, SearchMode,
    SubstrateHierarchy,
};
use netgraph::{Direction, Network};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Samples per timed series (median reported). The scale rows run
/// tens-of-ms flat scans, so a lean odd count keeps the suite quick.
const SAMPLES: usize = 9;
/// Hierarchy builds are seconds-scale one-time costs; sample them once.
const BUILD_SAMPLES: usize = 1;
/// The scale-unlock budget: generous for the hierarchical path (several
/// times its steady-state latency on the reference box), far below the
/// flat admission scan on the ≥10⁵-node rows.
const SCALE_BUDGET: Duration = Duration::from_millis(40);

fn median_ns(samples: usize, mut f: impl FnMut() -> u64) -> u64 {
    black_box(f());
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    name: String,
    nq: usize,
    nr: usize,
    levels: u64,
    level_sizes: Vec<usize>,
    expanded_cells: u64,
    full_cells: u64,
    pruned: u64,
    abstract_evals: u64,
    flat_evals: u64,
    hier_build_ns: u64,
    flat_run_ns: u64,
    hier_run_ns: u64,
    flat_budget_outcome: String,
    hier_budget_outcome: String,
}

fn outcome_label(o: &Outcome) -> &'static str {
    match o {
        Outcome::Complete(m) if m.is_empty() => "none",
        Outcome::Complete(_) => "complete",
        Outcome::Partial(_) => "some",
        Outcome::Inconclusive => "inconclusive",
    }
}

/// A 3-node path query with one string attr per node.
fn path_query(attr: &str, values: [&str; 3]) -> Network {
    let mut q = Network::new(Direction::Undirected);
    for (i, v) in values.iter().enumerate() {
        let id = q.add_node(format!("q{i}"));
        q.set_node_attr(id, attr, *v);
    }
    q.add_edge(netgraph::NodeId(0), netgraph::NodeId(1));
    q.add_edge(netgraph::NodeId(1), netgraph::NodeId(2));
    q
}

fn run_scenario(name: &str, host: Network, query: Network, constraint: &str) -> Row {
    let spec = HierarchySpec::default();
    let (nq, nr) = (query.node_count(), host.node_count());
    let problem = Problem::new(&query, &host, constraint).expect("valid scenario");

    let hier_build_ns = median_ns(BUILD_SAMPLES, || {
        SubstrateHierarchy::build(&host, &spec).levels() as u64
    });
    let hier = SubstrateHierarchy::build(&host, &spec);

    let flat_opts = Options {
        algorithm: Algorithm::Ecf,
        mode: SearchMode::First,
        ..Options::default()
    };
    let hier_opts = Options {
        hierarchy: Some(spec),
        ..flat_opts.clone()
    };

    let mut scratch = EmbedScratch::new();
    let flat_run_ns = median_ns(SAMPLES, || {
        Engine::run(&problem, &flat_opts).unwrap().mappings.len() as u64
    });
    let hier_run_ns = median_ns(SAMPLES, || {
        Engine::run_hier(&problem, &hier, &hier_opts, &mut scratch)
            .unwrap()
            .mappings
            .len() as u64
    });

    // Telemetry from one untimed run per path.
    let fres = Engine::run(&problem, &flat_opts).unwrap();
    let hres = Engine::run_hier(&problem, &hier, &hier_opts, &mut scratch).unwrap();
    assert!(
        hres.outcome.found_any() && fres.outcome.found_any(),
        "{name}: both paths must find a mapping unbudgeted"
    );

    // Scale-unlock: identical runs under the budget.
    let budget_flat = Engine::run(
        &problem,
        &Options {
            timeout: Some(SCALE_BUDGET),
            ..flat_opts.clone()
        },
    )
    .unwrap();
    let budget_hier = Engine::run_hier(
        &problem,
        &hier,
        &Options {
            timeout: Some(SCALE_BUDGET),
            ..hier_opts.clone()
        },
        &mut scratch,
    )
    .unwrap();

    let row = Row {
        name: name.to_string(),
        nq,
        nr,
        levels: hres.stats.hier_levels,
        level_sizes: hier.level_sizes(),
        expanded_cells: hres.stats.hier_expanded_cells,
        full_cells: hres.stats.hier_full_cells,
        pruned: hres.stats.hier_pruned,
        abstract_evals: hres.stats.constraint_evals,
        flat_evals: fres.stats.constraint_evals,
        hier_build_ns,
        flat_run_ns,
        hier_run_ns,
        flat_budget_outcome: outcome_label(&budget_flat.outcome).to_string(),
        hier_budget_outcome: outcome_label(&budget_hier.outcome).to_string(),
    };
    println!(
        "{:<18} nq={:<2} nr={:<7} levels={:<2} expanded {:>6}/{:<8} ({:.4}%)  pruned {:>5}  evals {:>9} -> {:<7}  build {:>11} ns  run flat {:>11} -> hier {:>10} ns ({:.2}x)  budget({:?}) flat={} hier={}",
        row.name,
        row.nq,
        row.nr,
        row.levels,
        row.expanded_cells,
        row.full_cells,
        100.0 * row.expanded_cells as f64 / row.full_cells.max(1) as f64,
        row.pruned,
        row.flat_evals,
        row.abstract_evals,
        row.hier_build_ns,
        row.flat_run_ns,
        row.hier_run_ns,
        row.flat_run_ns as f64 / row.hier_run_ns.max(1) as f64,
        SCALE_BUDGET,
        row.flat_budget_outcome,
        row.hier_budget_outcome,
    );
    row
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(rows: &[Row], path: &PathBuf) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"abl_hierarchy\",\n");
    out.push_str("  \"unit\": \"ns (median)\",\n");
    out.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    out.push_str(&format!(
        "  \"scale_budget_ms\": {},\n",
        SCALE_BUDGET.as_millis()
    ));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sizes = r
            .level_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nq\": {}, \"nr\": {}, \"levels\": {}, \
             \"level_sizes\": [{}], \
             \"expanded_cells\": {}, \"full_cells\": {}, \"expanded_ratio\": {:.6}, \
             \"pruned_subtrees\": {}, \"abstract_evals\": {}, \"flat_evals\": {}, \
             \"hier_build_ns\": {}, \"flat_run_ns\": {}, \"hier_run_ns\": {}, \
             \"run_speedup\": {:.3}, \
             \"flat_budget_outcome\": \"{}\", \"hier_budget_outcome\": \"{}\"}}{}\n",
            json_escape(&r.name),
            r.nq,
            r.nr,
            r.levels,
            sizes,
            r.expanded_cells,
            r.full_cells,
            r.expanded_cells as f64 / r.full_cells.max(1) as f64,
            r.pruned,
            r.abstract_evals,
            r.flat_evals,
            r.hier_build_ns,
            r.flat_run_ns,
            r.hier_run_ns,
            r.flat_run_ns as f64 / r.hier_run_ns.max(1) as f64,
            json_escape(&r.flat_budget_outcome),
            json_escape(&r.hier_budget_outcome),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_scale.json");
}

fn main() {
    let mut rows = Vec::new();

    // Fat-tree 10⁴: k=24 Clos fabric, 35 hosts per edge switch
    // (~10.8k nodes). The query is a host–edge–host path pinned to
    // pod 0; super-nodes whose pod interval excludes 0 prune away.
    let ft = topogen::fat_tree(
        &topogen::FatTreeParams {
            k: 24,
            hosts_per_edge: 35,
        },
        &mut topogen::rng(0xFA7),
    );
    let q = path_query("wantTier", ["host", "edge", "host"]);
    rows.push(run_scenario(
        "fattree-k24-10k",
        ft,
        q,
        "rNode.tier == vNode.wantTier && rNode.pod == 0.0",
    ));

    // Power-law 10⁵ and 2·10⁵ with a planted 48-node hot region: the
    // flat admission scans every node; the refinement descends straight
    // into the handful of hot super-nodes.
    for n in [100_000usize, 200_000] {
        let host = topogen::power_law(
            &topogen::PowerLawParams {
                n,
                m: 2,
                hot_nodes: 48,
            },
            &mut topogen::rng(42),
        );
        let q = path_query("want", ["hot", "hot", "hot"]);
        rows.push(run_scenario(
            &format!("powerlaw-{}k", n / 1000),
            host,
            q,
            "rNode.region == vNode.want",
        ));
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    write_json(&rows, &path);
    println!("\nwrote {}", path.display());
}

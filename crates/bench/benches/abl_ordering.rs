//! Ablation: Lemma-1 node ordering (ascending candidate count) versus the
//! alternatives, plus the LNS memo-cache toggle.

use bench::{bench_planetlab, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::lns::LnsConfig;
use netembed::{Algorithm, Engine, NodeOrder, Options, SearchMode};
use std::hint::black_box;
use std::time::Duration;
use topogen::clique_query;

fn abl_ordering(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("abl-order");
    group.sample_size(10);
    let wl = planted(&host, 12, 9000);
    for (label, order) in [
        ("ascending", NodeOrder::AscendingCandidates),
        ("descending", NodeOrder::DescendingCandidates),
        ("input", NodeOrder::InputOrder),
        ("random", NodeOrder::Random(7)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 12), &wl, |b, wl| {
            b.iter(|| {
                let engine = Engine::new(&host);
                let options = Options {
                    algorithm: Algorithm::Ecf,
                    mode: SearchMode::All,
                    order,
                    timeout: Some(Duration::from_secs(30)),
                    ..Options::default()
                };
                black_box(
                    engine
                        .embed(&wl.query, &wl.constraint, &options)
                        .map(|r| r.mappings.len())
                        .unwrap_or(0),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("abl-negcache");
    group.sample_size(10);
    let wl = clique_query(4, 10.0, 100.0);
    for (label, memo) in [("memo-on", true), ("memo-off", false)] {
        group.bench_with_input(BenchmarkId::new(label, 4), &wl, |b, wl| {
            b.iter(|| {
                let engine = Engine::new(&host);
                let options = Options {
                    algorithm: Algorithm::Lns,
                    mode: SearchMode::First,
                    lns: LnsConfig {
                        memo_cache: memo,
                        ..LnsConfig::default()
                    },
                    timeout: Some(Duration::from_secs(30)),
                    ..Options::default()
                };
                black_box(
                    engine
                        .embed(&wl.query, &wl.constraint, &options)
                        .map(|r| r.mappings.len())
                        .unwrap_or(0),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, abl_ordering);
criterion_main!(benches);

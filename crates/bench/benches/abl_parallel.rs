//! Ablation: parallel ECF thread scaling on an all-matches workload.

use bench::{bench_planetlab, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;

fn abl_parallel(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("abl-par");
    group.sample_size(10);
    let wl = planted(&host, 14, 9500);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &wl, |b, wl| {
            b.iter(|| {
                black_box(embed_once(
                    &host,
                    wl,
                    Algorithm::ParallelEcf { threads },
                    SearchMode::All,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, abl_parallel);
criterion_main!(benches);

//! Fig 8: per-algorithm search time vs query size on the PlanetLab-like
//! host. Groups: ECF all/first (8a), RWB first (8b), LNS all/first (8c).

use bench::{bench_planetlab, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;

fn fig08(c: &mut Criterion) {
    let host = bench_planetlab();
    let sizes = [6usize, 10, 14, 18];
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    for &n in &sizes {
        let wl = planted(&host, n, 1000 + n as u64);
        group.bench_with_input(BenchmarkId::new("8a-ECF-all", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Ecf, SearchMode::All)))
        });
        group.bench_with_input(BenchmarkId::new("8a-ECF-first", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Ecf, SearchMode::First)))
        });
        group.bench_with_input(BenchmarkId::new("8b-RWB-first", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Rwb, SearchMode::First)))
        });
        group.bench_with_input(BenchmarkId::new("8c-LNS-all", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Lns, SearchMode::All)))
        });
        group.bench_with_input(BenchmarkId::new("8c-LNS-first", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Lns, SearchMode::First)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig08);
criterion_main!(benches);

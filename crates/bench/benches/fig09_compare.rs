//! Fig 9: three-algorithm comparison on identical PlanetLab workloads —
//! (a) time until all matches, (b) time until the first match.

use bench::{bench_planetlab, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;

fn fig09(c: &mut Criterion) {
    let host = bench_planetlab();
    let algos = [
        (Algorithm::Ecf, "ECF"),
        (Algorithm::Rwb, "RWB"),
        (Algorithm::Lns, "LNS"),
    ];
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    for &n in &[8usize, 14] {
        let wl = planted(&host, n, 2000 + n as u64);
        for (alg, label) in algos {
            // (a): all matches (RWB is first-match by design, as in the paper).
            let mode_all = if alg == Algorithm::Rwb {
                SearchMode::First
            } else {
                SearchMode::All
            };
            group.bench_with_input(BenchmarkId::new(format!("9a-{label}"), n), &wl, |b, wl| {
                b.iter(|| black_box(embed_once(&host, wl, alg, mode_all)))
            });
            // (b): first match.
            group.bench_with_input(BenchmarkId::new(format!("9b-{label}"), n), &wl, |b, wl| {
                b.iter(|| black_box(embed_once(&host, wl, alg, SearchMode::First)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig09);
criterion_main!(benches);

//! Fig 10: feasible vs infeasible queries — same topology, poisoned
//! windows. The interesting comparison is how fast each algorithm reaches
//! a definitive "no match".

use bench::{bench_planetlab, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;
use topogen::make_infeasible;

fn fig10(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for &n in &[8usize, 14] {
        let wl = planted(&host, n, 3000 + n as u64);
        let bad = make_infeasible(&wl, 0.15, &mut topogen::rng(3100 + n as u64));
        for (alg, label) in [
            (Algorithm::Ecf, "ECF"),
            (Algorithm::Rwb, "RWB"),
            (Algorithm::Lns, "LNS"),
        ] {
            let mode = if alg == Algorithm::Rwb {
                SearchMode::First
            } else {
                SearchMode::All
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{label}-match"), n),
                &wl,
                |b, wl| b.iter(|| black_box(embed_once(&host, wl, alg, mode))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}-nomatch"), n),
                &bad,
                |b, bad| b.iter(|| black_box(embed_once(&host, bad, alg, mode))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);

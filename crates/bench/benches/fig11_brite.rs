//! Fig 11: mean (all-matches) search time on BRITE-like hosts of
//! increasing size (paper: N = 1500/2000/2500, here scaled ×10 down).

use bench::{bench_brite, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for host_n in [150usize, 200, 250] {
        let host = bench_brite(host_n);
        let n = host_n / 10;
        let wl = planted(&host, n, 4000 + host_n as u64);
        for (alg, label) in [
            (Algorithm::Ecf, "ECF"),
            (Algorithm::Rwb, "RWB"),
            (Algorithm::Lns, "LNS"),
        ] {
            let mode = if alg == Algorithm::Rwb {
                SearchMode::First
            } else {
                SearchMode::All
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("N{host_n}-q{n}")),
                &wl,
                |b, wl| b.iter(|| black_box(embed_once(&host, wl, alg, mode))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);

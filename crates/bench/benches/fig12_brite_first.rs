//! Fig 12: time to the *first* match on BRITE-like hosts.

use bench::{bench_brite, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;

fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for host_n in [150usize, 200, 250] {
        let host = bench_brite(host_n);
        for frac in [0.1f64, 0.3] {
            let n = ((host_n as f64) * frac) as usize;
            let wl = planted(&host, n.max(4), 5000 + host_n as u64 + n as u64);
            for (alg, label) in [
                (Algorithm::Ecf, "ECF"),
                (Algorithm::Rwb, "RWB"),
                (Algorithm::Lns, "LNS"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(label, format!("N{host_n}-q{n}")),
                    &wl,
                    |b, wl| b.iter(|| black_box(embed_once(&host, wl, alg, SearchMode::First))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);

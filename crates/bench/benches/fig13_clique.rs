//! Fig 13: clique queries with a 10–100 ms window — (a) enumerate all
//! embeddings (bounded via UpTo to keep the bench finite, mirroring the
//! paper's timeouts), (b) time to the first match, where LNS shines.

use bench::{bench_planetlab, embed_once};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, Engine, Options, SearchMode};
use std::hint::black_box;
use std::time::Duration;
use topogen::clique_query;

fn fig13(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let wl = clique_query(k, 10.0, 100.0);
        // (a) bounded enumeration — the paper's all-matches runs time out
        // on larger cliques; UpTo(5000) bounds the bench equivalently.
        for (alg, label) in [(Algorithm::Ecf, "13a-ECF"), (Algorithm::Lns, "13a-LNS")] {
            group.bench_with_input(BenchmarkId::new(label, k), &wl, |b, wl| {
                b.iter(|| {
                    let engine = Engine::new(&host);
                    let options = Options {
                        algorithm: alg,
                        mode: SearchMode::UpTo(5000),
                        timeout: Some(Duration::from_secs(20)),
                        ..Options::default()
                    };
                    black_box(
                        engine
                            .embed(&wl.query, &wl.constraint, &options)
                            .map(|r| r.mappings.len())
                            .unwrap_or(0),
                    )
                })
            });
        }
        // (b) first match.
        for (alg, label) in [
            (Algorithm::Ecf, "13b-ECF"),
            (Algorithm::Rwb, "13b-RWB"),
            (Algorithm::Lns, "13b-LNS"),
        ] {
            group.bench_with_input(BenchmarkId::new(label, k), &wl, |b, wl| {
                b.iter(|| black_box(embed_once(&host, wl, alg, SearchMode::First)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);

//! Fig 14: composite two-level queries — time to first match under
//! (a) regular per-tier windows and (b) random windows from 25–175 ms.

use bench::{bench_planetlab, embed_once};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, SearchMode};
use std::hint::black_box;
use topogen::{
    assign_composite_windows, assign_random_windows, composite_query, CompositeSpec, Level,
    QueryWorkload, CLIQUE_CONSTRAINT,
};

fn workload(groups: usize, group_size: usize, irregular: bool) -> QueryWorkload {
    let mut q = composite_query(&CompositeSpec {
        root: Level::Ring,
        groups,
        leaf: Level::Star,
        group_size,
    });
    if irregular {
        assign_random_windows(&mut q, 25.0, 175.0, 60.0, &mut topogen::rng(6000));
    } else {
        assign_composite_windows(&mut q, (75.0, 350.0), (1.0, 75.0));
    }
    QueryWorkload {
        query: q,
        ground_truth: None,
        constraint: CLIQUE_CONSTRAINT.to_string(),
    }
}

fn fig14(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for (groups, group_size) in [(3usize, 3usize), (4, 4)] {
        let size = groups * group_size;
        for (irr, tag) in [(false, "14a"), (true, "14b")] {
            let wl = workload(groups, group_size, irr);
            for (alg, label) in [
                (Algorithm::Ecf, "ECF"),
                (Algorithm::Rwb, "RWB"),
                (Algorithm::Lns, "LNS"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}-{label}"), size),
                    &wl,
                    |b, wl| b.iter(|| black_box(embed_once(&host, wl, alg, SearchMode::First))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);

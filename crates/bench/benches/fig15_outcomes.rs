//! Fig 15: result-type classification under a fixed timeout. The bench
//! measures the cost of a budgeted run per workload class (the
//! distribution itself is produced by `harness fig15`); it also prints the
//! observed outcome once per class so regressions in classification are
//! visible in the bench log.

use bench::{bench_planetlab, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, Engine, Options, SearchMode};
use std::hint::black_box;
use std::time::Duration;
use topogen::{clique_query, make_infeasible, QueryWorkload};

fn classes(host: &netgraph::Network) -> Vec<(&'static str, QueryWorkload)> {
    let feasible = planted(host, 10, 7000);
    let infeasible = make_infeasible(&feasible, 0.2, &mut topogen::rng(7001));
    let clique = clique_query(4, 10.0, 100.0);
    vec![
        ("subgraph", feasible),
        ("subgraph-infeasible", infeasible),
        ("clique", clique),
    ]
}

fn fig15(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    let budget = Duration::from_millis(250);
    for (class, wl) in classes(&host) {
        // Print the classification once, outside the timing loop.
        let engine = Engine::new(&host);
        let options = Options {
            algorithm: Algorithm::Ecf,
            mode: SearchMode::All,
            timeout: Some(budget),
            ..Options::default()
        };
        if let Ok(r) = engine.embed(&wl.query, &wl.constraint, &options) {
            eprintln!("fig15 class {class}: outcome = {}", r.outcome.label());
        }
        group.bench_with_input(BenchmarkId::new("budgeted-ECF", class), &wl, |b, wl| {
            b.iter(|| {
                let engine = Engine::new(&host);
                black_box(
                    engine
                        .embed(&wl.query, &wl.constraint, &options)
                        .map(|r| r.outcome.label())
                        .unwrap_or("error"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);

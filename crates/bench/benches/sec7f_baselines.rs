//! §VII-F: NETEMBED versus the re-implemented prior techniques on the same
//! small planted instances. The expected shape: ECF/LNS answer in
//! milliseconds; the metaheuristics pay their full schedules.

use baselines::{anneal, genetic, stress_greedy, AnnealParams, GeneticParams, StressParams};
use bench::{bench_planetlab, embed_once, planted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netembed::{Algorithm, Problem, SearchMode};
use std::hint::black_box;

fn sec7f(c: &mut Criterion) {
    let host = bench_planetlab();
    let mut group = c.benchmark_group("sec7f");
    group.sample_size(10);
    for &n in &[6usize, 10] {
        let wl = planted(&host, n, 8000 + n as u64);

        group.bench_with_input(BenchmarkId::new("ECF-first", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Ecf, SearchMode::First)))
        });
        group.bench_with_input(BenchmarkId::new("LNS-first", n), &wl, |b, wl| {
            b.iter(|| black_box(embed_once(&host, wl, Algorithm::Lns, SearchMode::First)))
        });

        // Baselines, with paper-era budgets shrunk 10× to keep the bench
        // finite; the ECF-vs-heuristic gap survives the shrink.
        let sa_params = AnnealParams {
            max_iters: 20_000,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("SA-assign", n), &wl, |b, wl| {
            b.iter(|| {
                let p = Problem::new(&wl.query, &host, &wl.constraint).unwrap();
                black_box(anneal(&p, &sa_params).feasible)
            })
        });
        let ga_params = GeneticParams {
            generations: 40,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("GA-wanassign", n), &wl, |b, wl| {
            b.iter(|| {
                let p = Problem::new(&wl.query, &host, &wl.constraint).unwrap();
                black_box(genetic(&p, &ga_params).feasible)
            })
        });
        group.bench_with_input(BenchmarkId::new("Stress-ZhuAmmar", n), &wl, |b, wl| {
            b.iter(|| {
                let p = Problem::new(&wl.query, &host, &wl.constraint).unwrap();
                let stress = vec![0u32; p.nr()];
                black_box(stress_greedy(&p, &StressParams::default(), &stress).feasible)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sec7f);
criterion_main!(benches);

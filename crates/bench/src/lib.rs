//! Shared fixtures for the Criterion benchmarks.
//!
//! Each `benches/figXX_*.rs` target regenerates one figure of the paper at
//! a reduced, benchmark-friendly scale (Criterion needs many iterations
//! per point, so the full 296-site trace would take hours). The harness
//! binary (`cargo run -p harness --release -- <exp>`) produces the
//! full-scale CSV series; these benches track regressions on the same
//! workload shapes.

use netembed::{Algorithm, Engine, Options, SearchMode};
use netgraph::Network;
use std::time::Duration;
use topogen::{subgraph_query, PlanetlabParams, QueryWorkload, SubgraphParams};

/// Benchmark-scale PlanetLab-like host (60 sites ≈ 1/5 of the trace).
pub fn bench_planetlab() -> Network {
    topogen::planetlab_like(
        &PlanetlabParams {
            sites: 60,
            measured_prob: 0.66,
            clusters: 4,
        },
        &mut topogen::rng(0xBEEF),
    )
}

/// Benchmark-scale BRITE-like host.
pub fn bench_brite(n: usize) -> Network {
    topogen::brite_like(
        &topogen::BriteParams::paper_default(n),
        &mut topogen::rng(0xB17E),
    )
}

/// Planted subgraph query of size `n`.
pub fn planted(host: &Network, n: usize, seed: u64) -> QueryWorkload {
    subgraph_query(
        host,
        &SubgraphParams {
            n,
            edge_keep: 0.3,
            slack: 0.02,
        },
        &mut topogen::rng(seed),
    )
}

/// One timed engine run (the unit every benchmark iterates).
pub fn embed_once(
    host: &Network,
    wl: &QueryWorkload,
    algorithm: Algorithm,
    mode: SearchMode,
) -> usize {
    let engine = Engine::new(host);
    let options = Options {
        algorithm,
        mode,
        timeout: Some(Duration::from_secs(30)),
        ..Options::default()
    };
    engine
        .embed(&wl.query, &wl.constraint, &options)
        .map(|r| r.mappings.len())
        .unwrap_or(0)
}

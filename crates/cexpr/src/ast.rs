//! Abstract syntax tree for constraint expressions, with a canonical
//! pretty-printer (used by tests to check parse ∘ print = identity).

use std::fmt;

/// The six edge-context objects from Table I of the paper, plus the
/// node-context objects `vNode`/`rNode` used by NETEMBED's node-constraint
/// extension (evaluating constraints for isolated query nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Object {
    /// Query (virtual) edge under consideration.
    VEdge,
    /// Hosting (real) edge under consideration.
    REdge,
    /// Source node of the query edge.
    VSource,
    /// Target node of the query edge.
    VTarget,
    /// Source node of the hosting edge.
    RSource,
    /// Target node of the hosting edge.
    RTarget,
    /// Query node (node-constraint context only).
    VNode,
    /// Hosting node (node-constraint context only).
    RNode,
}

impl Object {
    /// Parse an object name.
    pub fn parse(name: &str) -> Option<Object> {
        Some(match name {
            "vEdge" => Object::VEdge,
            "rEdge" => Object::REdge,
            "vSource" => Object::VSource,
            "vTarget" => Object::VTarget,
            "rSource" => Object::RSource,
            "rTarget" => Object::RTarget,
            "vNode" => Object::VNode,
            "rNode" => Object::RNode,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Object::VEdge => "vEdge",
            Object::REdge => "rEdge",
            Object::VSource => "vSource",
            Object::VTarget => "vTarget",
            Object::RSource => "rSource",
            Object::RTarget => "rTarget",
            Object::VNode => "vNode",
            Object::RNode => "rNode",
        }
    }

    /// True for the objects referring to the query (virtual) network.
    pub fn is_virtual(self) -> bool {
        matches!(
            self,
            Object::VEdge | Object::VSource | Object::VTarget | Object::VNode
        )
    }

    /// True for edge-valued objects.
    pub fn is_edge(self) -> bool {
        matches!(self, Object::VEdge | Object::REdge)
    }
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `abs(x)` — absolute value.
    Abs,
    /// `sqrt(x)` — square root.
    Sqrt,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `isBoundTo(v, r)` — true when the first argument is missing, or both
    /// are present and equal (§VI-B of the paper).
    IsBoundTo,
    /// `has(x)` — true when the attribute reference is present
    /// (NETEMBED extension; lets queries test optional attributes).
    Has,
}

impl Func {
    /// Parse a function name.
    pub fn parse(name: &str) -> Option<Func> {
        Some(match name {
            "abs" => Func::Abs,
            "sqrt" => Func::Sqrt,
            "min" => Func::Min,
            "max" => Func::Max,
            "isBoundTo" => Func::IsBoundTo,
            "has" => Func::Has,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Func::Abs => "abs",
            Func::Sqrt => "sqrt",
            Func::Min => "min",
            Func::Max => "max",
            Func::IsBoundTo => "isBoundTo",
            Func::Has => "has",
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Abs | Func::Sqrt | Func::Has => 1,
            Func::Min | Func::Max | Func::IsBoundTo => 2,
        }
    }
}

/// Binary operators, in Java precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinOp {
    /// Java-style precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }

    /// Operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Attribute reference `object.attr`.
    Attr(Object, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// All attribute references `(object, name)` in the expression.
    pub fn attr_refs(&self) -> Vec<(Object, &str)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Attr(o, n) = e {
                out.push((*o, n.as_str()));
            }
        });
        out
    }

    /// True when the expression references node-context objects
    /// (`vNode`/`rNode`).
    pub fn uses_node_objects(&self) -> bool {
        self.attr_refs()
            .iter()
            .any(|(o, _)| matches!(o, Object::VNode | Object::RNode))
    }

    /// Pre-order traversal. The callback receives references that live as
    /// long as the expression itself.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Num(x) => {
                if *x < 0.0 {
                    write!(f, "({x})")
                } else {
                    write!(f, "{x}")
                }
            }
            Expr::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Attr(o, n) => write!(f, "{}.{}", o.name(), n),
            Expr::Unary(op, e) => {
                match op {
                    UnOp::Not => write!(f, "!")?,
                    UnOp::Neg => write!(f, "-")?,
                }
                // Unary binds tighter than all binaries.
                e.fmt_prec(f, 7)
            }
            Expr::Binary(op, l, r) => {
                let p = op.precedence();
                let need_paren = p < parent_prec;
                if need_paren {
                    write!(f, "(")?;
                }
                l.fmt_prec(f, p)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: right child needs parens at equal prec.
                r.fmt_prec(f, p + 1)?;
                if need_paren {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_names_round_trip() {
        for o in [
            Object::VEdge,
            Object::REdge,
            Object::VSource,
            Object::VTarget,
            Object::RSource,
            Object::RTarget,
            Object::VNode,
            Object::RNode,
        ] {
            assert_eq!(Object::parse(o.name()), Some(o));
        }
        assert_eq!(Object::parse("vedge"), None);
    }

    #[test]
    fn func_metadata() {
        assert_eq!(Func::parse("sqrt"), Some(Func::Sqrt));
        assert_eq!(Func::IsBoundTo.arity(), 2);
        assert_eq!(Func::Abs.arity(), 1);
        assert_eq!(Func::parse("nope"), None);
    }

    #[test]
    fn display_inserts_minimal_parens() {
        // (a + b) * c needs parens; a + b * c does not.
        let a = Expr::Attr(Object::VEdge, "a".into());
        let b = Expr::Attr(Object::VEdge, "b".into());
        let c = Expr::Attr(Object::VEdge, "c".into());
        let sum = Expr::Binary(BinOp::Add, Box::new(a.clone()), Box::new(b.clone()));
        let prod = Expr::Binary(BinOp::Mul, Box::new(sum), Box::new(c.clone()));
        assert_eq!(prod.to_string(), "(vEdge.a + vEdge.b) * vEdge.c");
        let prod2 = Expr::Binary(BinOp::Mul, Box::new(b), Box::new(c));
        let sum2 = Expr::Binary(BinOp::Add, Box::new(a), Box::new(prod2));
        assert_eq!(sum2.to_string(), "vEdge.a + vEdge.b * vEdge.c");
    }

    #[test]
    fn attr_refs_collected() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Attr(Object::VSource, "x".into())),
            Box::new(Expr::Call(
                Func::IsBoundTo,
                vec![
                    Expr::Attr(Object::VNode, "bindTo".into()),
                    Expr::Attr(Object::RNode, "name".into()),
                ],
            )),
        );
        let refs = e.attr_refs();
        assert_eq!(refs.len(), 3);
        assert!(e.uses_node_objects());
    }
}

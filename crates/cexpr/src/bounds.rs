//! Abstract interpretation of compiled constraints over **aggregated
//! attribute bounds** — the soundness layer beneath the multilevel
//! substrate hierarchy (`core::hierarchy`).
//!
//! A super-node of the coarsened host stands for a *set* of real nodes;
//! a super-edge for a set of real edges. Instead of a concrete
//! [`Value`](crate::Value) per attribute, each aggregate carries an
//! [`AttrBounds`]: the numeric range, the reachable booleans, the
//! (small) set of reachable strings, and whether any member *lacks* the
//! attribute. Evaluating a compiled constraint against such bounds
//! cannot produce a single truth value — it produces a tri-state
//! [`Verdict`]:
//!
//! * [`Verdict::Infeasible`] — **no** choice of concrete members can
//!   make the constraint evaluate to `true`. Pruning the aggregate is
//!   sound: coarse-feasible ⊇ fine-feasible.
//! * [`Verdict::Maybe`] — some member combination might pass (or the
//!   abstraction is too coarse to tell, or some combination would
//!   raise an evaluation error). The search must descend and decide
//!   concretely.
//!
//! The query side is never abstracted — only the host is coarsened —
//! so [`AbsEdgeCtx`]/[`AbsNodeCtx`] keep concrete query networks and
//! ids next to host-side [`BoundsMap`]s.
//!
//! The evaluator mirrors the concrete one (`compile.rs`) operation by
//! operation: Kleene `&&`/`||` over can-be-true/can-be-false/can-be-
//! missing flags, interval arithmetic with IEEE 754 edge cases (a
//! division whose denominator range crosses zero widens to the full
//! line *and* NaN; comparisons against a possible NaN can always be
//! false), `isBoundTo`'s vacuous truth when the query side may be
//! absent, and `has()` over the missing flag. Whenever a type error is
//! *possible* the result is flagged and the verdict degrades to
//! `Maybe` — an aggregate is never pruned on the strength of an error
//! a concrete evaluation would have reported.

use crate::ast::{BinOp, Func, Object, UnOp};
use crate::compile::{Compiled, Node};
use netgraph::{AttrId, AttrValue, EdgeId, Network, NodeId};
use std::sync::Arc;

/// Maximum distinct string values tracked exactly per attribute; above
/// this the bounds degrade to "any string" (sound, just less precise).
const MAX_TRACKED_STRS: usize = 8;

/// Tri-state outcome of evaluating a constraint against aggregated
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No concrete member combination can satisfy the constraint —
    /// pruning the aggregate is sound.
    Infeasible,
    /// Some combination might satisfy it (or might error): descend.
    Maybe,
}

/// Conservative summary of one attribute over a member set.
///
/// Every member contributes either its concrete value (via
/// [`AttrBounds::add`]) or its absence (via [`AttrBounds::add_missing`]);
/// two summaries over disjoint member sets combine with
/// [`AttrBounds::merge`]. The invariant is *containment*: for every
/// member, the member's concrete value (or absence) is represented —
/// [`AttrBounds::contains`] is the property tests' oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrBounds {
    /// Smallest non-NaN numeric value (`+∞` when no member is numeric).
    lo: f64,
    /// Largest non-NaN numeric value (`-∞` when no member is numeric).
    hi: f64,
    /// Some member carries a NaN numeric value.
    nan: bool,
    /// Some member carries `true`.
    can_true: bool,
    /// Some member carries `false`.
    can_false: bool,
    /// Distinct string values, sorted; meaningful only when `str_any`
    /// is false.
    strs: Vec<Arc<str>>,
    /// Too many distinct strings to track exactly — any string possible.
    str_any: bool,
    /// Some member lacks the attribute entirely.
    missing: bool,
}

impl Default for AttrBounds {
    fn default() -> Self {
        AttrBounds {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            nan: false,
            can_true: false,
            can_false: false,
            strs: Vec::new(),
            str_any: false,
            missing: false,
        }
    }
}

impl AttrBounds {
    /// Empty summary (no members recorded yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one member's concrete value.
    pub fn add(&mut self, value: &AttrValue) {
        match value {
            AttrValue::Num(x) => {
                if x.is_nan() {
                    self.nan = true;
                } else {
                    self.lo = self.lo.min(*x);
                    self.hi = self.hi.max(*x);
                }
            }
            AttrValue::Bool(true) => self.can_true = true,
            AttrValue::Bool(false) => self.can_false = true,
            AttrValue::Str(s) => self.add_str(s),
        }
    }

    fn add_str(&mut self, s: &Arc<str>) {
        if self.str_any {
            return;
        }
        if let Err(pos) = self.strs.binary_search_by(|e| e.as_ref().cmp(s.as_ref())) {
            if self.strs.len() >= MAX_TRACKED_STRS {
                self.str_any = true;
                self.strs.clear();
            } else {
                self.strs.insert(pos, s.clone());
            }
        }
    }

    /// Record one member that lacks the attribute.
    pub fn add_missing(&mut self) {
        self.missing = true;
    }

    /// Combine with a summary over a disjoint member set.
    pub fn merge(&mut self, other: &AttrBounds) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.nan |= other.nan;
        self.can_true |= other.can_true;
        self.can_false |= other.can_false;
        if other.str_any {
            self.str_any = true;
            self.strs.clear();
        } else if !self.str_any {
            for s in &other.strs {
                self.add_str(s);
            }
        }
        self.missing |= other.missing;
    }

    /// True when the member's concrete value (`Some`) or absence
    /// (`None`) is represented by this summary — the containment
    /// invariant the hierarchy's property tests check at every level.
    pub fn contains(&self, value: Option<&AttrValue>) -> bool {
        match value {
            None => self.missing,
            Some(AttrValue::Num(x)) => {
                if x.is_nan() {
                    self.nan
                } else {
                    self.lo <= *x && *x <= self.hi
                }
            }
            Some(AttrValue::Bool(true)) => self.can_true,
            Some(AttrValue::Bool(false)) => self.can_false,
            Some(AttrValue::Str(s)) => {
                self.str_any || self.strs.iter().any(|e| e.as_ref() == s.as_ref())
            }
        }
    }

    /// True when no member carries the attribute.
    pub fn is_missing_only(&self) -> bool {
        self.lo > self.hi
            && !self.nan
            && !self.can_true
            && !self.can_false
            && self.strs.is_empty()
            && !self.str_any
    }
}

/// Aggregated attribute summaries for one super-node or super-edge,
/// keyed by the **host schema's** [`AttrId`]s (the hierarchy is built
/// from the same network the constraint was compiled against, so ids
/// line up by construction). An id absent from the map means *no*
/// member carries that attribute — the missing-only summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundsMap {
    entries: Vec<(AttrId, AttrBounds)>,
}

impl BoundsMap {
    /// Empty map (every attribute missing on every member).
    pub fn new() -> Self {
        Self::default()
    }

    /// Summary for `id`, if any member carries it.
    pub fn get(&self, id: AttrId) -> Option<&AttrBounds> {
        self.entries
            .binary_search_by_key(&id, |(k, _)| *k)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Insert or replace the summary for `id`.
    pub fn set(&mut self, id: AttrId, bounds: AttrBounds) {
        match self.entries.binary_search_by_key(&id, |(k, _)| *k) {
            Ok(pos) => self.entries[pos].1 = bounds,
            Err(pos) => self.entries.insert(pos, (id, bounds)),
        }
    }

    /// Iterate `(id, bounds)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrBounds)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Number of attributes summarized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no attribute is summarized (all missing).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact summary of one concrete host node (singleton member set).
    pub fn from_node(net: &Network, node: NodeId) -> BoundsMap {
        let mut out = BoundsMap::new();
        for (id, v) in net.node_attrs(node) {
            let mut b = AttrBounds::new();
            b.add(v);
            out.entries.push((id, b));
        }
        out
    }

    /// Exact summary of one concrete host edge (singleton member set).
    pub fn from_edge(net: &Network, edge: EdgeId) -> BoundsMap {
        let mut out = BoundsMap::new();
        for (id, v) in net.edge_attrs(edge) {
            let mut b = AttrBounds::new();
            b.add(v);
            out.entries.push((id, b));
        }
        out
    }

    /// Absorb a summary over a disjoint member set: attributes present
    /// on one side only gain the other side's missing possibility.
    pub fn merge_from(&mut self, other: &BoundsMap) {
        let mut merged = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let take_self = j >= other.entries.len()
                || (i < self.entries.len() && self.entries[i].0 <= other.entries[j].0);
            let take_other = i >= self.entries.len()
                || (j < other.entries.len() && other.entries[j].0 <= self.entries[i].0);
            if take_self && take_other {
                let mut b = self.entries[i].1.clone();
                b.merge(&other.entries[j].1);
                merged.push((self.entries[i].0, b));
                i += 1;
                j += 1;
            } else if take_self {
                // Present here, absent from `other`'s members.
                let mut b = self.entries[i].1.clone();
                b.add_missing();
                merged.push((self.entries[i].0, b));
                i += 1;
            } else {
                // Present in `other`, absent from our members.
                let mut b = other.entries[j].1.clone();
                b.add_missing();
                merged.push((other.entries[j].0, b));
                j += 1;
            }
        }
        self.entries = merged;
    }
}

/// Abstract evaluation context for edge constraints: concrete query
/// side, aggregated host side (super-edge + its two endpoint
/// super-nodes).
#[derive(Debug, Clone, Copy)]
pub struct AbsEdgeCtx<'a> {
    /// Query (virtual) network — concrete, never coarsened.
    pub q: &'a Network,
    /// Query edge.
    pub v_edge: EdgeId,
    /// Query edge source.
    pub v_src: NodeId,
    /// Query edge target.
    pub v_dst: NodeId,
    /// Aggregated bounds of the host super-edge's member edges.
    pub r_edge: &'a BoundsMap,
    /// Aggregated node bounds of the super-node hosting `v_src`.
    pub r_src: &'a BoundsMap,
    /// Aggregated node bounds of the super-node hosting `v_dst`.
    pub r_dst: &'a BoundsMap,
}

/// Abstract evaluation context for node constraints.
#[derive(Debug, Clone, Copy)]
pub struct AbsNodeCtx<'a> {
    /// Query (virtual) network — concrete, never coarsened.
    pub q: &'a Network,
    /// Query node.
    pub v_node: NodeId,
    /// Aggregated node bounds of the candidate host super-node.
    pub r_node: &'a BoundsMap,
}

impl Compiled {
    /// Evaluate the edge constraint against aggregated host bounds.
    pub fn abs_edge(&self, ctx: &AbsEdgeCtx<'_>) -> Verdict {
        verdict(&eval_abs(&self.root, &AbsScope::Edge(ctx)))
    }

    /// Evaluate the node constraint against aggregated host bounds.
    pub fn abs_node(&self, ctx: &AbsNodeCtx<'_>) -> Verdict {
        verdict(&eval_abs(&self.root, &AbsScope::Node(ctx)))
    }
}

fn verdict(a: &Abs) -> Verdict {
    // `root_bool` accepts only a concrete Bool(true); Missing and
    // Bool(false) reject; any other type is an evaluation error, which
    // must surface concretely rather than be hidden by a prune.
    if a.bt || a.err || a.maybe_num() || a.maybe_str() {
        Verdict::Maybe
    } else {
        Verdict::Infeasible
    }
}

enum AbsScope<'c, 'a> {
    Edge(&'c AbsEdgeCtx<'a>),
    Node(&'c AbsNodeCtx<'a>),
}

/// Abstract value: the set of concrete [`Value`](crate::Value)s an
/// expression can take over all member choices, over-approximated as
/// per-type possibility flags (a numeric interval + NaN flag, reachable
/// booleans, a small string set, a missing flag) plus an error flag for
/// combinations that would make the concrete evaluator return `Err`.
#[derive(Debug, Clone)]
struct Abs {
    /// Can be a non-NaN number in `[lo, hi]`.
    num: bool,
    lo: f64,
    hi: f64,
    /// Can be NaN.
    nan: bool,
    /// Can be `Bool(true)` / `Bool(false)`.
    bt: bool,
    bf: bool,
    /// Reachable strings (sorted, exact unless `str_any`).
    strs: Vec<Arc<str>>,
    str_any: bool,
    /// Can be `Missing`.
    missing: bool,
    /// Some member combination makes the concrete evaluator error.
    err: bool,
}

impl Abs {
    fn bottom() -> Abs {
        Abs {
            num: false,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            nan: false,
            bt: false,
            bf: false,
            strs: Vec::new(),
            str_any: false,
            missing: false,
            err: false,
        }
    }

    fn number(x: f64) -> Abs {
        let mut a = Abs::bottom();
        if x.is_nan() {
            a.nan = true;
        } else {
            a.num = true;
            a.lo = x;
            a.hi = x;
        }
        a
    }

    fn boolean(b: bool) -> Abs {
        let mut a = Abs::bottom();
        a.bt = b;
        a.bf = !b;
        a
    }

    fn string(s: Arc<str>) -> Abs {
        let mut a = Abs::bottom();
        a.strs.push(s);
        a
    }

    fn missing() -> Abs {
        let mut a = Abs::bottom();
        a.missing = true;
        a
    }

    fn error() -> Abs {
        let mut a = Abs::bottom();
        a.err = true;
        a
    }

    fn from_bounds(b: &AttrBounds) -> Abs {
        Abs {
            num: b.lo <= b.hi,
            lo: b.lo,
            hi: b.hi,
            nan: b.nan,
            bt: b.can_true,
            bf: b.can_false,
            strs: b.strs.clone(),
            str_any: b.str_any,
            missing: b.missing,
            err: false,
        }
    }

    fn from_attr_value(v: Option<&AttrValue>) -> Abs {
        match v {
            None => Abs::missing(),
            Some(AttrValue::Num(x)) => Abs::number(*x),
            Some(AttrValue::Bool(b)) => Abs::boolean(*b),
            Some(AttrValue::Str(s)) => Abs::string(s.clone()),
        }
    }

    /// Can take any numeric value (including NaN).
    fn maybe_num(&self) -> bool {
        self.num || self.nan
    }

    fn maybe_bool(&self) -> bool {
        self.bt || self.bf
    }

    fn maybe_str(&self) -> bool {
        !self.strs.is_empty() || self.str_any
    }

    /// Can take any value at all (present, not an error path).
    fn maybe_present(&self) -> bool {
        self.maybe_num() || self.maybe_bool() || self.maybe_str()
    }
}

fn load_abs(scope: &AbsScope<'_, '_>, obj: Object, attr: Option<AttrId>) -> Abs {
    let Some(attr) = attr else {
        // Name unknown to the owning schema: always Missing, exactly as
        // in the concrete evaluator.
        return Abs::missing();
    };
    match scope {
        AbsScope::Edge(c) => match obj {
            // Concrete query side.
            Object::VEdge => Abs::from_attr_value(c.q.edge_attr(c.v_edge, attr)),
            Object::VSource => Abs::from_attr_value(c.q.node_attr(c.v_src, attr)),
            Object::VTarget => Abs::from_attr_value(c.q.node_attr(c.v_dst, attr)),
            // Aggregated host side.
            Object::REdge => bounds_abs(c.r_edge, attr),
            Object::RSource => bounds_abs(c.r_src, attr),
            Object::RTarget => bounds_abs(c.r_dst, attr),
            Object::VNode | Object::RNode => Abs::error(),
        },
        AbsScope::Node(c) => match obj {
            Object::VNode => Abs::from_attr_value(c.q.node_attr(c.v_node, attr)),
            Object::RNode => bounds_abs(c.r_node, attr),
            _ => Abs::error(),
        },
    }
}

fn bounds_abs(map: &BoundsMap, attr: AttrId) -> Abs {
    match map.get(attr) {
        Some(b) => Abs::from_bounds(b),
        None => Abs::missing(),
    }
}

fn eval_abs(node: &Node, scope: &AbsScope<'_, '_>) -> Abs {
    match node {
        Node::Num(x) => Abs::number(*x),
        Node::Str(s) => Abs::string(s.clone()),
        Node::Bool(b) => Abs::boolean(*b),
        Node::Attr(o, a) => load_abs(scope, *o, *a),
        Node::Unary(op, e) => {
            let v = eval_abs(e, scope);
            let mut out = Abs::bottom();
            out.err = v.err;
            out.missing = v.missing;
            match op {
                UnOp::Not => {
                    out.bt = v.bf;
                    out.bf = v.bt;
                    if v.maybe_num() || v.maybe_str() {
                        out.err = true;
                    }
                }
                UnOp::Neg => {
                    if v.num {
                        out.num = true;
                        out.lo = -v.hi;
                        out.hi = -v.lo;
                    }
                    out.nan = v.nan;
                    if v.maybe_bool() || v.maybe_str() {
                        out.err = true;
                    }
                }
            }
            out
        }
        Node::Binary(op, l, r) => abs_binary(*op, &eval_abs(l, scope), &eval_abs(r, scope)),
        Node::Call(f, args) => abs_call(*f, args, scope),
    }
}

/// `can_eq` / `can_ne` / type-error possibilities of `l == r` over all
/// concretizations. NaN compares unequal to everything (IEEE), so a
/// possible NaN on either side adds `can_ne`.
fn abs_eq(l: &Abs, r: &Abs) -> (bool, bool, bool) {
    let mut can_eq = false;
    let mut can_ne = false;
    let mut err = false;
    if l.num && r.num {
        can_eq |= l.lo <= r.hi && r.lo <= l.hi;
        // Unequal unless both sides are the same single point.
        can_ne |= !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo);
    }
    if (l.nan && r.maybe_num()) || (r.nan && l.maybe_num()) {
        can_ne = true;
    }
    if l.maybe_bool() && r.maybe_bool() {
        can_eq |= (l.bt && r.bt) || (l.bf && r.bf);
        can_ne |= (l.bt && r.bf) || (l.bf && r.bt);
    }
    if l.maybe_str() && r.maybe_str() {
        if l.str_any || r.str_any {
            can_eq = true;
            can_ne = true;
        } else {
            can_eq |= l.strs.iter().any(|s| r.strs.contains(s));
            can_ne |= !(l.strs.len() == 1 && r.strs.len() == 1 && l.strs[0] == r.strs[0]);
        }
    }
    // Any cross-type pairing is a concrete TypeMismatch.
    err |= l.maybe_num() && (r.maybe_bool() || r.maybe_str());
    err |= l.maybe_bool() && (r.maybe_num() || r.maybe_str());
    err |= l.maybe_str() && (r.maybe_num() || r.maybe_bool());
    (can_eq, can_ne, err)
}

/// Interval result of a numeric binary op over `[l.lo,l.hi] × [r.lo,r.hi]`,
/// as `(lo, hi, nan)`. Corner evaluation is exact for `+ - *` (extrema
/// of monotone/bilinear maps sit on box corners); division with a
/// zero-crossing denominator and non-singleton remainders widen to the
/// whole line plus NaN.
fn interval_arith(op: BinOp, l: &Abs, r: &Abs) -> (f64, f64, bool) {
    let mut nan = l.nan || r.nan;
    if !(l.num && r.num) {
        return (f64::INFINITY, f64::NEG_INFINITY, nan);
    }
    match op {
        BinOp::Div if r.lo <= 0.0 && r.hi >= 0.0 => {
            // x/0 is ±∞ and 0/0 is NaN: the result is unbounded.
            (f64::NEG_INFINITY, f64::INFINITY, true)
        }
        BinOp::Rem => {
            if l.lo == l.hi && r.lo == r.hi {
                let v = l.lo % r.lo;
                if v.is_nan() {
                    (f64::INFINITY, f64::NEG_INFINITY, true)
                } else {
                    (v, v, nan)
                }
            } else {
                (f64::NEG_INFINITY, f64::INFINITY, true)
            }
        }
        _ => {
            let apply = |a: f64, b: f64| match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!("numeric op"),
            };
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for a in [l.lo, l.hi] {
                for b in [r.lo, r.hi] {
                    let v = apply(a, b);
                    if v.is_nan() {
                        // ∞−∞, 0·∞, ∞/∞ corners.
                        nan = true;
                    } else {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
            (lo, hi, nan)
        }
    }
}

fn abs_binary(op: BinOp, l: &Abs, r: &Abs) -> Abs {
    let mut out = Abs::bottom();
    match op {
        BinOp::And => {
            // Short-circuit: a definite `false` left arm hides the right
            // arm entirely (including its errors).
            out.bt = l.bt && r.bt;
            out.bf = l.bf || ((l.bt || l.missing) && r.bf);
            out.missing = (l.missing && (r.bt || r.missing)) || (l.bt && r.missing);
            out.err = l.err
                || (l.maybe_num() || l.maybe_str())
                || ((l.bt || l.missing) && (r.err || r.maybe_num() || r.maybe_str()));
            out
        }
        BinOp::Or => {
            out.bt = l.bt || ((l.bf || l.missing) && r.bt);
            out.bf = l.bf && r.bf;
            out.missing = (l.missing && (r.bf || r.missing)) || (l.bf && r.missing);
            out.err = l.err
                || (l.maybe_num() || l.maybe_str())
                || ((l.bf || l.missing) && (r.err || r.maybe_num() || r.maybe_str()));
            out
        }
        _ => {
            // Strict operators: Missing on either side yields Missing;
            // the value result ranges over present×present combos.
            out.err = l.err || r.err;
            out.missing = l.missing || r.missing;
            let both_present = l.maybe_present() && r.maybe_present();
            match op {
                BinOp::Eq | BinOp::Ne => {
                    if both_present {
                        let (eq, ne, err) = abs_eq(l, r);
                        out.err |= err;
                        if op == BinOp::Eq {
                            out.bt = eq;
                            out.bf = ne;
                        } else {
                            out.bt = ne;
                            out.bf = eq;
                        }
                    }
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if both_present {
                        out.err |=
                            l.maybe_bool() || l.maybe_str() || r.maybe_bool() || r.maybe_str();
                        if l.num && r.num {
                            // ∃x∈l, y∈r with x<y ⇔ l.lo < r.hi, etc.
                            let (t, f) = match op {
                                BinOp::Lt => (l.lo < r.hi, l.hi >= r.lo),
                                BinOp::Le => (l.lo <= r.hi, l.hi > r.lo),
                                BinOp::Gt => (l.hi > r.lo, l.lo <= r.hi),
                                BinOp::Ge => (l.hi >= r.lo, l.lo < r.hi),
                                _ => unreachable!(),
                            };
                            out.bt = t;
                            out.bf = f;
                        }
                        if (l.nan && r.maybe_num()) || (r.nan && l.maybe_num()) {
                            // Any comparison with NaN is false.
                            out.bf = true;
                        }
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    if both_present {
                        out.err |=
                            l.maybe_bool() || l.maybe_str() || r.maybe_bool() || r.maybe_str();
                        if l.maybe_num() && r.maybe_num() {
                            let (lo, hi, nan) = interval_arith(op, l, r);
                            if lo <= hi {
                                out.num = true;
                                out.lo = lo;
                                out.hi = hi;
                            }
                            out.nan = nan;
                        }
                    }
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
            out
        }
    }
}

fn abs_call(f: Func, args: &[Node], scope: &AbsScope<'_, '_>) -> Abs {
    match f {
        Func::IsBoundTo => {
            let a = eval_abs(&args[0], scope);
            let b = eval_abs(&args[1], scope);
            let mut out = Abs::bottom();
            out.err = a.err;
            // Query side absent: vacuously true (the right arm is never
            // evaluated on that path, so its errors stay hidden).
            if a.missing {
                out.bt = true;
            }
            if a.maybe_present() {
                out.err |= b.err;
                if b.missing {
                    out.bf = true;
                }
                if b.maybe_present() {
                    let (eq, ne, err) = abs_eq(&a, &b);
                    out.bt |= eq;
                    out.bf |= ne;
                    out.err |= err;
                }
            }
            out
        }
        Func::Has => {
            let a = eval_abs(&args[0], scope);
            let mut out = Abs::bottom();
            out.err = a.err;
            out.bt = a.maybe_present();
            out.bf = a.missing;
            out
        }
        Func::Abs | Func::Sqrt => {
            let a = eval_abs(&args[0], scope);
            let mut out = Abs::bottom();
            out.err = a.err || a.maybe_bool() || a.maybe_str();
            out.missing = a.missing;
            if f == Func::Abs {
                if a.num {
                    out.num = true;
                    if a.lo <= 0.0 && a.hi >= 0.0 {
                        out.lo = 0.0;
                    } else {
                        out.lo = a.lo.abs().min(a.hi.abs());
                    }
                    out.hi = a.lo.abs().max(a.hi.abs());
                }
                out.nan = a.nan;
            } else {
                // sqrt of a negative is NaN.
                if a.num && a.hi >= 0.0 {
                    out.num = true;
                    out.lo = a.lo.max(0.0).sqrt();
                    out.hi = a.hi.sqrt();
                }
                out.nan = a.nan || (a.num && a.lo < 0.0);
            }
            out
        }
        Func::Min | Func::Max => {
            let a = eval_abs(&args[0], scope);
            let b = eval_abs(&args[1], scope);
            let mut out = Abs::bottom();
            out.err = a.err
                || b.err
                || a.maybe_bool()
                || a.maybe_str()
                || b.maybe_bool()
                || b.maybe_str();
            out.missing = a.missing || b.missing;
            // f64::min/max ignore a NaN operand, so NaN survives only
            // when both sides are NaN; a one-sided NaN yields the other
            // side's value, which its own range already covers.
            match (a.num, b.num) {
                (true, true) => {
                    out.num = true;
                    if f == Func::Min {
                        out.lo = a.lo.min(b.lo);
                        out.hi = a.hi.min(b.hi);
                    } else {
                        out.lo = a.lo.max(b.lo);
                        out.hi = a.hi.max(b.hi);
                    }
                    if a.nan {
                        out.lo = out.lo.min(b.lo);
                        out.hi = out.hi.max(b.hi);
                    }
                    if b.nan {
                        out.lo = out.lo.min(a.lo);
                        out.hi = out.hi.max(a.hi);
                    }
                }
                (true, false) => {
                    out.num = b.nan && a.num;
                    out.lo = a.lo;
                    out.hi = a.hi;
                }
                (false, true) => {
                    out.num = a.nan && b.num;
                    out.lo = b.lo;
                    out.hi = b.hi;
                }
                (false, false) => {}
            }
            out.nan = a.nan && b.nan;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use netgraph::Direction;

    fn query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("qa");
        let b = q.add_node("qb");
        let e = q.add_edge(a, b);
        q.set_edge_attr(e, "avgDelay", 100.0);
        q.set_node_attr(a, "osType", "linux");
        q.set_node_attr(a, "cpu", 2.0);
        q
    }

    /// A host whose schema carries the attributes the tests aggregate.
    fn host() -> Network {
        let mut r = Network::new(Direction::Undirected);
        let u = r.add_node("u");
        let v = r.add_node("v");
        let e = r.add_edge(u, v);
        r.set_edge_attr(e, "avgDelay", 95.0);
        r.set_node_attr(u, "osType", "linux");
        r.set_node_attr(u, "cpu", 4.0);
        r.set_node_attr(v, "region", "hot");
        r
    }

    fn bounds_num(lo: f64, hi: f64) -> AttrBounds {
        let mut b = AttrBounds::new();
        b.add(&AttrValue::Num(lo));
        b.add(&AttrValue::Num(hi));
        b
    }

    fn compile(src: &str, q: &Network, r: &Network) -> Compiled {
        Compiled::new(&parse(src).unwrap(), q, r)
    }

    fn edge_verdict(
        src: &str,
        q: &Network,
        r: &Network,
        r_edge: &BoundsMap,
        r_src: &BoundsMap,
        r_dst: &BoundsMap,
    ) -> Verdict {
        compile(src, q, r).abs_edge(&AbsEdgeCtx {
            q,
            v_edge: EdgeId(0),
            v_src: NodeId(0),
            v_dst: NodeId(1),
            r_edge,
            r_src,
            r_dst,
        })
    }

    #[test]
    fn delay_window_prunes_disjoint_range() {
        let (q, r) = (query(), host());
        let id = r.schema().get("avgDelay").unwrap();
        let mut near = BoundsMap::new();
        near.set(id, bounds_num(90.0, 105.0));
        let mut far = BoundsMap::new();
        far.set(id, bounds_num(500.0, 900.0));
        let empty = BoundsMap::new();
        let expr = "vEdge.avgDelay >= 0.9*rEdge.avgDelay && vEdge.avgDelay <= 1.1*rEdge.avgDelay";
        assert_eq!(
            edge_verdict(expr, &q, &r, &near, &empty, &empty),
            Verdict::Maybe
        );
        assert_eq!(
            edge_verdict(expr, &q, &r, &far, &empty, &empty),
            Verdict::Infeasible
        );
    }

    #[test]
    fn missing_attr_is_a_sound_prune_for_strict_compare() {
        let (q, r) = (query(), host());
        // No member carries `avgDelay`: the concrete result is Missing
        // for every member, which the root maps to false.
        let empty = BoundsMap::new();
        assert_eq!(
            edge_verdict("rEdge.avgDelay < 10.0", &q, &r, &empty, &empty, &empty),
            Verdict::Infeasible
        );
        // But an || with a true arm stays feasible.
        assert_eq!(
            edge_verdict(
                "rEdge.avgDelay < 10.0 || true",
                &q,
                &r,
                &empty,
                &empty,
                &empty
            ),
            Verdict::Maybe
        );
    }

    #[test]
    fn string_region_prunes() {
        let (q, r) = (query(), host());
        let id = r.schema().get("region").unwrap();
        let mut hot = AttrBounds::new();
        hot.add(&AttrValue::str("hot"));
        hot.add(&AttrValue::str("cold"));
        let mut only_cold = AttrBounds::new();
        only_cold.add(&AttrValue::str("cold"));
        let mut m_hot = BoundsMap::new();
        m_hot.set(id, hot);
        let mut m_cold = BoundsMap::new();
        m_cold.set(id, only_cold);
        let empty = BoundsMap::new();
        let expr = "rSource.region == \"hot\"";
        assert_eq!(
            edge_verdict(expr, &q, &r, &empty, &m_hot, &empty),
            Verdict::Maybe
        );
        assert_eq!(
            edge_verdict(expr, &q, &r, &empty, &m_cold, &empty),
            Verdict::Infeasible
        );
    }

    #[test]
    fn is_bound_to_vacuous_when_query_side_missing() {
        let (q, r) = (query(), host());
        let empty = BoundsMap::new();
        // qb has no osType → vacuously true regardless of host bounds.
        assert_eq!(
            edge_verdict(
                "isBoundTo(vTarget.osType, rTarget.osType)",
                &q,
                &r,
                &empty,
                &empty,
                &empty
            ),
            Verdict::Maybe
        );
        // qa has osType=linux and no host member carries osType → false.
        assert_eq!(
            edge_verdict(
                "isBoundTo(vSource.osType, rSource.osType)",
                &q,
                &r,
                &empty,
                &empty,
                &empty
            ),
            Verdict::Infeasible
        );
    }

    #[test]
    fn possible_type_error_never_prunes() {
        let (q, r) = (query(), host());
        let id = r.schema().get("osType").unwrap();
        let mut m = BoundsMap::new();
        let mut b = AttrBounds::new();
        b.add(&AttrValue::str("linux"));
        m.set(id, b);
        let empty = BoundsMap::new();
        // Comparing a string bound with a number would error concretely.
        assert_eq!(
            edge_verdict("rSource.osType > 3.0", &q, &r, &empty, &m, &empty),
            Verdict::Maybe
        );
    }

    #[test]
    fn division_by_zero_crossing_range_stays_maybe() {
        let (q, r) = (query(), host());
        let id = r.schema().get("avgDelay").unwrap();
        let mut m = BoundsMap::new();
        m.set(id, bounds_num(-1.0, 1.0));
        let empty = BoundsMap::new();
        // 1/x over [-1,1] reaches ±∞; any comparison outcome possible.
        assert_eq!(
            edge_verdict("1.0 / rEdge.avgDelay > 1000.0", &q, &r, &m, &empty, &empty),
            Verdict::Maybe
        );
    }

    #[test]
    fn bounds_contains_and_merge() {
        let mut a = AttrBounds::new();
        a.add(&AttrValue::Num(3.0));
        a.add(&AttrValue::str("x"));
        let mut b = AttrBounds::new();
        b.add(&AttrValue::Num(10.0));
        b.add_missing();
        a.merge(&b);
        assert!(a.contains(Some(&AttrValue::Num(3.0))));
        assert!(a.contains(Some(&AttrValue::Num(10.0))));
        assert!(a.contains(Some(&AttrValue::Num(7.0)))); // interval
        assert!(!a.contains(Some(&AttrValue::Num(11.0))));
        assert!(a.contains(Some(&AttrValue::str("x"))));
        assert!(!a.contains(Some(&AttrValue::str("y"))));
        assert!(a.contains(None));
    }

    #[test]
    fn bounds_map_merge_tracks_one_sided_attrs() {
        let mut r = Network::new(Direction::Undirected);
        let u = r.add_node("u");
        let v = r.add_node("v");
        r.set_node_attr(u, "cpu", 4.0);
        r.set_node_attr(v, "mem", 8.0);
        let cpu = r.schema().get("cpu").unwrap();
        let mem = r.schema().get("mem").unwrap();
        let mut m = BoundsMap::from_node(&r, u);
        m.merge_from(&BoundsMap::from_node(&r, v));
        // cpu: present on u, missing on v.
        let b = m.get(cpu).unwrap();
        assert!(b.contains(Some(&AttrValue::Num(4.0))));
        assert!(b.contains(None));
        let b = m.get(mem).unwrap();
        assert!(b.contains(Some(&AttrValue::Num(8.0))));
        assert!(b.contains(None));
    }

    #[test]
    fn string_overflow_degrades_to_any() {
        let mut b = AttrBounds::new();
        for i in 0..20 {
            b.add(&AttrValue::str(format!("s{i}")));
        }
        assert!(b.contains(Some(&AttrValue::str("neverseen"))));
    }

    #[test]
    fn node_context_abstract_eval() {
        let (q, r) = (query(), host());
        let cpu = r.schema().get("cpu").unwrap();
        let c = compile("rNode.cpu >= vNode.cpu", &q, &r);
        let mut strong = BoundsMap::new();
        strong.set(cpu, bounds_num(2.0, 16.0));
        let mut weak = BoundsMap::new();
        weak.set(cpu, bounds_num(0.0, 1.0));
        let ctx = |m: &BoundsMap| -> Verdict {
            c.abs_node(&AbsNodeCtx {
                q: &q,
                v_node: NodeId(0), // cpu = 2.0
                r_node: m,
            })
        };
        assert_eq!(ctx(&strong), Verdict::Maybe);
        assert_eq!(ctx(&weak), Verdict::Infeasible);
    }
}

//! Compilation of parsed expressions against a (query, host) network pair,
//! and the evaluator that runs on the embedding search's hot path.
//!
//! Compilation resolves every `object.attr` reference to an interned
//! [`AttrId`] on the owning network's schema — attribute names are hashed
//! once per query, not once per candidate pair. An attribute name that does
//! not exist in the owning schema compiles to a reference that always
//! evaluates to [`Value::Missing`] (the element can never carry it).

use crate::ast::{BinOp, Expr, Func, Object, UnOp};
use crate::value::{EvalError, Value};
use netgraph::{AttrId, AttrValue, EdgeId, Network, NodeId};

/// A compiled constraint expression, bound to one query/host schema pair.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub(crate) root: Node,
    uses_node_objects: bool,
    uses_edge_objects: bool,
}

/// Resolved expression node. Mirrors [`Expr`] with attribute references
/// resolved to `(Object, Option<AttrId>)`.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Num(f64),
    Str(std::sync::Arc<str>),
    Bool(bool),
    Attr(Object, Option<AttrId>),
    Unary(UnOp, Box<Node>),
    Binary(BinOp, Box<Node>, Box<Node>),
    Call(Func, Vec<Node>),
}

/// Evaluation context for edge constraints: one query edge mapped onto one
/// host edge, with an explicit endpoint orientation. For undirected
/// networks the engine evaluates both orientations of the host edge.
#[derive(Debug, Clone, Copy)]
pub struct EdgeCtx<'a> {
    /// Query (virtual) network.
    pub q: &'a Network,
    /// Hosting (real) network.
    pub r: &'a Network,
    /// Query edge.
    pub v_edge: EdgeId,
    /// Query edge source.
    pub v_src: NodeId,
    /// Query edge target.
    pub v_dst: NodeId,
    /// Host edge.
    pub r_edge: EdgeId,
    /// Host node that `v_src` maps to.
    pub r_src: NodeId,
    /// Host node that `v_dst` maps to.
    pub r_dst: NodeId,
}

/// Evaluation context for node constraints (isolated query nodes, or
/// node-only attribute requirements).
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx<'a> {
    /// Query (virtual) network.
    pub q: &'a Network,
    /// Hosting (real) network.
    pub r: &'a Network,
    /// Query node.
    pub v_node: NodeId,
    /// Candidate host node.
    pub r_node: NodeId,
}

impl Compiled {
    /// Compile `expr` against the two networks' schemas.
    pub fn new(expr: &Expr, q: &Network, r: &Network) -> Compiled {
        fn resolve(expr: &Expr, q: &Network, r: &Network) -> Node {
            match expr {
                Expr::Num(x) => Node::Num(*x),
                Expr::Str(s) => Node::Str(std::sync::Arc::from(s.as_str())),
                Expr::Bool(b) => Node::Bool(*b),
                Expr::Attr(o, name) => {
                    let schema = if o.is_virtual() {
                        q.schema()
                    } else {
                        r.schema()
                    };
                    Node::Attr(*o, schema.get(name))
                }
                Expr::Unary(op, e) => Node::Unary(*op, Box::new(resolve(e, q, r))),
                Expr::Binary(op, l, m) => {
                    Node::Binary(*op, Box::new(resolve(l, q, r)), Box::new(resolve(m, q, r)))
                }
                Expr::Call(f, args) => {
                    Node::Call(*f, args.iter().map(|a| resolve(a, q, r)).collect())
                }
            }
        }
        let mut uses_node_objects = false;
        let mut uses_edge_objects = false;
        expr.walk(&mut |e| {
            if let Expr::Attr(o, _) = e {
                match o {
                    Object::VNode | Object::RNode => uses_node_objects = true,
                    _ => uses_edge_objects = true,
                }
            }
        });
        Compiled {
            root: resolve(expr, q, r),
            uses_node_objects,
            uses_edge_objects,
        }
    }

    /// True when the expression references `vNode`/`rNode`.
    pub fn uses_node_objects(&self) -> bool {
        self.uses_node_objects
    }

    /// True when the expression references any of the Table I edge-context
    /// objects (`vEdge`, `rEdge`, `vSource`, …).
    pub fn uses_edge_objects(&self) -> bool {
        self.uses_edge_objects
    }

    /// Evaluate as an edge constraint. `Ok(true)` accepts the candidate
    /// pair; `Ok(false)` rejects it (including `Missing` at the root);
    /// `Err` reports a malformed query (type error or context misuse).
    pub fn eval_edge(&self, ctx: &EdgeCtx<'_>) -> Result<bool, EvalError> {
        let v = eval(&self.root, &Scope::Edge(ctx))?;
        root_bool(v)
    }

    /// Evaluate as a node constraint.
    pub fn eval_node(&self, ctx: &NodeCtx<'_>) -> Result<bool, EvalError> {
        let v = eval(&self.root, &Scope::Node(ctx))?;
        root_bool(v)
    }
}

fn root_bool(v: Value) -> Result<bool, EvalError> {
    match v {
        Value::Bool(b) => Ok(b),
        Value::Missing => Ok(false),
        other => Err(EvalError::TypeMismatch {
            op: "constraint root",
            left: other.type_name(),
            right: "",
        }),
    }
}

enum Scope<'c, 'a> {
    Edge(&'c EdgeCtx<'a>),
    Node(&'c NodeCtx<'a>),
}

fn load(scope: &Scope<'_, '_>, obj: Object, attr: Option<AttrId>) -> Result<Value, EvalError> {
    let Some(attr) = attr else {
        return Ok(Value::Missing);
    };
    let raw: Option<&AttrValue> = match scope {
        Scope::Edge(c) => match obj {
            Object::VEdge => c.q.edge_attr(c.v_edge, attr),
            Object::REdge => c.r.edge_attr(c.r_edge, attr),
            Object::VSource => c.q.node_attr(c.v_src, attr),
            Object::VTarget => c.q.node_attr(c.v_dst, attr),
            Object::RSource => c.r.node_attr(c.r_src, attr),
            Object::RTarget => c.r.node_attr(c.r_dst, attr),
            Object::VNode | Object::RNode => {
                return Err(EvalError::ObjectUnavailable(obj));
            }
        },
        Scope::Node(c) => match obj {
            Object::VNode => c.q.node_attr(c.v_node, attr),
            Object::RNode => c.r.node_attr(c.r_node, attr),
            // The edge-context objects are meaningless when matching a
            // lone node.
            _ => return Err(EvalError::ObjectUnavailable(obj)),
        },
    };
    Ok(match raw {
        Some(AttrValue::Num(x)) => Value::Num(*x),
        Some(AttrValue::Bool(b)) => Value::Bool(*b),
        Some(AttrValue::Str(s)) => Value::Str(s.clone()),
        None => Value::Missing,
    })
}

fn eval(node: &Node, scope: &Scope<'_, '_>) -> Result<Value, EvalError> {
    match node {
        Node::Num(x) => Ok(Value::Num(*x)),
        Node::Str(s) => Ok(Value::Str(s.clone())),
        Node::Bool(b) => Ok(Value::Bool(*b)),
        Node::Attr(o, a) => load(scope, *o, *a),
        Node::Unary(op, e) => {
            let v = eval(e, scope)?;
            match (op, v) {
                (_, Value::Missing) => Ok(Value::Missing),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Neg, Value::Num(x)) => Ok(Value::Num(-x)),
                (UnOp::Not, v) => Err(EvalError::TypeMismatch {
                    op: "!",
                    left: v.type_name(),
                    right: "",
                }),
                (UnOp::Neg, v) => Err(EvalError::TypeMismatch {
                    op: "-",
                    left: v.type_name(),
                    right: "",
                }),
            }
        }
        Node::Binary(op, l, r) => eval_binary(*op, l, r, scope),
        Node::Call(f, args) => eval_call(*f, args, scope),
    }
}

fn eval_binary(op: BinOp, l: &Node, r: &Node, scope: &Scope<'_, '_>) -> Result<Value, EvalError> {
    // Kleene logic with short-circuiting for && and ||.
    match op {
        BinOp::And => {
            let lv = eval(l, scope)?;
            match lv {
                Value::Bool(false) => return Ok(Value::Bool(false)),
                Value::Bool(true) | Value::Missing => {}
                other => {
                    return Err(EvalError::TypeMismatch {
                        op: "&&",
                        left: other.type_name(),
                        right: "",
                    })
                }
            }
            let rv = eval(r, scope)?;
            return match (lv, rv) {
                (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                (Value::Missing, _) | (_, Value::Missing) => Ok(Value::Missing),
                (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                (_, other) => Err(EvalError::TypeMismatch {
                    op: "&&",
                    left: "bool",
                    right: other.type_name(),
                }),
            };
        }
        BinOp::Or => {
            let lv = eval(l, scope)?;
            match lv {
                Value::Bool(true) => return Ok(Value::Bool(true)),
                Value::Bool(false) | Value::Missing => {}
                other => {
                    return Err(EvalError::TypeMismatch {
                        op: "||",
                        left: other.type_name(),
                        right: "",
                    })
                }
            }
            let rv = eval(r, scope)?;
            return match (lv, rv) {
                (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                (Value::Missing, _) | (_, Value::Missing) => Ok(Value::Missing),
                (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                (_, other) => Err(EvalError::TypeMismatch {
                    op: "||",
                    left: "bool",
                    right: other.type_name(),
                }),
            };
        }
        _ => {}
    }

    let lv = eval(l, scope)?;
    let rv = eval(r, scope)?;
    if lv.is_missing() || rv.is_missing() {
        return Ok(Value::Missing);
    }
    let mismatch = |op: &'static str| EvalError::TypeMismatch {
        op,
        left: lv.type_name(),
        right: rv.type_name(),
    };
    match op {
        BinOp::Eq | BinOp::Ne => {
            let eq = match (&lv, &rv) {
                (Value::Num(a), Value::Num(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                (Value::Str(a), Value::Str(b)) => a == b,
                _ => return Err(mismatch(op.symbol())),
            };
            Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (&lv, &rv) {
            (Value::Num(a), Value::Num(b)) => Ok(Value::Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            })),
            _ => Err(mismatch(op.symbol())),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (&lv, &rv) {
            (Value::Num(a), Value::Num(b)) => Ok(Value::Num(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                // Division by zero follows IEEE 754 (±inf / NaN), exactly
                // as Java doubles behave in the original implementation.
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                _ => unreachable!(),
            })),
            _ => Err(mismatch(op.symbol())),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn eval_call(f: Func, args: &[Node], scope: &Scope<'_, '_>) -> Result<Value, EvalError> {
    match f {
        Func::IsBoundTo => {
            // isBoundTo(v, r): vacuously true when the first (query-side)
            // value is absent; false when present but the host-side value
            // is absent; equality otherwise (§VI-B).
            let a = eval(&args[0], scope)?;
            if a.is_missing() {
                return Ok(Value::Bool(true));
            }
            let b = eval(&args[1], scope)?;
            if b.is_missing() {
                return Ok(Value::Bool(false));
            }
            let eq = match (&a, &b) {
                (Value::Num(x), Value::Num(y)) => x == y,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Str(x), Value::Str(y)) => x == y,
                _ => {
                    return Err(EvalError::TypeMismatch {
                        op: "isBoundTo",
                        left: a.type_name(),
                        right: b.type_name(),
                    })
                }
            };
            Ok(Value::Bool(eq))
        }
        Func::Has => {
            let a = eval(&args[0], scope)?;
            Ok(Value::Bool(!a.is_missing()))
        }
        Func::Abs | Func::Sqrt => {
            let a = eval(&args[0], scope)?;
            match a {
                Value::Missing => Ok(Value::Missing),
                Value::Num(x) => Ok(Value::Num(if f == Func::Abs {
                    x.abs()
                } else {
                    // Negative input yields NaN, like Java's Math.sqrt;
                    // NaN comparisons are false, so the pair is rejected.
                    x.sqrt()
                })),
                other => Err(EvalError::TypeMismatch {
                    op: f.name(),
                    left: other.type_name(),
                    right: "",
                }),
            }
        }
        Func::Min | Func::Max => {
            let a = eval(&args[0], scope)?;
            let b = eval(&args[1], scope)?;
            match (&a, &b) {
                (Value::Missing, _) | (_, Value::Missing) => Ok(Value::Missing),
                (Value::Num(x), Value::Num(y)) => Ok(Value::Num(if f == Func::Min {
                    x.min(*y)
                } else {
                    x.max(*y)
                })),
                _ => Err(EvalError::TypeMismatch {
                    op: f.name(),
                    left: a.type_name(),
                    right: b.type_name(),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use netgraph::Direction;

    /// Two-node, one-edge query and host fixtures.
    fn fixtures() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("qa");
        let b = q.add_node("qb");
        let e = q.add_edge(a, b);
        q.set_edge_attr(e, "avgDelay", 100.0);
        q.set_node_attr(a, "osType", "linux");
        q.set_node_attr(a, "x", 0.0);
        q.set_node_attr(a, "y", 0.0);
        q.set_node_attr(b, "x", 30.0);
        q.set_node_attr(b, "y", 40.0);

        let mut r = Network::new(Direction::Undirected);
        let u = r.add_node("ru");
        let v = r.add_node("rv");
        let f = r.add_edge(u, v);
        r.set_edge_attr(f, "avgDelay", 95.0);
        r.set_edge_attr(f, "minDelay", 80.0);
        r.set_edge_attr(f, "maxDelay", 120.0);
        r.set_node_attr(u, "osType", "linux");
        r.set_node_attr(v, "osType", "freebsd");
        (q, r)
    }

    fn edge_ctx<'a>(q: &'a Network, r: &'a Network) -> EdgeCtx<'a> {
        EdgeCtx {
            q,
            r,
            v_edge: EdgeId(0),
            v_src: NodeId(0),
            v_dst: NodeId(1),
            r_edge: EdgeId(0),
            r_src: NodeId(0),
            r_dst: NodeId(1),
        }
    }

    fn eval_edge_expr(src: &str, q: &Network, r: &Network) -> Result<bool, EvalError> {
        let e = parse(src).unwrap();
        Compiled::new(&e, q, r).eval_edge(&edge_ctx(q, r))
    }

    #[test]
    fn paper_delay_window_matches() {
        let (q, r) = fixtures();
        // 100 ∈ [0.9·95, 1.1·95] = [85.5, 104.5] → true
        assert_eq!(
            eval_edge_expr(
                "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay",
                &q,
                &r
            ),
            Ok(true)
        );
    }

    #[test]
    fn paper_min_max_window() {
        let (q, r) = fixtures();
        assert_eq!(
            eval_edge_expr(
                "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay",
                &q,
                &r
            ),
            Ok(true)
        );
        assert_eq!(
            eval_edge_expr("vEdge.avgDelay>=rEdge.maxDelay", &q, &r),
            Ok(false)
        );
    }

    #[test]
    fn paper_is_bound_to_os_type() {
        let (q, r) = fixtures();
        // qa has osType=linux; ru has linux → true in this orientation.
        assert_eq!(
            eval_edge_expr("isBoundTo(vSource.osType, rSource.osType)", &q, &r),
            Ok(true)
        );
        // qb has no osType → vacuously true.
        assert_eq!(
            eval_edge_expr("isBoundTo(vTarget.osType, rTarget.osType)", &q, &r),
            Ok(true)
        );
        // Force mismatch: qa=linux vs rTarget=freebsd.
        assert_eq!(
            eval_edge_expr("isBoundTo(vSource.osType, rTarget.osType)", &q, &r),
            Ok(false)
        );
    }

    #[test]
    fn is_bound_to_missing_host_side() {
        let (q, r) = fixtures();
        // Query side present, host side attribute name unknown → false.
        assert_eq!(
            eval_edge_expr("isBoundTo(vSource.osType, rSource.nonexistent)", &q, &r),
            Ok(false)
        );
    }

    #[test]
    fn paper_geo_distance() {
        let (q, r) = fixtures();
        // Distance between (0,0) and (30,40) is 50 < 100.
        assert_eq!(
            eval_edge_expr(
                "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + \
                 (vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0",
                &q,
                &r
            ),
            Ok(true)
        );
    }

    #[test]
    fn missing_attr_rejects_candidate() {
        let (q, r) = fixtures();
        assert_eq!(eval_edge_expr("vEdge.bandwidth > 10", &q, &r), Ok(false));
        // But disjunction with a true arm still matches (Kleene).
        assert_eq!(
            eval_edge_expr("vEdge.bandwidth > 10 || true", &q, &r),
            Ok(true)
        );
        // Conjunction with false short-circuits to false, not missing.
        assert_eq!(
            eval_edge_expr("false && vEdge.bandwidth > 10", &q, &r),
            Ok(false)
        );
    }

    #[test]
    fn has_function() {
        let (q, r) = fixtures();
        assert_eq!(eval_edge_expr("has(vEdge.avgDelay)", &q, &r), Ok(true));
        assert_eq!(eval_edge_expr("has(vEdge.bandwidth)", &q, &r), Ok(false));
        assert_eq!(
            eval_edge_expr("!has(vEdge.bandwidth) || vEdge.bandwidth > 5", &q, &r),
            Ok(true)
        );
    }

    #[test]
    fn arithmetic_and_functions() {
        let (q, r) = fixtures();
        assert_eq!(
            eval_edge_expr("abs(vEdge.avgDelay - rEdge.avgDelay) <= 5.0", &q, &r),
            Ok(true)
        );
        assert_eq!(
            eval_edge_expr("min(vEdge.avgDelay, rEdge.avgDelay) == 95.0", &q, &r),
            Ok(true)
        );
        assert_eq!(
            eval_edge_expr("max(vEdge.avgDelay, rEdge.avgDelay) == 100.0", &q, &r),
            Ok(true)
        );
        assert_eq!(eval_edge_expr("10.0 % 3.0 == 1.0", &q, &r), Ok(true));
    }

    #[test]
    fn type_errors_are_reported() {
        let (q, r) = fixtures();
        assert!(eval_edge_expr("vSource.osType > 3", &q, &r).is_err());
        assert!(eval_edge_expr("1 + true == 2", &q, &r).is_err());
        assert!(eval_edge_expr("!5 == true", &q, &r).is_err());
        assert!(eval_edge_expr("vEdge.avgDelay", &q, &r).is_err()); // root not bool
        assert!(eval_edge_expr("\"a\" == 1", &q, &r).is_err());
    }

    #[test]
    fn node_context_eval() {
        let (q, r) = fixtures();
        let e = parse("isBoundTo(vNode.osType, rNode.osType)").unwrap();
        let c = Compiled::new(&e, &q, &r);
        assert!(c.uses_node_objects());
        let ctx = NodeCtx {
            q: &q,
            r: &r,
            v_node: NodeId(0), // linux
            r_node: NodeId(0), // linux
        };
        assert_eq!(c.eval_node(&ctx), Ok(true));
        let ctx2 = NodeCtx {
            q: &q,
            r: &r,
            v_node: NodeId(0),
            r_node: NodeId(1), // freebsd
        };
        assert_eq!(c.eval_node(&ctx2), Ok(false));
    }

    #[test]
    fn context_misuse_is_an_error() {
        let (q, r) = fixtures();
        // Edge object in node context.
        let e = parse("vEdge.avgDelay > 0").unwrap();
        let c = Compiled::new(&e, &q, &r);
        let ctx = NodeCtx {
            q: &q,
            r: &r,
            v_node: NodeId(0),
            r_node: NodeId(0),
        };
        assert!(matches!(
            c.eval_node(&ctx),
            Err(EvalError::ObjectUnavailable(Object::VEdge))
        ));
        // Node object in edge context.
        let e = parse("vNode.x > 0").unwrap();
        let c = Compiled::new(&e, &q, &r);
        assert!(matches!(
            c.eval_edge(&edge_ctx(&q, &r)),
            Err(EvalError::ObjectUnavailable(Object::VNode))
        ));
    }

    #[test]
    fn division_by_zero_is_ieee() {
        let (q, r) = fixtures();
        assert_eq!(eval_edge_expr("1.0 / 0.0 > 100.0", &q, &r), Ok(true));
        // 0/0 = NaN, NaN > x is false.
        assert_eq!(eval_edge_expr("0.0 / 0.0 > 100.0", &q, &r), Ok(false));
    }

    #[test]
    fn sqrt_of_negative_rejects() {
        let (q, r) = fixtures();
        assert_eq!(eval_edge_expr("sqrt(0.0 - 4.0) >= 0.0", &q, &r), Ok(false));
    }

    #[test]
    fn unknown_attr_name_compiles_to_missing() {
        let (q, r) = fixtures();
        let e = parse("vEdge.neverDeclared == 1").unwrap();
        let c = Compiled::new(&e, &q, &r);
        assert_eq!(c.eval_edge(&edge_ctx(&q, &r)), Ok(false));
    }
}

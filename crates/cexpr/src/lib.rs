//! # cexpr — the NETEMBED constraint expression language
//!
//! The paper (§VI-B) specifies a Java-like boolean expression language used
//! to relate query-network elements to hosting-network elements, evaluated
//! for every (virtual edge, real edge) candidate pair. The original
//! implementation generated its lexer and parser with JFlex and CUP; this
//! crate is the from-scratch Rust equivalent:
//!
//! * [`token`] — hand-written lexer;
//! * [`ast`] — expression AST with the Table I objects (`vEdge`, `rEdge`,
//!   `vSource`, `vTarget`, `rSource`, `rTarget`) plus the node-context
//!   extension (`vNode`, `rNode`);
//! * [`parser`] — recursive-descent parser with Java operator precedence;
//! * [`compile`] — schema-resolved compilation and the hot-path evaluator;
//! * [`value`] — runtime values with `Missing` (absent attribute) semantics;
//! * [`bounds`] — abstract interpretation over aggregated attribute
//!   bounds with a tri-state [`Verdict`], the
//!   soundness layer beneath the multilevel substrate hierarchy.
//!
//! ## Example
//!
//! ```
//! use cexpr::{parse, Compiled, EdgeCtx};
//! use netgraph::{Direction, Network};
//!
//! let mut q = Network::new(Direction::Undirected);
//! let (a, b) = (q.add_node("a"), q.add_node("b"));
//! let qe = q.add_edge(a, b);
//! q.set_edge_attr(qe, "avgDelay", 100.0);
//!
//! let mut r = Network::new(Direction::Undirected);
//! let (u, v) = (r.add_node("u"), r.add_node("v"));
//! let re = r.add_edge(u, v);
//! r.set_edge_attr(re, "avgDelay", 95.0);
//!
//! let expr = parse(
//!     "vEdge.avgDelay >= 0.90*rEdge.avgDelay && vEdge.avgDelay <= 1.10*rEdge.avgDelay",
//! ).unwrap();
//! let compiled = Compiled::new(&expr, &q, &r);
//! let ok = compiled.eval_edge(&EdgeCtx {
//!     q: &q, r: &r,
//!     v_edge: qe, v_src: a, v_dst: b,
//!     r_edge: re, r_src: u, r_dst: v,
//! }).unwrap();
//! assert!(ok);
//! ```

pub mod ast;
pub mod bounds;
pub mod compile;
pub mod parser;
pub mod token;
pub mod types;
pub mod value;

pub use ast::{BinOp, Expr, Func, Object, UnOp};
pub use bounds::{AbsEdgeCtx, AbsNodeCtx, AttrBounds, BoundsMap, Verdict};
pub use compile::{Compiled, EdgeCtx, NodeCtx};
pub use parser::{parse, ParseError};
pub use types::{check_constraint, infer, Ty, TypeError};
pub use value::{EvalError, Value};

/// Convenience: the constraint that accepts every candidate pair
/// (`true`). Used by under-constrained experiments such as the clique
/// queries with only a delay window.
pub fn always_true() -> Expr {
    Expr::Bool(true)
}

//! Recursive-descent parser with Java operator precedence (§VI-B: "basically
//! follows the rules of Java for creating boolean expressions"). Replaces
//! the paper's CUP-generated parser.

use crate::ast::{BinOp, Expr, Func, Object, UnOp};
use crate::token::{lex, LexError, Token, TokenKind};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        /// Byte offset.
        offset: usize,
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
    },
    /// Unknown object name in `name.attr` position.
    UnknownObject {
        /// Byte offset.
        offset: usize,
        /// The unrecognized name.
        name: String,
    },
    /// Unknown function name.
    UnknownFunction {
        /// Byte offset.
        offset: usize,
        /// The unrecognized name.
        name: String,
    },
    /// Function called with the wrong number of arguments.
    Arity {
        /// Function involved.
        func: Func,
        /// Arguments supplied.
        got: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                offset,
                found,
                expected,
            } => write!(
                f,
                "parse error at byte {offset}: found {found}, expected {expected}"
            ),
            ParseError::UnknownObject { offset, name } => write!(
                f,
                "parse error at byte {offset}: unknown object `{name}` \
                 (expected vEdge, rEdge, vSource, vTarget, rSource, rTarget, vNode or rNode)"
            ),
            ParseError::UnknownFunction { offset, name } => {
                write!(f, "parse error at byte {offset}: unknown function `{name}`")
            }
            ParseError::Arity { func, got } => write!(
                f,
                "function {} takes {} argument(s), got {got}",
                func.name(),
                func.arity()
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse a complete constraint expression.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let expr = p.parse_or()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::Unexpected {
            offset: t.start,
            found: t.kind.to_string(),
            expected: "end of expression".into(),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                offset: t.start,
                found: t.kind.to_string(),
                expected: expected.into(),
            },
            None => ParseError::Unexpected {
                offset: self.src_len,
                found: "end of input".into(),
                expected: expected.into(),
            },
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::OrOr)) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::AndAnd)) {
            self.pos += 1;
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::EqEq) => BinOp::Eq,
                Some(TokenKind::NotEq) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Not) => {
                self.pos += 1;
                let e = self.parse_unary()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            Some(TokenKind::Minus) => {
                self.pos += 1;
                let e = self.parse_unary()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = match self.advance() {
            Some(t) => t,
            None => return Err(self.unexpected("an expression")),
        };
        match tok.kind {
            TokenKind::Number(x) => Ok(Expr::Num(x)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::LParen => {
                let e = self.parse_or()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                match self.peek().map(|t| &t.kind) {
                    Some(TokenKind::Dot) => {
                        self.pos += 1;
                        let attr = match self.advance() {
                            Some(Token {
                                kind: TokenKind::Ident(a),
                                ..
                            }) => a,
                            // Allow keywords as attribute names (`x.true`
                            // is unlikely but harmless to reject instead).
                            _ => return Err(self.unexpected("an attribute name after `.`")),
                        };
                        let obj = Object::parse(&name).ok_or(ParseError::UnknownObject {
                            offset: tok.start,
                            name: name.clone(),
                        })?;
                        Ok(Expr::Attr(obj, attr))
                    }
                    Some(TokenKind::LParen) => {
                        self.pos += 1;
                        let func = Func::parse(&name).ok_or(ParseError::UnknownFunction {
                            offset: tok.start,
                            name: name.clone(),
                        })?;
                        let mut args = Vec::new();
                        if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
                            loop {
                                args.push(self.parse_or()?);
                                if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Comma)) {
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen, "`)` after arguments")?;
                        if args.len() != func.arity() {
                            return Err(ParseError::Arity {
                                func,
                                got: args.len(),
                            });
                        }
                        Ok(Expr::Call(func, args))
                    }
                    _ => Err(ParseError::Unexpected {
                        offset: tok.start,
                        found: name,
                        expected: "`.attr` or `(args)` after identifier".into(),
                    }),
                }
            }
            other => Err(ParseError::Unexpected {
                offset: tok.start,
                found: other.to_string(),
                expected: "an expression".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_delay_window() {
        let e = parse("vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay")
            .unwrap();
        assert_eq!(
            e.to_string(),
            "vEdge.avgDelay >= 0.9 * rEdge.avgDelay && vEdge.avgDelay <= 1.1 * rEdge.avgDelay"
        );
    }

    #[test]
    fn paper_example_min_max() {
        parse("vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay").unwrap();
    }

    #[test]
    fn paper_example_is_bound_to() {
        let e = parse("isBoundTo(vSource.osType, rSource.osType)").unwrap();
        assert!(matches!(e, Expr::Call(Func::IsBoundTo, _)));
    }

    #[test]
    fn paper_example_geo_distance() {
        parse(
            "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + \
             (vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0",
        )
        .unwrap();
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse("true || false && false").unwrap();
        // Must parse as true || (false && false) — i.e. Or at the root.
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let e = parse("1 + 2 * 3 < 10 - 1").unwrap();
        match e {
            Expr::Binary(BinOp::Lt, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Add, _, _)));
                assert!(matches!(*r, Expr::Binary(BinOp::Sub, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let e = parse("10 - 4 - 3").unwrap();
        // (10 - 4) - 3
        match e {
            Expr::Binary(BinOp::Sub, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Sub, _, _)));
                assert_eq!(*r, Expr::Num(3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_operators() {
        let e = parse("!!true").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Not, _)));
        let e = parse("--2").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Neg, _)));
        let e = parse("-vEdge.d + 1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(matches!(
            parse("bogus.attr"),
            Err(ParseError::UnknownObject { .. })
        ));
        assert!(matches!(
            parse("frobnicate(1)"),
            Err(ParseError::UnknownFunction { .. })
        ));
        assert!(matches!(
            parse("abs(1, 2)"),
            Err(ParseError::Arity {
                func: Func::Abs,
                got: 2
            })
        ));
        assert!(matches!(
            parse("sqrt()"),
            Err(ParseError::Arity {
                func: Func::Sqrt,
                got: 0
            })
        ));
        assert!(parse("1 +").is_err());
        assert!(parse("(1 + 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("vEdge").is_err()); // bare object is not a value
        assert!(parse("").is_err());
    }

    #[test]
    fn print_parse_round_trip() {
        for src in [
            "vEdge.avgDelay >= 0.9 * rEdge.avgDelay",
            "!(vSource.a == rSource.a) || min(1, 2) < 3",
            "abs(vEdge.d - rEdge.d) / rEdge.d <= 0.1",
            "isBoundTo(vSource.bindTo, rSource.name) && true",
            "1 + 2 - 3 * 4 / 5 % 6 >= -7",
        ] {
            let e1 = parse(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse(&printed).unwrap();
            assert_eq!(e1, e2, "round trip failed for `{src}` → `{printed}`");
        }
    }
}

//! Tokens and the hand-written lexer for the constraint expression language.
//!
//! The paper's implementation used JFlex; this is the equivalent
//! from-scratch tokenizer. The language follows Java lexical rules for the
//! subset it supports: identifiers, decimal literals, string literals,
//! boolean/relational/arithmetic operators, parentheses, commas, and the
//! member-access dot.

use std::fmt;

/// A lexical token with its byte span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Start byte offset in the source.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (integer or decimal, optional exponent).
    Number(f64),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// `true`.
    True,
    /// `false`.
    False,
    /// Identifier (object or function name, attribute name after `.`).
    Ident(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` completely.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();

    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr) => {
            out.push(Token {
                kind: $kind,
                start: $start,
                end: $end,
            })
        };
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'(' => {
                push!(TokenKind::LParen, pos, pos + 1);
                pos += 1;
            }
            b')' => {
                push!(TokenKind::RParen, pos, pos + 1);
                pos += 1;
            }
            b',' => {
                push!(TokenKind::Comma, pos, pos + 1);
                pos += 1;
            }
            b'.' => {
                // A dot starting a number like `.5` is not Java-legal for
                // this language; dots are member access only.
                push!(TokenKind::Dot, pos, pos + 1);
                pos += 1;
            }
            b'+' => {
                push!(TokenKind::Plus, pos, pos + 1);
                pos += 1;
            }
            b'-' => {
                push!(TokenKind::Minus, pos, pos + 1);
                pos += 1;
            }
            b'*' => {
                push!(TokenKind::Star, pos, pos + 1);
                pos += 1;
            }
            b'/' => {
                push!(TokenKind::Slash, pos, pos + 1);
                pos += 1;
            }
            b'%' => {
                push!(TokenKind::Percent, pos, pos + 1);
                pos += 1;
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    push!(TokenKind::AndAnd, pos, pos + 2);
                    pos += 2;
                } else {
                    return Err(LexError {
                        offset: pos,
                        message: "expected `&&` (bitwise `&` is not supported)".into(),
                    });
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    push!(TokenKind::OrOr, pos, pos + 2);
                    pos += 2;
                } else {
                    return Err(LexError {
                        offset: pos,
                        message: "expected `||` (bitwise `|` is not supported)".into(),
                    });
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::NotEq, pos, pos + 2);
                    pos += 2;
                } else {
                    push!(TokenKind::Not, pos, pos + 1);
                    pos += 1;
                }
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::EqEq, pos, pos + 2);
                    pos += 2;
                } else {
                    return Err(LexError {
                        offset: pos,
                        message: "expected `==` (assignment is not supported)".into(),
                    });
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Le, pos, pos + 2);
                    pos += 2;
                } else {
                    push!(TokenKind::Lt, pos, pos + 1);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ge, pos, pos + 2);
                    pos += 2;
                } else {
                    push!(TokenKind::Gt, pos, pos + 1);
                    pos += 1;
                }
            }
            b'"' => {
                let start = pos;
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(pos + 1).copied().ok_or(LexError {
                                offset: pos,
                                message: "unterminated escape".into(),
                            })?;
                            s.push(match esc {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'n' => '\n',
                                b't' => '\t',
                                other => {
                                    return Err(LexError {
                                        offset: pos,
                                        message: format!(
                                            "unsupported escape `\\{}`",
                                            other as char
                                        ),
                                    })
                                }
                            });
                            pos += 2;
                        }
                        Some(&c) => {
                            // Multi-byte UTF-8 sequences are copied verbatim.
                            if c < 0x80 {
                                s.push(c as char);
                                pos += 1;
                            } else {
                                let ch_str = &src[pos..];
                                let ch = ch_str.chars().next().unwrap();
                                s.push(ch);
                                pos += ch.len_utf8();
                            }
                        }
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                push!(TokenKind::Str(s), start, pos);
            }
            b'0'..=b'9' => {
                let start = pos;
                while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                    pos += 1;
                }
                // Fractional part: a dot followed by a digit. A dot followed
                // by anything else is member access (e.g. `2.x` is invalid
                // later but lexes as Number Dot Ident).
                if bytes.get(pos) == Some(&b'.') && matches!(bytes.get(pos + 1), Some(b'0'..=b'9'))
                {
                    pos += 1;
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                if matches!(bytes.get(pos), Some(b'e' | b'E')) {
                    let mut p = pos + 1;
                    if matches!(bytes.get(p), Some(b'+' | b'-')) {
                        p += 1;
                    }
                    if matches!(bytes.get(p), Some(b'0'..=b'9')) {
                        pos = p;
                        while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                            pos += 1;
                        }
                    }
                }
                let text = &src[start..pos];
                let value: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad number `{text}`"),
                })?;
                push!(TokenKind::Number(value), start, pos);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while matches!(bytes.get(pos), Some(c) if c.is_ascii_alphanumeric() || *c == b'_') {
                    pos += 1;
                }
                let text = &src[start..pos];
                let kind = match text {
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    _ => TokenKind::Ident(text.to_string()),
                };
                push!(kind, start, pos);
            }
            other => {
                return Err(LexError {
                    offset: pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("&& || ! == != < <= > >= + - * / %"),
            vec![
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Not,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 3.5 0.90 1e3 2.5E-2"),
            vec![
                TokenKind::Number(0.0),
                TokenKind::Number(42.0),
                TokenKind::Number(3.5),
                TokenKind::Number(0.90),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
            ]
        );
    }

    #[test]
    fn member_access_vs_decimal() {
        // `vEdge.avgDelay` must lex as Ident Dot Ident, not a number.
        assert_eq!(
            kinds("vEdge.avgDelay"),
            vec![
                TokenKind::Ident("vEdge".into()),
                TokenKind::Dot,
                TokenKind::Ident("avgDelay".into()),
            ]
        );
        // `2.e` is Number(2) Dot Ident(e).
        assert_eq!(
            kinds("2.e"),
            vec![
                TokenKind::Number(2.0),
                TokenKind::Dot,
                TokenKind::Ident("e".into())
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""linux-2.6" "a\"b" "tab\tend""#),
            vec![
                TokenKind::Str("linux-2.6".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("tab\tend".into()),
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("true false isBoundTo _x a1"),
            vec![
                TokenKind::True,
                TokenKind::False,
                TokenKind::Ident("isBoundTo".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("a1".into()),
            ]
        );
    }

    #[test]
    fn paper_fragment_lexes() {
        let src = "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay";
        // vEdge . avgDelay >= 0.90 * rEdge . avgDelay && (9 tokens) repeated
        // with <= and 1.10 on the other side (9 more), plus the `&&`.
        assert_eq!(lex(src).unwrap().len(), 19);
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab <= 1.5").unwrap();
        assert_eq!((toks[0].start, toks[0].end), (0, 2));
        assert_eq!((toks[1].start, toks[1].end), (3, 5));
        assert_eq!((toks[2].start, toks[2].end), (6, 9));
    }

    #[test]
    fn errors() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a # b").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }
}

//! Static type checking for constraint expressions.
//!
//! Attribute types are not declared in the expression language (they come
//! from GraphML `<key>` declarations at runtime), so full static typing is
//! impossible — but a large class of mistakes *is* decidable from the
//! expression alone: comparing a string literal with a number, negating a
//! string, using an arithmetic result as a boolean, or a non-boolean
//! constraint root. The service runs this lint when a query is submitted
//! so malformed constraints fail fast with a good message instead of
//! surfacing as a mid-search evaluation error.
//!
//! The lattice is `Num | Bool | Str | Unknown` — attribute references are
//! `Unknown` and unify with anything.

use crate::ast::{BinOp, Expr, Func, UnOp};
use std::fmt;

/// Static type of a (sub)expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Definitely numeric.
    Num,
    /// Definitely boolean.
    Bool,
    /// Definitely a string.
    Str,
    /// Attribute reference — type known only at evaluation time.
    Unknown,
}

impl Ty {
    fn compatible(self, other: Ty) -> bool {
        self == Ty::Unknown || other == Ty::Unknown || self == other
    }

    fn name(self) -> &'static str {
        match self {
            Ty::Num => "num",
            Ty::Bool => "bool",
            Ty::Str => "string",
            Ty::Unknown => "attribute",
        }
    }
}

/// A definite static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description, including the offending subexpression.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Type-check `expr` as a constraint (root must be able to be boolean).
/// Returns the inferred root type on success.
pub fn check_constraint(expr: &Expr) -> Result<Ty, TypeError> {
    let ty = infer(expr)?;
    if !ty.compatible(Ty::Bool) {
        return Err(TypeError {
            message: format!(
                "constraint root `{expr}` has type {}, expected bool",
                ty.name()
            ),
        });
    }
    Ok(ty)
}

/// Infer the type of `expr`, rejecting definite mismatches.
pub fn infer(expr: &Expr) -> Result<Ty, TypeError> {
    match expr {
        Expr::Num(_) => Ok(Ty::Num),
        Expr::Str(_) => Ok(Ty::Str),
        Expr::Bool(_) => Ok(Ty::Bool),
        Expr::Attr(..) => Ok(Ty::Unknown),
        Expr::Unary(op, e) => {
            let t = infer(e)?;
            let want = match op {
                UnOp::Not => Ty::Bool,
                UnOp::Neg => Ty::Num,
            };
            if !t.compatible(want) {
                return Err(TypeError {
                    message: format!(
                        "operator `{}` applied to {} in `{expr}`",
                        if *op == UnOp::Not { "!" } else { "-" },
                        t.name()
                    ),
                });
            }
            Ok(want)
        }
        Expr::Binary(op, l, r) => {
            let lt = infer(l)?;
            let rt = infer(r)?;
            match op {
                BinOp::And | BinOp::Or => {
                    for (t, side) in [(lt, "left"), (rt, "right")] {
                        if !t.compatible(Ty::Bool) {
                            return Err(TypeError {
                                message: format!(
                                    "{side} operand of `{}` has type {} in `{expr}`",
                                    op.symbol(),
                                    t.name()
                                ),
                            });
                        }
                    }
                    Ok(Ty::Bool)
                }
                BinOp::Eq | BinOp::Ne => {
                    if !lt.compatible(rt) {
                        return Err(TypeError {
                            message: format!(
                                "`{}` compares {} with {} in `{expr}`",
                                op.symbol(),
                                lt.name(),
                                rt.name()
                            ),
                        });
                    }
                    Ok(Ty::Bool)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    for (t, side) in [(lt, "left"), (rt, "right")] {
                        if !t.compatible(Ty::Num) {
                            return Err(TypeError {
                                message: format!(
                                    "{side} operand of `{}` has type {} in `{expr}`",
                                    op.symbol(),
                                    t.name()
                                ),
                            });
                        }
                    }
                    Ok(Ty::Bool)
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    for (t, side) in [(lt, "left"), (rt, "right")] {
                        if !t.compatible(Ty::Num) {
                            return Err(TypeError {
                                message: format!(
                                    "{side} operand of `{}` has type {} in `{expr}`",
                                    op.symbol(),
                                    t.name()
                                ),
                            });
                        }
                    }
                    Ok(Ty::Num)
                }
            }
        }
        Expr::Call(f, args) => {
            match f {
                Func::Abs | Func::Sqrt => {
                    let t = infer(&args[0])?;
                    if !t.compatible(Ty::Num) {
                        return Err(TypeError {
                            message: format!("`{}` applied to {} in `{expr}`", f.name(), t.name()),
                        });
                    }
                    Ok(Ty::Num)
                }
                Func::Min | Func::Max => {
                    for a in args {
                        let t = infer(a)?;
                        if !t.compatible(Ty::Num) {
                            return Err(TypeError {
                                message: format!(
                                    "`{}` applied to {} in `{expr}`",
                                    f.name(),
                                    t.name()
                                ),
                            });
                        }
                    }
                    Ok(Ty::Num)
                }
                Func::IsBoundTo => {
                    let lt = infer(&args[0])?;
                    let rt = infer(&args[1])?;
                    if !lt.compatible(rt) {
                        return Err(TypeError {
                            message: format!(
                                "`isBoundTo` compares {} with {} in `{expr}`",
                                lt.name(),
                                rt.name()
                            ),
                        });
                    }
                    Ok(Ty::Bool)
                }
                Func::Has => {
                    // `has` accepts anything (it tests presence).
                    infer(&args[0])?;
                    Ok(Ty::Bool)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) -> Ty {
        check_constraint(&parse(src).unwrap()).unwrap()
    }

    fn err(src: &str) -> String {
        check_constraint(&parse(src).unwrap()).unwrap_err().message
    }

    #[test]
    fn paper_examples_all_check() {
        ok("vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay");
        ok("vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay");
        ok("isBoundTo(vSource.osType, rSource.osType)");
        ok("sqrt((vSource.x-vTarget.x)*(vSource.x-vTarget.x)) < 100.0");
    }

    #[test]
    fn attrs_are_unknown_and_unify() {
        // Attribute vs string, attribute vs number: both fine statically.
        ok("vSource.osType == \"linux\"");
        ok("vSource.cpu > 4");
        assert_eq!(ok("true"), Ty::Bool);
    }

    #[test]
    fn definite_mismatches_rejected() {
        assert!(err("\"a\" == 1").contains("compares string with num"));
        assert!(err("1 + true > 0").contains("`+`"));
        assert!(err("!5 == true").contains("`!`"));
        assert!(err("true < false").contains("`<`"));
        assert!(err("sqrt(\"x\") > 0").contains("sqrt"));
        assert!(err("min(1, true) > 0").contains("min"));
        assert!(err("isBoundTo(\"a\", 1)").contains("isBoundTo"));
        assert!(err("true && 3 > 2 && 7").contains("operand of `&&`"));
    }

    #[test]
    fn non_boolean_root_rejected() {
        assert!(err("1 + 2").contains("expected bool"));
        assert!(err("\"just a string\"").contains("expected bool"));
        // Attribute root is Unknown — allowed (could be a boolean attr).
        ok("vSource.enabled");
    }

    #[test]
    fn negation_of_comparison_ok() {
        assert_eq!(ok("!(vEdge.d > 3)"), Ty::Bool);
        assert_eq!(ok("-vEdge.d < 0"), Ty::Bool);
    }
}

//! Runtime values and evaluation errors for constraint expressions.

use crate::ast::Object;
use std::fmt;
use std::sync::Arc;

/// Runtime value of a (sub)expression.
///
/// `Missing` represents an attribute reference whose attribute is not
/// present on the element under consideration. It propagates through strict
/// operators with Kleene three-valued semantics for `&&`/`||`/`!`
/// (`false && missing == false`, `true || missing == true`), and a
/// top-level `Missing` result means *no match*. The `isBoundTo` and `has`
/// built-ins observe missingness directly — that is what gives
/// `isBoundTo(vSource.osType, rSource.osType)` the paper's semantics of
/// constraining only those query nodes that carry the attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric value.
    Num(f64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(Arc<str>),
    /// Absent attribute.
    Missing,
}

impl Value {
    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "num",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Missing => "missing",
        }
    }

    /// True if this is [`Value::Missing`].
    #[inline]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Missing => write!(f, "<missing>"),
        }
    }
}

/// Evaluation error. The embedding engine surfaces type errors to the user
/// (they indicate a malformed query) while `Missing` results merely reject
/// the candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Operator applied to operands of the wrong type.
    TypeMismatch {
        /// Operation or function name.
        op: &'static str,
        /// Left/first operand type.
        left: &'static str,
        /// Right/second operand type (`""` for unary).
        right: &'static str,
    },
    /// An attribute reference used an object that is not available in the
    /// current context (e.g. `vEdge` inside a node constraint).
    ObjectUnavailable(Object),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch { op, left, right } => {
                if right.is_empty() {
                    write!(f, "type error: `{op}` applied to {left}")
                } else {
                    write!(f, "type error: `{op}` applied to {left} and {right}")
                }
            }
            EvalError::ObjectUnavailable(o) => {
                write!(f, "object `{}` is not available in this context", o.name())
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_types() {
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::Missing.to_string(), "<missing>");
        assert!(Value::Missing.is_missing());
        assert_eq!(Value::Num(0.0).type_name(), "num");
    }
}

//! Property tests: pretty-print ∘ parse is the identity on ASTs, and the
//! evaluator is total (never panics) on well-typed random expressions.

use cexpr::ast::{BinOp, Expr, Func, Object, UnOp};
use cexpr::{parse, Compiled, EdgeCtx};
use netgraph::{Direction, Network};
use proptest::prelude::*;

/// Random *numeric* expressions (type-correct by construction).
fn arb_num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.0f64..1e6).prop_map(Expr::Num),
        prop_oneof![
            Just(Object::VEdge),
            Just(Object::REdge),
            Just(Object::VSource),
            Just(Object::RTarget)
        ]
        .prop_flat_map(|o| {
            prop_oneof![Just("d"), Just("w"), Just("zz")]
                .prop_map(move |a| Expr::Attr(o, a.to_string()))
        }),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Call(Func::Abs, vec![e])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Func::Min, vec![a, b])),
        ]
    })
}

/// Random *boolean* expressions over numeric leaves.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let cmp = (
        arb_num_expr(),
        prop_oneof![
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne)
        ],
        arb_num_expr(),
    )
        .prop_map(|(a, op, b)| Expr::Binary(op, Box::new(a), Box::new(b)));
    let leaf = prop_oneof![any::<bool>().prop_map(Expr::Bool), cmp];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::And,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Or,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
        ]
    })
}

fn fixture() -> (Network, Network) {
    let mut q = Network::new(Direction::Undirected);
    let (a, b) = (q.add_node("a"), q.add_node("b"));
    let e = q.add_edge(a, b);
    q.set_edge_attr(e, "d", 10.0);
    q.set_node_attr(a, "d", 1.0);
    q.set_node_attr(a, "w", 2.0);
    let mut r = Network::new(Direction::Undirected);
    let (u, v) = (r.add_node("u"), r.add_node("v"));
    let f = r.add_edge(u, v);
    r.set_edge_attr(f, "d", 11.0);
    r.set_node_attr(v, "d", 3.0);
    (q, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_identity(e in arb_bool_expr()) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    #[test]
    fn eval_is_total_and_deterministic(e in arb_bool_expr()) {
        let (q, r) = fixture();
        let c = Compiled::new(&e, &q, &r);
        let ctx = EdgeCtx {
            q: &q, r: &r,
            v_edge: netgraph::EdgeId(0),
            v_src: netgraph::NodeId(0),
            v_dst: netgraph::NodeId(1),
            r_edge: netgraph::EdgeId(0),
            r_src: netgraph::NodeId(0),
            r_dst: netgraph::NodeId(1),
        };
        // Well-typed by construction: must never be a type error.
        let v1 = c.eval_edge(&ctx).expect("type-correct expression");
        let v2 = c.eval_edge(&ctx).expect("type-correct expression");
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn numeric_print_parse_identity(e in arb_num_expr()) {
        // Wrap in a comparison so the root is boolean and parseable as a
        // constraint.
        let wrapped = Expr::Binary(BinOp::Le, Box::new(e), Box::new(Expr::Num(0.0)));
        let printed = wrapped.to_string();
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(wrapped, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The static lint accepts every expression that is type-correct by
    /// construction — no false positives on the well-typed fragment.
    #[test]
    fn lint_accepts_well_typed(e in arb_bool_expr()) {
        cexpr::check_constraint(&e)
            .unwrap_or_else(|err| panic!("lint rejected well-typed `{e}`: {err}"));
    }

    /// Lint soundness against the evaluator: if the lint passes and the
    /// evaluator raises an error, that error involves attribute typing
    /// (which is undecidable statically) — never a literal-only mismatch.
    #[test]
    fn lint_sound_for_literal_expressions(e in arb_bool_expr()) {
        let (q, r) = fixture();
        if cexpr::check_constraint(&e).is_ok() {
            let c = Compiled::new(&e, &q, &r);
            let ctx = EdgeCtx {
                q: &q, r: &r,
                v_edge: netgraph::EdgeId(0),
                v_src: netgraph::NodeId(0),
                v_dst: netgraph::NodeId(1),
                r_edge: netgraph::EdgeId(0),
                r_src: netgraph::NodeId(0),
                r_dst: netgraph::NodeId(1),
            };
            // arb_bool_expr only produces type-correct expressions whose
            // attributes are numeric in the fixture, so evaluation must
            // succeed outright.
            prop_assert!(c.eval_edge(&ctx).is_ok());
        }
    }
}

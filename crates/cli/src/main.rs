//! `netembed` — the command-line face of the embedding service.
//!
//! ```text
//! netembed embed   --host h.graphml --query q.graphml --constraint EXPR [opts]
//! netembed gen     planetlab|brite|clique|ring|star --out h.graphml [opts]
//! netembed inspect net.graphml
//! ```
//!
//! `embed` reads both networks from GraphML (§VI-A), runs the selected
//! algorithm (§V) through the mapping service's prepared-query path and
//! prints each feasible mapping as `query=host` pairs. `--repeat N` runs
//! the same prepared request N times — the service session keeps the
//! compiled problem, the epoch-keyed filter cache and the persistent
//! worker pool warm, so runs after the first skip the filter build and
//! thread spawns (the per-run stats lines show it).
//! `--planner --clients N` instead drives the request through the
//! cross-request planner from N concurrent client threads: equivalent
//! in-flight requests coalesce into one group (one filter build, one
//! warm scratch for the burst), and the stats lines show the coalescing
//! counters plus the service's pool telemetry. `--oversub K` shrinks
//! the planner's admit queue to `clients / K` so the burst arrives K×
//! oversubscribed — the overflow is shed per `--shed` (`reject` →
//! deterministic `Overloaded` refusals, `degrade` → fast timed-out
//! inconclusive responses), `--priority` sets the burst's admission
//! priority, and the summary lines add the shed counters and the
//! queue-wait/dispatch-latency histograms. `--shards N` pins the
//! planner's dispatch-shard count (default: one per detected core, up
//! to 8) and the summary prints each shard's queue-depth gauge and
//! shed breakdown.
//! `--feed` runs the registry-feed demo instead: a scripted flaky
//! delta stream (a dropped delta, a duplicate, a reordered pair)
//! drives the host model through the feed driver while the query is
//! served between pumps — the state transitions (live → catching-up →
//! resyncing → live), the per-answer staleness verdicts (fresh,
//! stale-marked within the lag budget, `StaleModel` shed past it) and
//! the final delivery ledger are printed as the faults play out.
//! Exit codes: 0 mappings found, 1 definitively infeasible, 2 usage or
//! input error, 3 inconclusive (timeout with nothing found).

use netembed::{Algorithm, Options, Outcome, SearchMode};
use netgraph::Network;
use service::{
    AdmissionPolicy, NetEmbedService, Priority, QueryRequest, QueryResponse, ServiceConfig,
    ServiceError, ShedMode,
};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
netembed — NETEMBED network embedding service CLI

USAGE:
  netembed embed --host FILE --query FILE --constraint EXPR
                 [--algorithm ecf|rwb|lns|par] [--threads N]
                 [--mode all|first|N] [--timeout-ms N] [--seed N]
                 [--repeat N] [--planner] [--clients N] [--quiet]
                 [--oversub K] [--priority low|normal|high]
                 [--shed reject|degrade] [--shards N] [--feed]
                 [--hierarchy] [--levels N]
  netembed gen   planetlab|brite|waxman|clique|ring|star|fattree|powerlaw
                 [--nodes N] [--seed N] --out FILE
  netembed inspect FILE

EXIT CODES (embed): 0 found, 1 infeasible, 2 error, 3 inconclusive
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("embed") => cmd_embed(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_network(path: &str) -> Result<Network, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    graphml::from_str(&doc).map_err(|e| format!("{path}: {e}"))
}

fn cmd_embed(args: &[String]) -> ExitCode {
    let (Some(host_path), Some(query_path), Some(constraint)) = (
        flag_value(args, "--host"),
        flag_value(args, "--query"),
        flag_value(args, "--constraint"),
    ) else {
        eprintln!("embed requires --host, --query and --constraint\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let host = match load_network(&host_path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let query = match load_network(&query_path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let algorithm = match flag_value(args, "--algorithm").as_deref() {
        None | Some("ecf") => Algorithm::Ecf,
        Some("rwb") => Algorithm::Rwb,
        Some("lns") => Algorithm::Lns,
        Some("par") => Algorithm::ParallelEcf { threads },
        Some(other) => {
            eprintln!("unknown algorithm `{other}` (ecf|rwb|lns|par)");
            return ExitCode::from(2);
        }
    };
    let mode = match flag_value(args, "--mode").as_deref() {
        None | Some("all") => SearchMode::All,
        Some("first") => SearchMode::First,
        Some(n) => match n.parse::<usize>() {
            Ok(k) if k >= 1 => SearchMode::UpTo(k),
            _ => {
                eprintln!("bad --mode `{n}` (all|first|N)");
                return ExitCode::from(2);
            }
        },
    };
    let timeout = flag_value(args, "--timeout-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let seed = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let repeat: usize = flag_value(args, "--repeat")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let quiet = has_flag(args, "--quiet");
    let clients: usize = flag_value(args, "--clients")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4);
    // `--oversub K` bounds the planner's admit queue at `clients / K`:
    // a burst arrives K× oversubscribed and the overflow is shed per
    // `--shed` (reject → Overloaded errors, degrade → timed-out
    // Inconclusive responses).
    let oversub: Option<usize> = flag_value(args, "--oversub")
        .and_then(|v| v.parse().ok())
        .filter(|&k| k >= 1);
    let priority = match flag_value(args, "--priority").as_deref() {
        None | Some("normal") => Priority::Normal,
        Some("low") => Priority::Low,
        Some("high") => Priority::High,
        Some(other) => {
            eprintln!("error: unknown --priority `{other}` (low|normal|high)");
            return ExitCode::from(2);
        }
    };
    let shed = match flag_value(args, "--shed").as_deref() {
        None | Some("reject") => ShedMode::Reject,
        Some("degrade") => ShedMode::DegradeInconclusive,
        Some(other) => {
            eprintln!("error: unknown --shed `{other}` (reject|degrade)");
            return ExitCode::from(2);
        }
    };
    // `--shards N` pins the planner's dispatch-shard count; without it
    // the service sizes the shard array from the detected parallelism
    // (or `NETEMBED_PLANNER_SHARDS`).
    let shards: Option<usize> = match flag_value(args, "--shards") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("error: bad --shards `{v}` (need an integer >= 1)");
                return ExitCode::from(2);
            }
        },
    };

    // One service session for the whole invocation: the prepared query
    // compiles the constraint once and keeps filter + pool warm across
    // --repeat runs.
    let mut admission = AdmissionPolicy::default().shed(shed);
    if let Some(k) = oversub {
        admission = admission.max_queue_depth((clients / k).max(1));
    }
    let mut config = ServiceConfig::default().admission(admission);
    if let Some(n) = shards {
        config = config.planner_shards(n);
    }
    // `--hierarchy` routes the filter-based algorithms through the
    // multilevel substrate hierarchy: coarsen the host, prune whole
    // super-node subtrees with sound abstract verdicts, and expand the
    // exact filter only inside the survivors. `--levels N` caps the
    // coarsening depth (default 16).
    let hierarchy = if has_flag(args, "--hierarchy") {
        let mut spec = netembed::HierarchySpec::default();
        if let Some(v) = flag_value(args, "--levels") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => spec.max_levels = n,
                _ => {
                    eprintln!("error: bad --levels `{v}` (need an integer >= 1)");
                    return ExitCode::from(2);
                }
            }
        }
        Some(spec)
    } else {
        None
    };

    let svc = NetEmbedService::with_config(config);
    svc.registry().register("host", host.clone());
    let options = Options {
        algorithm,
        mode,
        timeout,
        seed,
        hierarchy,
        ..Options::default()
    };

    if let Some(spec) = hierarchy {
        // Warm the per-(host, epoch) hierarchy cache up front and show
        // the coarsening ladder; the run below hits the cached levels.
        match svc.warm_hierarchy("host", spec) {
            Ok(hier) => {
                if !quiet {
                    let sizes = hier.level_sizes();
                    eprintln!(
                        "# hierarchy: {} levels over {} host nodes (fine -> coarse: {})",
                        sizes.len(),
                        host.node_count(),
                        sizes
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> "),
                    );
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if has_flag(args, "--feed") {
        return feed_demo(&host, &query, &constraint, &options, quiet);
    }
    if has_flag(args, "--planner") {
        return planner_demo(
            &svc,
            &host,
            &query,
            &constraint,
            &options,
            clients,
            priority,
            repeat,
            quiet,
        );
    }

    let mut prepared = match svc.prepare("host", query.clone(), &constraint) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut result = None;
    for run in 0..repeat {
        match prepared.run(&options) {
            Ok(resp) => {
                if !quiet && repeat > 1 {
                    eprintln!(
                        "# run {}/{repeat}: elapsed: {:?}, filter cache hit: {}, warm pool threads: {}",
                        run + 1,
                        resp.stats.elapsed,
                        resp.stats.filter_cache_hits > 0,
                        resp.stats.pool_reuse,
                    );
                }
                result = Some(resp);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let result = result.expect("repeat >= 1");
    if hierarchy.is_some() && !quiet {
        let s = &result.stats;
        let pct = if s.hier_full_cells > 0 {
            100.0 * s.hier_expanded_cells as f64 / s.hier_full_cells as f64
        } else {
            100.0
        };
        eprintln!(
            "# hierarchy: pruned {} super-node subtrees, expanded {}/{} filter cells ({pct:.2}%)",
            s.hier_pruned, s.hier_expanded_cells, s.hier_full_cells,
        );
    }
    report_embed(&result, &query, &host, quiet)
}

/// Drive the host model through the registry-feed driver from a
/// scripted flaky delta stream, serving the query between pumps: a
/// live demonstration of the feed's fault handling (duplicate dropped
/// idempotently, reordered pair parked and drained, a lost delta
/// recovered via snapshot resync) and the staleness policy (fresh /
/// stale-marked / shed verdicts as the lag crosses the budget), ending
/// with the delivery ledger and the converged embedding.
fn feed_demo(
    host: &Network,
    query: &Network,
    constraint: &str,
    options: &Options,
    quiet: bool,
) -> ExitCode {
    use service::{
        DeltaMutation, DirtySet, FeedConfig, FeedSnapshot, FeedState, RegistryDelta, RegistryFeed,
        ShedReason, StalenessPolicy,
    };
    const DELTAS: u64 = 12;
    const MAX_LAG: u64 = 2;

    // Serve stale answers while the feed is at most 2 deltas behind;
    // shed deterministically past that.
    let svc = NetEmbedService::with_config(
        ServiceConfig::default().staleness(StalenessPolicy::ServeStale { max_lag: MAX_LAG }),
    );
    svc.registry().register("host", host.clone());
    let request = QueryRequest {
        host: "host".into(),
        query: query.clone(),
        constraint: constraint.to_string(),
        options: options.clone(),
    };

    // The upstream: 12 load ticks on the first host node, and the
    // truth after each prefix (what a snapshot at that seq contains).
    let deltas: Vec<RegistryDelta> = (0..DELTAS)
        .map(|i| RegistryDelta {
            host: "host".into(),
            base_seq: i,
            next_seq: i + 1,
            mutation: DeltaMutation::SetNodeAttr {
                node: 0,
                attr: "demoLoad".into(),
                value: netgraph::AttrValue::Num(i as f64),
            },
            dirty: DirtySet::from_ids([0]),
        })
        .collect();
    let mut states = vec![host.clone()];
    for i in 0..DELTAS {
        let mut next = states.last().expect("seeded").clone();
        next.set_node_attr(netgraph::NodeId(0), "demoLoad", i as f64);
        states.push(next);
    }

    // The flaky wire: delta 2 arrives twice, 6 and 7 swap, 4 is lost.
    let mut script: Vec<RegistryDelta> = Vec::new();
    let mut i = 0usize;
    while i < deltas.len() {
        match i {
            2 => {
                script.push(deltas[2].clone());
                script.push(deltas[2].clone());
            }
            4 => {}
            6 => {
                script.push(deltas[7].clone());
                script.push(deltas[6].clone());
                i += 1;
            }
            _ => script.push(deltas[i].clone()),
        }
        i += 1;
    }

    // Snapshot source: serves the upstream truth at the highest
    // sequence the wire has carried so far.
    let hwm = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let snapshot_hwm = std::rc::Rc::clone(&hwm);
    let snapshots = move |states: &[Network]| FeedSnapshot {
        seq: snapshot_hwm.get(),
        models: vec![("host".into(), states[snapshot_hwm.get() as usize].clone())],
    };
    let snapshot_states = states.clone();
    let mut feed = RegistryFeed::new(
        std::collections::VecDeque::new(),
        move || Some(snapshots(&snapshot_states)),
        FeedConfig {
            gap_patience: 1,
            ..FeedConfig::default()
        },
    );

    let mut state = FeedState::Live;
    if !quiet {
        eprintln!("# feed: live at cursor 0, staleness policy: serve-stale (max lag {MAX_LAG})");
    }
    let mut script = script.into_iter().peekable();
    for _pump in 0..50 {
        for _ in 0..2 {
            if let Some(delta) = script.next() {
                hwm.set(hwm.get().max(delta.next_seq));
                feed.stream().push_back(delta);
            }
        }
        let next = feed.pump(&svc);
        if next != state && !quiet {
            eprintln!(
                "# feed: {state} → {next} (cursor {}, lag {})",
                feed.cursor(),
                svc.feed_status().lag(),
            );
        }
        state = next;
        if !quiet {
            match svc.submit(&request) {
                Ok(resp) => match resp.staleness {
                    None => eprintln!("# serve: fresh"),
                    Some(marker) => eprintln!("# serve: stale (lag {})", marker.lag),
                },
                Err(ServiceError::Overloaded(ShedReason::StaleModel)) => {
                    eprintln!("# serve: shed (model feed degraded past max lag)");
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if script.peek().is_none() && state == FeedState::Live && feed.cursor() == DELTAS {
            break;
        }
    }
    if state != FeedState::Live || feed.cursor() != DELTAS {
        eprintln!("error: feed demo failed to converge (state {state})");
        return ExitCode::from(2);
    }

    if !quiet {
        let t = svc.telemetry().feed;
        eprintln!(
            "# feed ledger: received {} = applied {} + duplicates {} + discarded {} + rejected {} + parked {} (balanced: {})",
            t.received,
            t.applied,
            t.duplicates,
            t.discarded,
            t.rejected,
            t.parked,
            t.balanced(),
        );
        eprintln!(
            "# feed: reordered: {}, gap resyncs: {}, resync attempts: {}, last applied seq: {}, lag: {}",
            t.reordered, t.gap_resyncs, t.resync_attempts, t.last_applied_seq, t.lag,
        );
    }
    match svc.submit(&request) {
        Ok(resp) => report_embed(&resp, query, host, quiet),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Drive the request through the cross-request planner from `clients`
/// concurrent threads, `repeat` bursts in a row: a live demonstration
/// of group coalescing (one filter build per burst key, one warm
/// scratch) with the counters and pool telemetry printed per burst.
#[allow(clippy::too_many_arguments)]
fn planner_demo(
    svc: &NetEmbedService,
    host: &Network,
    query: &Network,
    constraint: &str,
    options: &Options,
    clients: usize,
    priority: Priority,
    repeat: usize,
    quiet: bool,
) -> ExitCode {
    let planner = svc.planner();
    let request = QueryRequest {
        host: "host".into(),
        query: query.clone(),
        constraint: constraint.to_string(),
        options: options.clone(),
    };
    let mut last: Option<QueryResponse> = None;
    for round in 0..repeat {
        let responses: Vec<Result<QueryResponse, ServiceError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| s.spawn(|| planner.run_with(&request, priority)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        let mut round_hits = 0u64;
        let mut round_coalesced = 0u64;
        let mut round_builds = 0u64;
        let mut round_shed = 0u64;
        // LNS runs no filter stage at all (its constraint evaluations
        // happen in-search), so its evals never indicate a build.
        let builds_filters = !matches!(options.algorithm, Algorithm::Lns);
        for resp in responses {
            match resp {
                Ok(resp) => {
                    round_hits += resp.stats.filter_cache_hits;
                    round_coalesced += resp.stats.coalesced_requests;
                    round_builds += u64::from(builds_filters && resp.stats.constraint_evals > 0);
                    last = Some(resp);
                }
                // An admission refusal is the demo working as
                // configured (--oversub), not a CLI failure.
                Err(ServiceError::Overloaded(_)) => round_shed += 1,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if !quiet {
            eprintln!(
                "# burst {}/{repeat}: {clients} clients → builds: {round_builds}, cache hits: {round_hits}, coalesced: {round_coalesced}, shed: {round_shed}",
                round + 1,
            );
        }
    }
    if !quiet {
        let telemetry = svc.telemetry();
        eprintln!(
            "# planner: shards: {}, peak concurrent dispatchers: {}, groups dispatched: {}, coalesced total: {}, cache hits: {} misses: {} dedup waits: {} patches: {} patch rebuilds: {} promotions: {}",
            planner.shard_count(),
            planner.peak_concurrent_dispatchers(),
            planner.groups_dispatched(),
            planner.coalesced_total(),
            svc.cache().hits(),
            svc.cache().misses(),
            svc.cache().dedup_waits(),
            svc.cache().patches(),
            svc.cache().patch_rebuilds(),
            svc.cache().promotions(),
        );
        eprintln!(
            "# pool telemetry: parked scratches: {}, threads: {}, spawned total: {}",
            telemetry.parked_scratches, telemetry.pool_threads, telemetry.spawned_total,
        );
        eprintln!(
            "# admission: submitted: {}, accepted: {}, shed: {} (queue: {}, group: {}, deadline: {}, dedup: {}, stale: {})",
            telemetry.submitted,
            telemetry.accepted,
            telemetry.shed.total(),
            telemetry.shed.queue_full,
            telemetry.shed.group_full,
            telemetry.shed.deadline_hopeless,
            telemetry.shed.dedup_waiters_full,
            telemetry.shed.stale_model,
        );
        eprintln!(
            "# queue wait: {} | dispatch: {}",
            telemetry.queue_wait.summary(),
            telemetry.dispatch_latency.summary(),
        );
        for (idx, shard) in telemetry.shards.iter().enumerate() {
            eprintln!(
                "# shard {idx}: queue depth: {}, submitted: {}, accepted: {}, shed: {} (queue: {}, group: {}, deadline: {}, dedup: {}, stale: {})",
                shard.queue_depth,
                shard.submitted,
                shard.accepted,
                shard.shed.total(),
                shard.shed.queue_full,
                shard.shed.group_full,
                shard.shed.deadline_hopeless,
                shard.shed.dedup_waiters_full,
                shard.shed.stale_model,
            );
        }
    }
    let result = last.expect("clients >= 1 and repeat >= 1");
    report_embed(&result, query, host, quiet)
}

/// Shared tail of the embed paths: summary line, mapping rows, exit
/// code.
fn report_embed(result: &QueryResponse, query: &Network, host: &Network, quiet: bool) -> ExitCode {
    if !quiet {
        eprintln!(
            "# {} mapping(s), outcome: {}, elapsed: {:?}, visited: {}, evals: {}",
            result.mappings().len(),
            result.outcome.label(),
            result.stats.elapsed,
            result.stats.nodes_visited,
            result.stats.constraint_evals,
        );
    }
    for m in result.mappings() {
        let row: Vec<String> = m
            .iter()
            .map(|(q, r)| format!("{}={}", query.node_name(q), host.node_name(r)))
            .collect();
        println!("{}", row.join(" "));
    }
    match &result.outcome {
        _ if !result.mappings().is_empty() => ExitCode::SUCCESS,
        Outcome::Complete(_) => ExitCode::from(1),
        _ => ExitCode::from(3),
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(kind) = args.first() else {
        eprintln!("gen requires a generator name\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("gen requires --out FILE");
        return ExitCode::from(2);
    };
    let nodes: usize = flag_value(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut rng = topogen::rng(seed);

    let net = match kind.as_str() {
        "planetlab" => topogen::planetlab_like(
            &topogen::PlanetlabParams {
                sites: nodes,
                ..topogen::PlanetlabParams::default()
            },
            &mut rng,
        ),
        "brite" => topogen::brite_like(&topogen::BriteParams::paper_default(nodes), &mut rng),
        "waxman" => topogen::brite_like(
            &topogen::BriteParams {
                mode: topogen::BriteMode::Waxman,
                ..topogen::BriteParams::paper_default(nodes)
            },
            &mut rng,
        ),
        "clique" => topogen::regular::clique(nodes),
        "ring" => topogen::regular::ring(nodes),
        "star" => topogen::regular::star(nodes),
        // Datacenter-scale substrates for the hierarchy: `--nodes` is a
        // budget, met by scaling hosts-per-edge-switch (fattree) or
        // taken exactly (powerlaw).
        "fattree" => {
            let k = 4usize;
            let switches = topogen::FatTreeParams::classic(k).node_count() - k * (k / 2) * (k / 2); // switches only
            let hosts_per_edge = nodes.saturating_sub(switches).div_ceil(k * (k / 2)).max(1);
            topogen::fat_tree(&topogen::FatTreeParams { k, hosts_per_edge }, &mut rng)
        }
        "powerlaw" => topogen::power_law(&topogen::PowerLawParams::paper_default(nodes), &mut rng),
        other => {
            eprintln!("unknown generator `{other}`");
            return ExitCode::from(2);
        }
    };
    let doc = graphml::to_string(&net);
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "# wrote {} ({} nodes, {} edges)",
        out,
        net.node_count(),
        net.edge_count()
    );
    ExitCode::SUCCESS
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("inspect requires a file");
        return ExitCode::from(2);
    };
    let net = match load_network(path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("name:        {}", net.name());
    println!(
        "direction:   {}",
        if net.is_undirected() {
            "undirected"
        } else {
            "directed"
        }
    );
    println!("nodes:       {}", net.node_count());
    println!("edges:       {}", net.edge_count());
    println!("density:     {:.4}", netgraph::metrics::density(&net));
    println!("mean degree: {:.2}", netgraph::metrics::mean_degree(&net));
    println!("max degree:  {}", netgraph::metrics::max_degree(&net));
    println!("connected:   {}", netgraph::algo::is_connected(&net));
    let mut attrs: Vec<&str> = net.schema().iter().map(|(_, n)| n).collect();
    attrs.sort();
    println!("attributes:  {}", attrs.join(", "));
    ExitCode::SUCCESS
}

//! End-to-end tests of the `netembed` binary: generate → inspect → embed,
//! exercising the documented exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netembed-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("netembed-cli-test-{}-{name}", std::process::id()));
    p
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

#[test]
fn gen_inspect_embed_pipeline() {
    let host = tmp("host.graphml");
    let query = tmp("query.graphml");

    // Generate a host.
    let out = run(&[
        "gen",
        "planetlab",
        "--nodes",
        "30",
        "--seed",
        "5",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Generate a small query (a ring) and write windows into it by hand:
    // reuse gen + a direct GraphML fixture instead.
    let qdoc = r#"<graphml>
      <key id="k1" for="edge" attr.name="dmin" attr.type="double"/>
      <key id="k2" for="edge" attr.name="dmax" attr.type="double"/>
      <graph id="q" edgedefault="undirected">
        <node id="a"/><node id="b"/>
        <edge source="a" target="b">
          <data key="k1">1.0</data><data key="k2">400.0</data>
        </edge>
      </graph></graphml>"#;
    std::fs::write(&query, qdoc).unwrap();

    // Inspect the host.
    let out = run(&["inspect", host.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes:       30"), "{text}");
    assert!(text.contains("undirected"));

    // Embed: generous window ⇒ many mappings, exit code 0.
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--constraint",
        "rEdge.avgDelay >= vEdge.dmin && rEdge.avgDelay <= vEdge.dmax",
        "--mode",
        "3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("a=site"));

    // Infeasible constraint ⇒ exit code 1 (definitive no).
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--constraint",
        "rEdge.avgDelay > 1e9",
    ]);
    assert_eq!(out.status.code(), Some(1));

    // Every algorithm flag works.
    for alg in ["ecf", "rwb", "lns", "par"] {
        let out = run(&[
            "embed",
            "--host",
            host.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
            "--constraint",
            "rEdge.avgDelay <= 400.0",
            "--algorithm",
            alg,
            "--mode",
            "first",
            "--quiet",
        ]);
        assert_eq!(out.status.code(), Some(0), "algorithm {alg}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).lines().count(),
            1,
            "algorithm {alg}"
        );
    }

    std::fs::remove_file(&host).ok();
    std::fs::remove_file(&query).ok();
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["embed"]).status.code(), Some(2));
    assert_eq!(
        run(&["gen", "bogus", "--out", "/tmp/x"]).status.code(),
        Some(2)
    );
    assert_eq!(
        run(&["inspect", "/nonexistent/file.graphml"]).status.code(),
        Some(2)
    );
    // Bad constraint syntax.
    let host = tmp("host2.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "5",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "1 +",
    ]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&host).ok();
}

#[test]
fn repeat_runs_share_the_prepared_session() {
    let host = tmp("repeat-host.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "8",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--repeat",
        "3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("run 1/3"), "{stderr}");
    assert!(
        stderr.contains("run 1/3: elapsed") && stderr.contains("filter cache hit: false"),
        "{stderr}"
    );
    // Runs 2 and 3 ride the warm session: the filter comes from the
    // epoch-keyed cache.
    assert!(
        stderr.matches("filter cache hit: true").count() >= 2,
        "{stderr}"
    );
    // Mappings are printed once, for the final run.
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);
    std::fs::remove_file(&host).ok();
}

#[test]
fn planner_mode_coalesces_concurrent_clients() {
    let host = tmp("planner-host.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "8",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--planner",
        "--clients",
        "4",
        "--repeat",
        "2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("burst 1/2: 4 clients"), "{stderr}");
    assert!(stderr.contains("burst 2/2"), "{stderr}");
    assert!(stderr.contains("groups dispatched:"), "{stderr}");
    assert!(
        stderr.contains("pool telemetry: parked scratches:"),
        "{stderr}"
    );
    // 8 concurrent equivalent requests (2 bursts × 4 clients), one
    // filter build total: the amortization identity, as printed.
    assert!(stderr.contains("misses: 1"), "{stderr}");
    // Mappings printed once, for the final response.
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);
    std::fs::remove_file(&host).ok();
}

#[test]
fn planner_oversub_prints_admission_telemetry() {
    let host = tmp("oversub-host.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "8",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // 8 clients against an admit queue of 1 (8× oversubscribed). How
    // many are shed depends on scheduling; the admission ledger and the
    // histogram summary lines must print regardless, and every
    // non-shed client reports real mappings (reject mode never
    // degrades), so the exit code stays 0.
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--planner",
        "--clients",
        "8",
        "--oversub",
        "8",
        "--priority",
        "high",
        "--shed",
        "reject",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("# admission: submitted: 8, accepted:"),
        "{stderr}"
    );
    assert!(stderr.contains("# queue wait: n="), "{stderr}");
    assert!(stderr.contains("| dispatch: n="), "{stderr}");
    std::fs::remove_file(&host).ok();
}

#[test]
fn planner_shards_flag_prints_per_shard_summary() {
    let host = tmp("shards-host.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "8",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--planner",
        "--clients",
        "4",
        "--shards",
        "3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("# planner: shards: 3,"), "{stderr}");
    // One summary line per shard, each carrying a drained gauge and its
    // own shed breakdown.
    for idx in 0..3 {
        assert!(
            stderr.contains(&format!("# shard {idx}: queue depth: 0,")),
            "{stderr}"
        );
    }
    assert!(
        stderr.contains("# shard 0: queue depth: 0, submitted:"),
        "{stderr}"
    );
    assert!(!stderr.contains("# shard 3:"), "{stderr}");

    // A malformed shard count is a usage error.
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--planner",
        "--shards",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&host).ok();
}

#[test]
fn feed_demo_prints_transitions_and_staleness_ledger() {
    let host = tmp("feed-host.graphml");
    let out = run(&[
        "gen",
        "ring",
        "--nodes",
        "8",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--feed",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The scripted faults play out deterministically: the feed leaves
    // live when the lost delta opens a gap, serves a stale-marked
    // answer inside the lag budget, sheds past it, then resyncs back
    // to live.
    assert!(stderr.contains("# feed: live at cursor 0"), "{stderr}");
    assert!(stderr.contains("live → catching-up"), "{stderr}");
    assert!(stderr.contains("catching-up → live"), "{stderr}");
    assert!(stderr.contains("# serve: fresh"), "{stderr}");
    assert!(stderr.contains("# serve: stale (lag"), "{stderr}");
    assert!(
        stderr.contains("# serve: shed (model feed degraded past max lag)"),
        "{stderr}"
    );
    // The delivery ledger balances and records the recovery.
    assert!(stderr.contains("(balanced: true)"), "{stderr}");
    assert!(stderr.contains("gap resyncs: 1"), "{stderr}");
    assert!(stderr.contains("last applied seq: 12, lag: 0"), "{stderr}");
    // The converged model still embeds: mappings print once.
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);
    // Quiet mode suppresses the narration but not the mappings.
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        host.to_str().unwrap(),
        "--constraint",
        "true",
        "--mode",
        "first",
        "--feed",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);
    std::fs::remove_file(&host).ok();
}

#[test]
fn help_prints_usage() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn gen_all_generators() {
    for kind in ["brite", "waxman", "clique", "ring", "star"] {
        let f = tmp(&format!("{kind}.graphml"));
        let out = run(&["gen", kind, "--nodes", "12", "--out", f.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{kind}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Round-trips through the parser.
        let doc = std::fs::read_to_string(&f).unwrap();
        let net = graphml::from_str(&doc).unwrap();
        assert_eq!(net.node_count(), 12, "{kind}");
        std::fs::remove_file(&f).ok();
    }
}

#[test]
fn hierarchy_embed_prints_refinement_summary() {
    let host = tmp("hier-host.graphml");
    let query = tmp("hier-query.graphml");

    // A power-law substrate with a planted `region = "hot"` cluster.
    let out = run(&[
        "gen",
        "powerlaw",
        "--nodes",
        "400",
        "--seed",
        "7",
        "--out",
        host.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A 2-node query path; the constraint pins it to the hot region.
    let qdoc = r#"<graphml>
      <graph id="q" edgedefault="undirected">
        <node id="a"/><node id="b"/>
        <edge source="a" target="b"/>
      </graph></graphml>"#;
    std::fs::write(&query, qdoc).unwrap();

    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--constraint",
        r#"rNode.region == "hot""#,
        "--mode",
        "first",
        "--hierarchy",
        "--levels",
        "4",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The coarsening ladder is announced up front...
    assert!(
        err.contains("levels over 400 host nodes"),
        "missing ladder line: {err}"
    );
    // ...and the refinement telemetry after the run.
    assert!(
        err.contains("# hierarchy: pruned"),
        "missing refinement summary: {err}"
    );
    assert!(err.contains("filter cells ("), "missing cell ratio: {err}");

    // An impossible node constraint is recognized in the abstract:
    // definitive infeasible (exit 1), not inconclusive.
    let out = run(&[
        "embed",
        "--host",
        host.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--constraint",
        "rNode.cpu >= 1000.0",
        "--hierarchy",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_file(&host).ok();
    std::fs::remove_file(&query).ok();
}

#[test]
fn gen_datacenter_generators() {
    // The fat-tree meets a node budget by scaling hosts per edge switch;
    // powerlaw takes --nodes exactly.
    let f = tmp("fattree.graphml");
    let out = run(&[
        "gen",
        "fattree",
        "--nodes",
        "60",
        "--out",
        f.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let net = graphml::from_str(&std::fs::read_to_string(&f).unwrap()).unwrap();
    assert!(
        net.node_count() >= 60,
        "budget not met: {}",
        net.node_count()
    );
    std::fs::remove_file(&f).ok();

    let f = tmp("powerlaw.graphml");
    let out = run(&[
        "gen",
        "powerlaw",
        "--nodes",
        "64",
        "--out",
        f.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let net = graphml::from_str(&std::fs::read_to_string(&f).unwrap()).unwrap();
    assert_eq!(net.node_count(), 64);
    std::fs::remove_file(&f).ok();
}

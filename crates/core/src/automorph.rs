//! Query-automorphism detection and solution-set compression.
//!
//! §II notes that Considine & Byers' constraint-satisfaction embedder used
//! automorphisms "to represent multiple equivalent mappings efficiently
//! using a single mapping". Regular query topologies (the paper's §VII-D
//! worst case) have large automorphism groups — a k-clique has k!, a
//! k-ring has 2k — so the complete solution sets ECF enumerates contain
//! huge orbits of equivalent embeddings. This module:
//!
//! * enumerates the **attribute-preserving automorphisms** of a query
//!   network (permutations preserving adjacency, node attributes and edge
//!   attributes) by self-embedding the query with ECF and post-filtering
//!   on attribute equality;
//! * compresses a solution set to **orbit representatives**: the unique
//!   embeddings modulo query automorphism, each with its orbit size.
//!
//! Enumeration is capped (automorphism groups are factorial in the worst
//! case); a hit on the cap is reported so callers never mistake a
//! truncated group for the full one.

use crate::deadline::Deadline;
use crate::ecf;
use crate::mapping::Mapping;
use crate::order::NodeOrder;
use crate::problem::Problem;
use crate::sink::{FnSink, SinkControl};
use crate::stats::SearchStats;
use netgraph::{Network, NodeId};
use rustc_hash::FxHashSet;

/// Result of automorphism enumeration.
#[derive(Debug, Clone)]
pub struct Automorphisms {
    /// The permutations found (always includes the identity). Each entry
    /// maps query node index → query node.
    pub perms: Vec<Mapping>,
    /// True when enumeration stopped at the cap — `perms` is then only a
    /// subset of the group and must not be used for exact orbit counts.
    pub truncated: bool,
}

impl Automorphisms {
    /// Group order (exact only when not truncated).
    pub fn order(&self) -> usize {
        self.perms.len()
    }
}

/// Enumerate the attribute-preserving automorphisms of `query`, up to
/// `cap` permutations.
pub fn query_automorphisms(query: &Network, cap: usize) -> Automorphisms {
    // Self-embedding under the trivially-true constraint enumerates all
    // adjacency-preserving permutations; attribute preservation is checked
    // per solution (the expression language compares *query to host*
    // attributes by name, which coincide here, but exact multi-attribute
    // equality is simpler and stricter done directly).
    let problem = Problem::new(query, query, "true").expect("self-embedding is well-formed");
    let mut perms: Vec<Mapping> = Vec::new();
    let mut truncated = false;
    {
        let mut sink = FnSink(|m: &Mapping| {
            if preserves_attrs(query, m) {
                perms.push(m.clone());
                if perms.len() >= cap {
                    truncated = true;
                    return SinkControl::Stop;
                }
            }
            SinkControl::Continue
        });
        let mut deadline = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let _ = ecf::search(
            &problem,
            NodeOrder::AscendingCandidates,
            &mut deadline,
            &mut sink,
            &mut stats,
        );
    }
    Automorphisms { perms, truncated }
}

/// Does the permutation preserve every node and edge attribute?
fn preserves_attrs(query: &Network, perm: &Mapping) -> bool {
    for v in query.node_ids() {
        let w = perm.get(v);
        let a: Vec<_> = query.node_attrs(v).collect();
        let b: Vec<_> = query.node_attrs(w).collect();
        if a != b {
            return false;
        }
    }
    for e in query.edge_refs() {
        let (s, d) = (perm.get(e.src), perm.get(e.dst));
        let Some(f) = query.find_edge(s, d) else {
            return false; // adjacency should already hold, but be safe
        };
        let a: Vec<_> = query.edge_attrs(e.id).collect();
        let b: Vec<_> = query.edge_attrs(f).collect();
        if a != b {
            return false;
        }
    }
    true
}

/// One orbit of equivalent embeddings.
#[derive(Debug, Clone)]
pub struct Orbit {
    /// The canonical (lexicographically-least) member.
    pub representative: Mapping,
    /// Number of solutions in this orbit that were present in the input.
    pub size: usize,
}

/// Compress `solutions` modulo the query automorphisms: group solutions
/// whose compositions with a permutation coincide, keeping the
/// lexicographically-least member of each group.
///
/// With a truncated group this still produces a valid partition — just a
/// finer one than the full group would give.
pub fn compress_orbits(solutions: &[Mapping], autos: &Automorphisms) -> Vec<Orbit> {
    let mut seen: FxHashSet<Vec<NodeId>> = FxHashSet::default();
    let mut orbits: Vec<Orbit> = Vec::new();
    for sol in solutions {
        if seen.contains(sol.as_slice()) {
            continue;
        }
        // Generate the orbit of `sol`: sol ∘ π for every automorphism π.
        let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(autos.perms.len());
        for perm in &autos.perms {
            // (sol ∘ perm)(v) = sol(perm(v)).
            let composed: Vec<NodeId> = (0..sol.len())
                .map(|i| sol.get(perm.get(NodeId(i as u32))))
                .collect();
            members.push(composed);
        }
        members.sort();
        members.dedup();
        let mut present = 0usize;
        for m in &members {
            if solutions.iter().any(|s| s.as_slice() == m.as_slice()) {
                seen.insert(m.clone());
                present += 1;
            }
        }
        let representative = Mapping::new(members.into_iter().next().expect("orbit non-empty"));
        orbits.push(Orbit {
            representative,
            size: present,
        });
    }
    orbits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Options};
    use netgraph::Direction;

    fn ring(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    fn clique(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(ids[i], ids[j]);
            }
        }
        g
    }

    #[test]
    fn ring_group_is_dihedral() {
        // Aut(C5) = D5, order 10.
        let autos = query_automorphisms(&ring(5), 1000);
        assert!(!autos.truncated);
        assert_eq!(autos.order(), 10);
    }

    #[test]
    fn clique_group_is_symmetric() {
        // Aut(K4) = S4, order 24.
        let autos = query_automorphisms(&clique(4), 1000);
        assert!(!autos.truncated);
        assert_eq!(autos.order(), 24);
    }

    #[test]
    fn path_group_is_order_two() {
        let mut g = Network::new(Direction::Undirected);
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        let autos = query_automorphisms(&g, 100);
        assert_eq!(autos.order(), 2); // identity + end-swap
    }

    #[test]
    fn attributes_break_symmetry() {
        let mut g = ring(4); // Aut(C4) = D4, order 8
        assert_eq!(query_automorphisms(&g, 100).order(), 8);
        // Pinning one node's attribute kills all rotations/reflections
        // except those fixing it: stabilizer of a vertex in D4 has order 2.
        g.set_node_attr(NodeId(0), "pin", true);
        assert_eq!(query_automorphisms(&g, 100).order(), 2);
        // Distinct edge attributes kill everything but the identity.
        let mut g2 = ring(4);
        for (i, e) in g2.edge_refs().collect::<Vec<_>>().into_iter().enumerate() {
            g2.set_edge_attr(e.id, "w", i as f64);
        }
        assert_eq!(query_automorphisms(&g2, 100).order(), 1);
    }

    #[test]
    fn cap_truncates() {
        let autos = query_automorphisms(&clique(5), 10); // |S5| = 120 > 10
        assert!(autos.truncated);
        assert_eq!(autos.order(), 10);
    }

    #[test]
    fn orbit_compression_on_triangle_solutions() {
        // Embed K3 into K4: 4·3·2 = 24 solutions; modulo Aut(K3) (order 6)
        // that is 4 orbits (one per chosen 3-subset... times 1) — each
        // orbit has the full 6 members present.
        let q = clique(3);
        let h = clique(4);
        let engine = Engine::new(&h);
        let res = engine.embed(&q, "true", &Options::default()).unwrap();
        assert_eq!(res.mappings.len(), 24);
        let autos = query_automorphisms(&q, 100);
        assert_eq!(autos.order(), 6);
        let orbits = compress_orbits(&res.mappings, &autos);
        assert_eq!(orbits.len(), 4);
        for o in &orbits {
            assert_eq!(o.size, 6);
        }
        // Orbit sizes account for every solution exactly once.
        let total: usize = orbits.iter().map(|o| o.size).sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn identity_only_group_compresses_nothing() {
        let mut q = ring(4);
        for (i, e) in q.edge_refs().collect::<Vec<_>>().into_iter().enumerate() {
            q.set_edge_attr(e.id, "w", i as f64);
        }
        let autos = query_automorphisms(&q, 100);
        assert_eq!(autos.order(), 1);
        let sols = vec![
            Mapping::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
            Mapping::new(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)]),
        ];
        let orbits = compress_orbits(&sols, &autos);
        assert_eq!(orbits.len(), 2);
    }
}

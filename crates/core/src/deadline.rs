//! Timeout machinery: NETEMBED trades completeness for timely convergence
//! (§II, design goal 2) by letting every search run under a deadline.
//!
//! The searches poll the deadline on a stride (checking `Instant::now()` at
//! every tree node would dominate the hot loop) and also honour an external
//! cancellation flag so the parallel search can stop all workers as soon as
//! one of them finds what the caller asked for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many cheap polls between `Instant::now()` checks.
const POLL_STRIDE: u32 = 256;

/// A deadline plus cooperative-cancellation flag. Cloning shares the
/// cancellation flag (used by the parallel search) but each clone keeps its
/// own poll counter.
///
/// [`Deadline::scoped`] derives a *child* deadline with the same clock but
/// a fresh cancellation flag: cancelling the child stops everything
/// sharing the child's flag without expiring the parent. The parallel
/// search uses this for its solution-limit stop, so a limit-triggered
/// cancellation does not poison the caller's deadline for later phases.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
    cancel: Arc<AtomicBool>,
    /// Ancestor cancellation flags ([`Deadline::scoped`]): observed by
    /// `check_now`, never set by `cancel`.
    inherited: Vec<Arc<AtomicBool>>,
    poll: u32,
    expired_seen: bool,
}

impl Deadline {
    /// A deadline `limit` from now. `None` never expires (but can still be
    /// cancelled).
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
            cancel: Arc::new(AtomicBool::new(false)),
            inherited: Vec::new(),
            poll: 0,
            expired_seen: false,
        }
    }

    /// A child deadline: same start instant and time limit, and it observes
    /// this deadline's cancellation (and its ancestors'), but carries its
    /// own fresh flag — cancelling the child never expires the parent.
    pub fn scoped(&self) -> Deadline {
        let mut inherited = self.inherited.clone();
        inherited.push(self.cancel.clone());
        Deadline {
            start: self.start,
            limit: self.limit,
            cancel: Arc::new(AtomicBool::new(false)),
            inherited,
            poll: 0,
            expired_seen: false,
        }
    }

    /// A deadline that never expires.
    pub fn unlimited() -> Self {
        Self::new(None)
    }

    /// Elapsed time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Request cancellation (affects all clones).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True when this deadline (or an ancestor of a [`Deadline::scoped`]
    /// child) has been cancelled. Unlike [`Deadline::expired`] this never
    /// reads the clock and needs no `&mut self`, so shared-state
    /// observers — the work-stealing scheduler's split gate and its
    /// deque-draining idle loop — can poll it without owning the
    /// deadline. A `true` here means "stop producing work": publishing a
    /// subtree task after cancellation would strand it in a deque no
    /// worker will ever drain.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.inherited.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// True when cancelled or past the time limit. Cheap: only checks the
    /// clock once every `POLL_STRIDE` (256) calls. Once expiry has been
    /// observed it stays expired.
    #[inline]
    pub fn expired(&mut self) -> bool {
        if self.expired_seen {
            return true;
        }
        self.poll = self.poll.wrapping_add(1);
        // Check the clock on the very first poll (so zero/expired budgets
        // are caught before any work) and then once per stride.
        if self.poll != 1 && !self.poll.is_multiple_of(POLL_STRIDE) {
            return false;
        }
        self.check_now()
    }

    /// Unconditional check (used at phase boundaries).
    pub fn check_now(&mut self) -> bool {
        if self.expired_seen {
            return true;
        }
        if self.cancel.load(Ordering::Relaxed)
            || self.inherited.iter().any(|f| f.load(Ordering::Relaxed))
        {
            self.expired_seen = true;
            return true;
        }
        if let Some(limit) = self.limit {
            if self.start.elapsed() >= limit {
                self.expired_seen = true;
                return true;
            }
        }
        false
    }

    /// Whether this deadline has observed expiry (without re-checking).
    pub fn was_expired(&self) -> bool {
        self.expired_seen
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let mut d = Deadline::unlimited();
        for _ in 0..10_000 {
            assert!(!d.expired());
        }
    }

    #[test]
    fn zero_limit_expires() {
        let mut d = Deadline::new(Some(Duration::from_secs(0)));
        assert!(d.check_now());
        assert!(d.was_expired());
        // Sticky.
        assert!(d.expired());
    }

    #[test]
    fn cancellation_shared_across_clones() {
        let mut a = Deadline::unlimited();
        let mut b = a.clone();
        a.cancel();
        assert!(b.check_now());
        assert!(a.check_now());
    }

    #[test]
    fn strided_poll_eventually_observes_limit() {
        let mut d = Deadline::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let mut seen = false;
        for _ in 0..2 * POLL_STRIDE {
            if d.expired() {
                seen = true;
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn scoped_cancel_does_not_expire_parent() {
        let parent = Deadline::unlimited();
        let mut child = parent.scoped();
        child.cancel();
        assert!(child.check_now());
        let mut parent = parent;
        assert!(!parent.check_now(), "child cancel leaked into parent");
        assert!(!parent.was_expired());
    }

    #[test]
    fn parent_cancel_propagates_to_scoped_children() {
        let parent = Deadline::unlimited();
        let mut child = parent.scoped();
        let mut grandchild = child.scoped();
        parent.cancel();
        assert!(child.check_now());
        assert!(grandchild.check_now());
    }

    #[test]
    fn scoped_child_shares_clock() {
        let parent = Deadline::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let mut child = parent.scoped();
        // The child inherits the parent's start instant, not a fresh one.
        assert!(child.check_now());
    }

    #[test]
    fn mid_stride_polls_do_not_mask_check_now() {
        // Consume part of a poll stride while the limit is generous, then
        // let the clock run out: a phase-boundary `check_now` must observe
        // expiry immediately even though the strided `expired()` counter
        // is mid-stride.
        let mut d = Deadline::new(Some(Duration::from_millis(2)));
        for _ in 0..10 {
            let _ = d.expired();
        }
        std::thread::sleep(Duration::from_millis(6));
        assert!(!d.was_expired());
        assert!(d.check_now(), "phase boundary failed to observe expiry");
    }

    #[test]
    fn first_poll_checks_clock() {
        // Zero/expired budgets are caught on the very first strided poll,
        // before any work happens.
        let mut d = Deadline::new(Some(Duration::ZERO));
        assert!(d.expired());
    }

    #[test]
    fn is_cancelled_observes_flags_not_clock() {
        // A time-expired deadline is not "cancelled": is_cancelled only
        // reports explicit cancellation (own flag or an ancestor's).
        let timed = Deadline::new(Some(Duration::ZERO));
        assert!(!timed.is_cancelled());

        let parent = Deadline::unlimited();
        let child = parent.scoped();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "ancestor cancel must be visible");
        assert!(parent.is_cancelled());
        // No &mut needed, and the child's own flag is still clear: a
        // later check_now (which needs &mut) agrees.
        let mut child = child;
        assert!(child.check_now());
    }

    #[test]
    fn elapsed_monotonic() {
        let d = Deadline::unlimited();
        let e1 = d.elapsed();
        let e2 = d.elapsed();
        assert!(e2 >= e1);
    }
}

//! Exhaustive search with Constraint Filtering (ECF) — §V-A, Figure 4.
//!
//! A depth-first traversal of the permutations tree. The node at depth `i`
//! assigns the `i`-th query node (in Lemma-1 order); its children are the
//! candidate host nodes from expression (2): the intersection of the filter
//! cells contributed by every already-assigned query neighbor, minus the
//! host nodes already in use. Every leaf at depth `N_Q` is a feasible
//! embedding and is streamed to the caller's [`SolutionSink`].
//!
//! The inner loop is allocation-free: the DFS borrows one `Frame` per
//! depth from a caller-held [`SearchScratch`], allocated on first use and
//! reused across the entire traversal (and across traversals, when the
//! caller keeps the scratch). Each frame carries the candidate list for
//! its level; `fill_candidates` computes expression (2) by intersecting
//! the predecessors' filter cells word-by-word into the scratch's shared
//! intersection mask (dense cells contribute their bitset mirrors
//! directly, sparse cells are staged through the second shared mask),
//! subtracting `used`, and unpacking the surviving bits into the frame's
//! candidate `Vec`. The masks are shared across depths — they are dead
//! the moment the candidate list is unpacked — so a cold search
//! allocates two bitsets total instead of two per depth. No hashing, no
//! `binary_search` probes, no per-descent heap allocation.
//!
//! The same DFS core also powers RWB (candidates visited in random order,
//! sink stops at the first solution) and the work-stealing parallel
//! search: `run_dfs_task` resumes the traversal from a *seeded prefix*
//! (a partial assignment entered via `enter_prefix` without re-deriving
//! any frame) and consults a `TaskSplitter` at each candidate take, so
//! a worker can hand the untried tail of a shallow frame to an idle
//! sibling instead of recursing alone.

use crate::deadline::Deadline;
use crate::filter::{CellView, FilterMatrix};
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder, Pred};
use crate::problem::Problem;
use crate::scratch::SearchScratch;
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use netgraph::{NodeBitSet, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How a search run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchEnd {
    /// The whole (pruned) permutation tree was explored: the reported
    /// solution set is complete.
    Exhausted,
    /// The sink asked to stop (e.g. first-match mode).
    SinkStop,
    /// The deadline expired.
    Timeout,
}

/// Run the full ECF pipeline: build filters, order nodes, search.
/// Solutions stream into `sink`; counters into `stats`.
pub fn search(
    problem: &Problem<'_>,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> Result<SearchEnd, crate::problem::ProblemError> {
    search_with_scratch(
        problem,
        order,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search`] with a caller-held [`SearchScratch`]: the per-depth frame
/// arena survives across calls, so batch callers pay the DFS setup once.
pub fn search_with_scratch(
    problem: &Problem<'_>,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Result<SearchEnd, crate::problem::ProblemError> {
    let start = std::time::Instant::now();
    let filter = FilterMatrix::build(problem, deadline, stats)?;
    let end = search_prebuilt_with_scratch(problem, &filter, order, deadline, sink, stats, scratch);
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    Ok(end)
}

/// The second stage alone: order nodes and run the DFS over an already
/// constructed filter. Lets callers amortize one filter build across
/// several searches (different orders, sinks, or deadlines) and gives the
/// `abl_filter_layout` ablation a search-only measurement. `stats.elapsed`
/// covers only this call.
pub fn search_prebuilt(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> SearchEnd {
    search_prebuilt_with_scratch(
        problem,
        filter,
        order,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search_prebuilt`] with a caller-held [`SearchScratch`]. With both
/// the filter and the scratch reused, a repeated search allocates
/// nothing at all (see the `scratch_reuse` series of
/// `benches/abl_filter_layout.rs`).
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt_with_scratch(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> SearchEnd {
    let start = std::time::Instant::now();
    // Filter-phase size is reported even for prebuilt (and truncated)
    // runs, so timeout rows stay comparable across harness tables.
    stats.filter_cells = filter.cell_count() as u64;
    if filter.truncated() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        stats.cpu_time = stats.elapsed;
        return SearchEnd::Timeout;
    }
    // Phase boundary: an already-expired deadline must not be masked by
    // the strided poll counter carrying over from the build phase.
    if deadline.check_now() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        stats.cpu_time = stats.elapsed;
        return SearchEnd::Timeout;
    }
    let node_order = compute_order(problem.query, filter, order);
    let preds = predecessors(problem.query, &node_order);
    let end = run_dfs(
        problem,
        filter,
        &node_order,
        &preds,
        deadline,
        sink,
        stats,
        None,
        None,
        scratch,
    );
    stats.timed_out |= end == SearchEnd::Timeout;
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    end
}

/// Per-depth reusable DFS state: the candidate list for this level and
/// the iteration cursor. Owned by a [`SearchScratch`], allocated on
/// first use and reused for every subtree visited at that depth — and,
/// with a caller-held scratch, for every subsequent search. The
/// intersection/staging masks [`fill_candidates`] works through are
/// *shared* scratch-level bitsets, not per-frame: a frame's mask is dead
/// as soon as its candidate list is unpacked, so one pair serves every
/// depth and the cold-start cost stays flat in `nq`.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    candidates: Vec<NodeId>,
    next: usize,
}

impl Frame {
    pub(crate) fn new() -> Frame {
        Frame::default()
    }
}

/// Split hook consulted by [`run_dfs_task`] every time a frame at a
/// stealable depth is about to yield its next candidate. `offer` sees
/// the absolute depth, the node order, the current assignment (from
/// which it can reconstruct the prefix `order[0..depth] → host`) and the
/// *untried tail* of the frame — every candidate after the one the
/// worker is about to descend into. It returns how many candidates it
/// took ownership of, **counted from the end of the tail** (publishing
/// them as a stealable task); the DFS drops exactly those from its own
/// frame. `0` leaves the frame untouched. Taking a suffix (typically
/// half — binary splitting) rather than the whole tail keeps one frame
/// from exploding into a task per candidate when workers keep going
/// idle.
pub(crate) trait TaskSplitter {
    fn offer(
        &mut self,
        depth: usize,
        order: &[NodeId],
        assign: &[NodeId],
        tail: &[NodeId],
    ) -> usize;
}

/// Enter a partial assignment: bind `prefix[i]` to `order[i]` in the
/// scratch's assignment array and mark the hosts used, *without*
/// deriving candidate frames for those depths — a stolen task resumes
/// below a prefix whose frames were consumed by the publishing worker,
/// so re-filling them would repeat (and double-count) work. The prefix
/// is injective by construction: it is a path the publisher's DFS was
/// standing on.
pub(crate) fn enter_prefix(scratch: &mut SearchScratch, order: &[NodeId], prefix: &[NodeId]) {
    for (i, &r) in prefix.iter().enumerate() {
        scratch.assign[order[i].index()] = r;
        scratch.used.insert(r);
    }
}

/// Undo [`enter_prefix`] so the scratch is clean for the next task. Only
/// the prefix depths are touched: on a normal (`Exhausted`) return the
/// DFS has already unwound everything below the task's base depth, and
/// on an abandoned run (timeout / sink stop) the worker stops executing
/// tasks altogether, so deeper residue is reset by the next search's
/// `ensure`.
pub(crate) fn leave_prefix(scratch: &mut SearchScratch, order: &[NodeId], prefix: &[NodeId]) {
    for (i, &r) in prefix.iter().enumerate() {
        scratch.assign[order[i].index()] = NodeId(u32::MAX);
        scratch.used.remove(r);
    }
}

/// The DFS core. `shuffle` randomizes candidate order at every level
/// (RWB); `root_override` restricts the root level to the given candidates
/// (parallel workers). All mutable traversal state lives in `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dfs(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    shuffle: Option<&mut StdRng>,
    root_override: Option<&[NodeId]>,
    scratch: &mut SearchScratch,
) -> SearchEnd {
    scratch.ensure(problem.nq(), problem.nr());
    run_dfs_task(
        filter,
        order,
        preds,
        deadline,
        sink,
        stats,
        shuffle,
        0,
        root_override,
        scratch,
        None,
    )
}

/// The resumable DFS core under a seeded prefix.
///
/// The caller owns the lifecycle: `scratch.ensure` has been called for
/// this problem, depths `0..base` are already bound (via
/// [`enter_prefix`]), and `base_candidates` — when given — is the exact
/// untried candidate list for depth `base` (a stolen task's payload or a
/// root partition). With `base_candidates = None` the base frame is
/// filled normally. The traversal never backtracks above `base`, so a
/// worker can run many tasks against one scratch, entering and leaving a
/// prefix per task. `splitter`, when present, is offered the untried
/// tail of every frame at each candidate take; an accepted offer
/// truncates the frame (the tail now belongs to another task) and
/// counts into `stats.tasks_spawned`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dfs_task(
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    mut shuffle: Option<&mut StdRng>,
    base: usize,
    base_candidates: Option<&[NodeId]>,
    scratch: &mut SearchScratch,
    mut splitter: Option<&mut dyn TaskSplitter>,
) -> SearchEnd {
    let nq = order.len();
    let SearchScratch {
        frames,
        assign,
        used,
        mask,
        stage,
        ..
    } = scratch;
    let mut depth = base;

    match base_candidates {
        Some(list) => {
            frames[base].candidates.clear();
            frames[base].candidates.extend_from_slice(list);
        }
        None => {
            fill_candidates(
                filter,
                order,
                preds,
                base,
                assign,
                used,
                mask,
                stage,
                &mut frames[base],
            );
        }
    }
    frames[base].next = 0;
    if let Some(rng) = shuffle.as_deref_mut() {
        frames[base].candidates.shuffle(rng);
    }

    loop {
        if deadline.expired() {
            return SearchEnd::Timeout;
        }
        let frame = &mut frames[depth];
        if frame.next >= frame.candidates.len() {
            // Exhausted this level: backtrack (never above the seeded base).
            if depth == base {
                return SearchEnd::Exhausted;
            }
            depth -= 1;
            let vq = order[depth];
            let r = assign[vq.index()];
            used.remove(r);
            assign[vq.index()] = NodeId(u32::MAX);
            continue;
        }
        // Depth-bounded subtree splitting: before committing to the next
        // candidate, offer the rest of this frame to an idle worker. The
        // tail is everything *after* the candidate we are about to take,
        // so the local traversal continues unchanged either way; an
        // accepted offer peels the taken suffix off the frame.
        if let Some(sp) = splitter.as_deref_mut() {
            let tail_at = frame.next + 1;
            if tail_at < frame.candidates.len() {
                let taken = sp.offer(depth, order, assign, &frame.candidates[tail_at..]);
                if taken > 0 {
                    debug_assert!(taken <= frame.candidates.len() - tail_at);
                    frame.candidates.truncate(frame.candidates.len() - taken);
                    stats.tasks_spawned += 1;
                }
            }
        }
        let r = frame.candidates[frame.next];
        frame.next += 1;
        let vq = order[depth];
        stats.nodes_visited += 1;

        if depth + 1 == nq {
            // Leaf: a complete feasible mapping.
            assign[vq.index()] = r;
            stats.solutions += 1;
            let mapping = Mapping::new(assign.clone());
            assign[vq.index()] = NodeId(u32::MAX);
            if sink.report(&mapping) == SinkControl::Stop {
                return SearchEnd::SinkStop;
            }
            continue;
        }

        // Descend.
        assign[vq.index()] = r;
        used.insert(r);
        let next_frame = &mut frames[depth + 1];
        if !fill_candidates(
            filter,
            order,
            preds,
            depth + 1,
            assign,
            used,
            mask,
            stage,
            next_frame,
        ) {
            stats.prunes += 1;
            used.remove(r);
            assign[vq.index()] = NodeId(u32::MAX);
            continue;
        }
        if let Some(rng) = shuffle.as_deref_mut() {
            next_frame.candidates.shuffle(rng);
        }
        next_frame.next = 0;
        depth += 1;
    }
}

/// Expression (1)/(2) into `frame.candidates`, via the scratch's shared
/// masks: no heap allocation, no hashing, no per-candidate searches.
/// Returns `false` when the candidate set is empty.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_candidates(
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
    depth: usize,
    assign: &[NodeId],
    used: &NodeBitSet,
    mask: &mut NodeBitSet,
    stage: &mut NodeBitSet,
    frame: &mut Frame,
) -> bool {
    let vi = order[depth];
    let plist = &preds[depth];
    frame.candidates.clear();

    if plist.is_empty() {
        // Expression (1): base candidates minus used. This covers the root
        // node, isolated nodes, and the first node of later components.
        mask.clear_and_copy_from(filter.base(vi));
        mask.subtract(used);
        mask.collect_into(&mut frame.candidates);
        return !frame.candidates.is_empty();
    }

    // Expression (2): intersect one filter cell per predecessor edge,
    // minus used — one pass, one view fetch per predecessor. The first
    // cell seeds the mask (a sparse splat is bounded by CELL_DENSE_MIN
    // elements; anything larger carries a bitset mirror and word-copies),
    // the rest AND in word-by-word. Each dense cell is screened with the
    // early-exit `intersects_any` first: a disjoint cell bails without
    // paying for the full-width intersection write, and an overlapping
    // one usually proves itself within the first block or two.
    let cell_of = |p: &Pred| -> CellView<'_> {
        let rj = assign[p.node.index()];
        debug_assert_ne!(rj, NodeId(u32::MAX), "predecessor must be assigned");
        if p.forward {
            filter.fwd_view(p.node, rj, vi)
        } else {
            filter.rev_view(p.node, rj, vi)
        }
    };

    if let [p] = plist.as_slice() {
        // Single predecessor — the common case on tree-like query
        // extensions: the candidate set is one cell minus `used`, so
        // walk the (ascending) cell slice directly instead of splatting
        // it through the mask. Same output order as collect_into.
        let cell = cell_of(p);
        for &r in cell.slice {
            if !used.contains(r) {
                frame.candidates.push(r);
            }
        }
        return !frame.candidates.is_empty();
    }

    for (i, p) in plist.iter().enumerate() {
        let cell = cell_of(p);
        if cell.slice.is_empty() {
            return false;
        }
        if i == 0 {
            match cell.bits {
                Some(bits) => mask.clear_and_copy_from(bits),
                None => mask.clear_and_insert_all(cell.slice),
            }
            continue;
        }
        match cell.bits {
            Some(bits) => {
                if !mask.intersects_any(bits) {
                    return false;
                }
                mask.intersect_with(bits);
            }
            None => {
                stage.clear_and_insert_all(cell.slice);
                if !mask.intersects_any(stage) {
                    return false;
                }
                mask.intersect_with(stage);
            }
        }
    }
    mask.subtract(used);
    mask.collect_into(&mut frame.candidates);
    !frame.candidates.is_empty()
}

/// Root-level candidates (expression (1) for `order[0]`), as a fresh
/// `Vec`: used by the parallel search to partition the root across
/// workers. Not on the hot path.
pub(crate) fn root_candidates(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
) -> Vec<NodeId> {
    let assign = vec![NodeId(u32::MAX); problem.nq()];
    let used = NodeBitSet::new(problem.nr());
    let mut mask = NodeBitSet::new(problem.nr());
    let mut stage = NodeBitSet::new(problem.nr());
    let mut frame = Frame::new();
    fill_candidates(
        filter, order, preds, 0, &assign, &used, &mut mask, &mut stage, &mut frame,
    );
    frame.candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectAll, CollectUpTo};
    use netgraph::{Direction, Network};

    /// Host: 4-cycle with distinct delays; query: one edge with a window.
    fn cycle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for (i, d) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            let e = h.add_edge(ids[i], ids[(i + 1) % 4]);
            h.set_edge_attr(e, "d", *d);
        }
        h
    }

    fn run(q: &Network, h: &Network, c: &str) -> (Vec<Mapping>, SearchStats, SearchEnd) {
        let p = Problem::new(q, h, c).unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(
            &p,
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut sink,
            &mut stats,
        )
        .unwrap();
        (sink.solutions, stats, end)
    }

    #[test]
    fn single_edge_query_finds_both_orientations() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, stats, end) = run(&q, &h, "rEdge.d <= 20.0");
        // Edges d=10 (h0,h1) and d=20 (h1,h2), × 2 orientations = 4.
        assert_eq!(sols.len(), 4);
        assert_eq!(end, SearchEnd::Exhausted);
        assert_eq!(stats.solutions, 4);
    }

    #[test]
    fn triangle_query_in_triangle_host() {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..3).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..3 {
            h.add_edge(ids[i], ids[(i + 1) % 3]);
        }
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            q.add_edge(qs[i], qs[(i + 1) % 3]);
        }
        let (sols, _, _) = run(&q, &h, "true");
        // All 3! = 6 bijections are valid embeddings of K3 into K3.
        assert_eq!(sols.len(), 6);
        // All solutions distinct.
        let set: std::collections::HashSet<_> = sols.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn path_query_in_cycle_host() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let (sols, _, _) = run(&q, &h, "true");
        // Paths of length 2 in C4: centre can be any of 4 nodes, its two
        // neighbors ordered 2 ways = 8 embeddings.
        assert_eq!(sols.len(), 8);
        // Injectivity: ends never equal.
        for m in &sols {
            assert_ne!(m.get(a), m.get(c));
            assert_ne!(m.get(a), m.get(b));
        }
    }

    #[test]
    fn infeasible_query_returns_empty_exhausted() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, stats, end) = run(&q, &h, "rEdge.d > 1000.0");
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted); // definitive no
        assert!(!stats.timed_out);
    }

    #[test]
    fn clique_query_too_large_is_infeasible() {
        let h = cycle_host(); // C4 has no triangle
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                q.add_edge(qs[i], qs[j]);
            }
        }
        let (sols, _, end) = run(&q, &h, "true");
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted);
    }

    #[test]
    fn sink_stop_ends_search_early() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let _ = (a, b);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut sink = CollectUpTo::new(1);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sink.solutions.len(), 1);
    }

    #[test]
    fn zero_deadline_times_out() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::new(Some(std::time::Duration::ZERO));
        dl.check_now();
        let end = search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
    }

    #[test]
    fn directed_query_respects_orientation() {
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        h.add_edge(u, v);
        h.add_edge(v, w);
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, _, _) = run(&q, &h, "true");
        // Directed edges: (u,v) and (v,w) only — no reversals.
        assert_eq!(sols.len(), 2);
        for m in &sols {
            assert!(h.has_edge(m.get(a), m.get(b)));
        }
    }

    #[test]
    fn directed_two_cycle_query() {
        // Query a⇄b needs a host 2-cycle.
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q.add_edge(b, a);
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        h.add_edge(u, v);
        h.add_edge(v, u);
        h.add_edge(v, w); // one-way, can't host the 2-cycle
        let (sols, _, _) = run(&q, &h, "true");
        assert_eq!(sols.len(), 2); // (u,v) and (v,u)
        for m in &sols {
            assert!(h.has_edge(m.get(a), m.get(b)));
            assert!(h.has_edge(m.get(b), m.get(a)));
        }
    }

    #[test]
    fn disconnected_query_components() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c"); // isolated
        q.add_edge(a, b);
        let _ = c;
        let (sols, _, _) = run(&q, &h, "true");
        // Edge (a,b): 8 directed placements on C4's 4 edges; c takes any of
        // the 2 remaining host nodes: 16.
        assert_eq!(sols.len(), 16);
    }

    #[test]
    fn node_constraint_limits_solutions() {
        let mut h = cycle_host();
        for i in 0..4 {
            h.set_node_attr(NodeId(i), "cpu", if i % 2 == 0 { 8.0 } else { 1.0 });
        }
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        // Both endpoints need cpu ≥ 4, but C4 alternates 8,1,8,1: no edge
        // has two high-cpu endpoints.
        let (sols, _, _) = run(&q, &h, "rNode.cpu >= 4.0");
        assert!(sols.is_empty());
    }

    #[test]
    fn lemma1_order_visits_fewer_nodes_in_aggregate() {
        // Lemma 1 predicts a smaller permutation tree when nodes are
        // examined ascending by candidate count. On a single tiny instance
        // the connectivity tie-break can shift a node or two either way,
        // so validate the aggregate over several skewed instances (the
        // `abl-order` bench does the full-size version of this).
        let mut asc_total = 0u64;
        let mut desc_total = 0u64;
        for salt in 0..6u32 {
            let mut h = Network::new(Direction::Undirected);
            let ids: Vec<NodeId> = (0..9).map(|i| h.add_node(format!("h{i}"))).collect();
            for i in 0..9 {
                for j in (i + 1)..9 {
                    let e = h.add_edge(ids[i], ids[j]);
                    h.set_edge_attr(e, "d", ((i * 3 + j + salt as usize) % 6) as f64);
                }
            }
            let mut q = Network::new(Direction::Undirected);
            let hub = q.add_node("hub");
            for i in 0..3 {
                let leaf = q.add_node(format!("l{i}"));
                let e = q.add_edge(hub, leaf);
                q.set_edge_attr(e, "w", i as f64);
            }
            let p = Problem::new(&q, &h, "rEdge.d == vEdge.w").unwrap();
            let run_with = |ord: NodeOrder| -> u64 {
                let mut sink = CollectAll::default();
                let mut stats = SearchStats::default();
                let mut dl = Deadline::unlimited();
                search(&p, ord, &mut dl, &mut sink, &mut stats).unwrap();
                stats.nodes_visited
            };
            asc_total += run_with(NodeOrder::AscendingCandidates);
            desc_total += run_with(NodeOrder::DescendingCandidates);
        }
        assert!(
            asc_total <= desc_total,
            "Lemma-1 order visited {asc_total} nodes, reverse visited {desc_total}"
        );
    }
}

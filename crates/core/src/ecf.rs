//! Exhaustive search with Constraint Filtering (ECF) — §V-A, Figure 4.
//!
//! A depth-first traversal of the permutations tree. The node at depth `i`
//! assigns the `i`-th query node (in Lemma-1 order); its children are the
//! candidate host nodes from expression (2): the intersection of the filter
//! cells contributed by every already-assigned query neighbor, minus the
//! host nodes already in use. Every leaf at depth `N_Q` is a feasible
//! embedding and is streamed to the caller's [`SolutionSink`].
//!
//! The inner loop is allocation-free: the DFS borrows one `Frame` per
//! depth from a caller-held [`SearchScratch`], allocated on first use and
//! reused across the entire traversal (and across traversals, when the
//! caller keeps the scratch). Each frame carries the candidate list for
//! its level plus two scratch bitsets; `fill_candidates` computes expression (2) by intersecting
//! the predecessors' filter cells word-by-word into the frame's scratch
//! mask (dense cells contribute their bitset mirrors directly, sparse
//! cells are staged through the second scratch), subtracting `used`, and
//! unpacking the surviving bits into the frame's candidate `Vec`. No
//! hashing, no `binary_search` probes, no per-descent heap allocation.
//!
//! The same DFS core also powers RWB (candidates visited in random order,
//! sink stops at the first solution) and the parallel search (the root
//! candidate list is partitioned across workers).

use crate::deadline::Deadline;
use crate::filter::{CellView, FilterMatrix};
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder, Pred};
use crate::problem::Problem;
use crate::scratch::SearchScratch;
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use netgraph::{NodeBitSet, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How a search run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchEnd {
    /// The whole (pruned) permutation tree was explored: the reported
    /// solution set is complete.
    Exhausted,
    /// The sink asked to stop (e.g. first-match mode).
    SinkStop,
    /// The deadline expired.
    Timeout,
}

/// Run the full ECF pipeline: build filters, order nodes, search.
/// Solutions stream into `sink`; counters into `stats`.
pub fn search(
    problem: &Problem<'_>,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> Result<SearchEnd, crate::problem::ProblemError> {
    search_with_scratch(
        problem,
        order,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search`] with a caller-held [`SearchScratch`]: the per-depth frame
/// arena survives across calls, so batch callers pay the DFS setup once.
pub fn search_with_scratch(
    problem: &Problem<'_>,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Result<SearchEnd, crate::problem::ProblemError> {
    let start = std::time::Instant::now();
    let filter = FilterMatrix::build(problem, deadline, stats)?;
    let end = search_prebuilt_with_scratch(problem, &filter, order, deadline, sink, stats, scratch);
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    Ok(end)
}

/// The second stage alone: order nodes and run the DFS over an already
/// constructed filter. Lets callers amortize one filter build across
/// several searches (different orders, sinks, or deadlines) and gives the
/// `abl_filter_layout` ablation a search-only measurement. `stats.elapsed`
/// covers only this call.
pub fn search_prebuilt(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> SearchEnd {
    search_prebuilt_with_scratch(
        problem,
        filter,
        order,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search_prebuilt`] with a caller-held [`SearchScratch`]. With both
/// the filter and the scratch reused, a repeated search allocates
/// nothing at all (see the `scratch_reuse` series of
/// `benches/abl_filter_layout.rs`).
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt_with_scratch(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> SearchEnd {
    let start = std::time::Instant::now();
    // Filter-phase size is reported even for prebuilt (and truncated)
    // runs, so timeout rows stay comparable across harness tables.
    stats.filter_cells = filter.cell_count() as u64;
    if filter.truncated() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        stats.cpu_time = stats.elapsed;
        return SearchEnd::Timeout;
    }
    // Phase boundary: an already-expired deadline must not be masked by
    // the strided poll counter carrying over from the build phase.
    if deadline.check_now() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        stats.cpu_time = stats.elapsed;
        return SearchEnd::Timeout;
    }
    let node_order = compute_order(problem.query, filter, order);
    let preds = predecessors(problem.query, &node_order);
    let end = run_dfs(
        problem,
        filter,
        &node_order,
        &preds,
        deadline,
        sink,
        stats,
        None,
        None,
        scratch,
    );
    stats.timed_out |= end == SearchEnd::Timeout;
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    end
}

/// Per-depth reusable DFS state: the candidate list for this level plus
/// the scratch bitsets [`fill_candidates`] intersects into. Owned by a
/// [`SearchScratch`], allocated on first use and reused for every
/// subtree visited at that depth — and, with a caller-held scratch, for
/// every subsequent search.
#[derive(Debug)]
pub(crate) struct Frame {
    candidates: Vec<NodeId>,
    next: usize,
    /// Intersection mask: ends up holding expression (2)'s result.
    mask: NodeBitSet,
    /// Staging mask for sparse cells (no bitset mirror): the cell's
    /// slice is splatted here, then ANDed into `mask` word-by-word.
    stage: NodeBitSet,
}

impl Frame {
    pub(crate) fn new(nr: usize) -> Frame {
        Frame {
            candidates: Vec::new(),
            next: 0,
            mask: NodeBitSet::new(nr),
            stage: NodeBitSet::new(nr),
        }
    }

    /// Re-size the masks for a new host capacity (scratch reuse across
    /// differently-sized problems). The candidate `Vec` keeps its
    /// capacity.
    pub(crate) fn resize_masks(&mut self, nr: usize) {
        self.mask = NodeBitSet::new(nr);
        self.stage = NodeBitSet::new(nr);
    }

    #[cfg(test)]
    pub(crate) fn mask_capacity(&self) -> usize {
        self.mask.capacity()
    }
}

/// The DFS core. `shuffle` randomizes candidate order at every level
/// (RWB); `root_override` restricts the root level to the given candidates
/// (parallel workers). All mutable traversal state lives in `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dfs(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    mut shuffle: Option<&mut StdRng>,
    root_override: Option<&[NodeId]>,
    scratch: &mut SearchScratch,
) -> SearchEnd {
    let nq = order.len();
    scratch.ensure(problem.nq(), problem.nr());
    let SearchScratch {
        frames,
        assign,
        used,
        ..
    } = scratch;
    let mut depth = 0usize;

    match root_override {
        Some(list) => {
            frames[0].candidates.clear();
            frames[0].candidates.extend_from_slice(list);
        }
        None => {
            fill_candidates(filter, order, preds, 0, assign, used, &mut frames[0]);
        }
    }
    frames[0].next = 0;
    if let Some(rng) = shuffle.as_deref_mut() {
        frames[0].candidates.shuffle(rng);
    }

    loop {
        if deadline.expired() {
            return SearchEnd::Timeout;
        }
        let frame = &mut frames[depth];
        if frame.next >= frame.candidates.len() {
            // Exhausted this level: backtrack.
            if depth == 0 {
                return SearchEnd::Exhausted;
            }
            depth -= 1;
            let vq = order[depth];
            let r = assign[vq.index()];
            used.remove(r);
            assign[vq.index()] = NodeId(u32::MAX);
            continue;
        }
        let r = frame.candidates[frame.next];
        frame.next += 1;
        let vq = order[depth];
        stats.nodes_visited += 1;

        if depth + 1 == nq {
            // Leaf: a complete feasible mapping.
            assign[vq.index()] = r;
            stats.solutions += 1;
            let mapping = Mapping::new(assign.clone());
            assign[vq.index()] = NodeId(u32::MAX);
            if sink.report(&mapping) == SinkControl::Stop {
                return SearchEnd::SinkStop;
            }
            continue;
        }

        // Descend.
        assign[vq.index()] = r;
        used.insert(r);
        let next_frame = &mut frames[depth + 1];
        if !fill_candidates(filter, order, preds, depth + 1, assign, used, next_frame) {
            stats.prunes += 1;
            used.remove(r);
            assign[vq.index()] = NodeId(u32::MAX);
            continue;
        }
        if let Some(rng) = shuffle.as_deref_mut() {
            next_frame.candidates.shuffle(rng);
        }
        next_frame.next = 0;
        depth += 1;
    }
}

/// Expression (1)/(2) into `frame.candidates`, via the frame's scratch
/// masks: no heap allocation, no hashing, no per-candidate searches.
/// Returns `false` when the candidate set is empty.
pub(crate) fn fill_candidates(
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
    depth: usize,
    assign: &[NodeId],
    used: &NodeBitSet,
    frame: &mut Frame,
) -> bool {
    let vi = order[depth];
    let plist = &preds[depth];
    frame.candidates.clear();
    let mask = &mut frame.mask;

    if plist.is_empty() {
        // Expression (1): base candidates minus used. This covers the root
        // node, isolated nodes, and the first node of later components.
        mask.clear_and_copy_from(filter.base(vi));
        mask.subtract(used);
        mask.collect_into(&mut frame.candidates);
        return !frame.candidates.is_empty();
    }

    // Expression (2): intersect one filter cell per predecessor edge,
    // minus used — one pass, one view fetch per predecessor. The first
    // cell seeds the mask (a sparse splat is bounded by CELL_DENSE_MIN
    // elements; anything larger carries a bitset mirror and word-copies),
    // the rest AND in word-by-word, bailing as soon as the mask empties.
    let cell_of = |p: &Pred| -> CellView<'_> {
        let rj = assign[p.node.index()];
        debug_assert_ne!(rj, NodeId(u32::MAX), "predecessor must be assigned");
        if p.forward {
            filter.fwd_view(p.node, rj, vi)
        } else {
            filter.rev_view(p.node, rj, vi)
        }
    };

    for (i, p) in plist.iter().enumerate() {
        let cell = cell_of(p);
        if cell.slice.is_empty() {
            return false;
        }
        if i == 0 {
            match cell.bits {
                Some(bits) => mask.clear_and_copy_from(bits),
                None => mask.clear_and_insert_all(cell.slice),
            }
            continue;
        }
        match cell.bits {
            Some(bits) => mask.intersect_with(bits),
            None => {
                frame.stage.clear_and_insert_all(cell.slice);
                mask.intersect_with(&frame.stage);
            }
        }
        if mask.is_empty() {
            return false;
        }
    }
    mask.subtract(used);
    mask.collect_into(&mut frame.candidates);
    !frame.candidates.is_empty()
}

/// Root-level candidates (expression (1) for `order[0]`), as a fresh
/// `Vec`: used by the parallel search to partition the root across
/// workers. Not on the hot path.
pub(crate) fn root_candidates(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    order: &[NodeId],
    preds: &[Vec<Pred>],
) -> Vec<NodeId> {
    let assign = vec![NodeId(u32::MAX); problem.nq()];
    let used = NodeBitSet::new(problem.nr());
    let mut frame = Frame::new(problem.nr());
    fill_candidates(filter, order, preds, 0, &assign, &used, &mut frame);
    frame.candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectAll, CollectUpTo};
    use netgraph::{Direction, Network};

    /// Host: 4-cycle with distinct delays; query: one edge with a window.
    fn cycle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for (i, d) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            let e = h.add_edge(ids[i], ids[(i + 1) % 4]);
            h.set_edge_attr(e, "d", *d);
        }
        h
    }

    fn run(q: &Network, h: &Network, c: &str) -> (Vec<Mapping>, SearchStats, SearchEnd) {
        let p = Problem::new(q, h, c).unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(
            &p,
            NodeOrder::AscendingCandidates,
            &mut dl,
            &mut sink,
            &mut stats,
        )
        .unwrap();
        (sink.solutions, stats, end)
    }

    #[test]
    fn single_edge_query_finds_both_orientations() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, stats, end) = run(&q, &h, "rEdge.d <= 20.0");
        // Edges d=10 (h0,h1) and d=20 (h1,h2), × 2 orientations = 4.
        assert_eq!(sols.len(), 4);
        assert_eq!(end, SearchEnd::Exhausted);
        assert_eq!(stats.solutions, 4);
    }

    #[test]
    fn triangle_query_in_triangle_host() {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..3).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..3 {
            h.add_edge(ids[i], ids[(i + 1) % 3]);
        }
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            q.add_edge(qs[i], qs[(i + 1) % 3]);
        }
        let (sols, _, _) = run(&q, &h, "true");
        // All 3! = 6 bijections are valid embeddings of K3 into K3.
        assert_eq!(sols.len(), 6);
        // All solutions distinct.
        let set: std::collections::HashSet<_> = sols.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn path_query_in_cycle_host() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let (sols, _, _) = run(&q, &h, "true");
        // Paths of length 2 in C4: centre can be any of 4 nodes, its two
        // neighbors ordered 2 ways = 8 embeddings.
        assert_eq!(sols.len(), 8);
        // Injectivity: ends never equal.
        for m in &sols {
            assert_ne!(m.get(a), m.get(c));
            assert_ne!(m.get(a), m.get(b));
        }
    }

    #[test]
    fn infeasible_query_returns_empty_exhausted() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, stats, end) = run(&q, &h, "rEdge.d > 1000.0");
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted); // definitive no
        assert!(!stats.timed_out);
    }

    #[test]
    fn clique_query_too_large_is_infeasible() {
        let h = cycle_host(); // C4 has no triangle
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                q.add_edge(qs[i], qs[j]);
            }
        }
        let (sols, _, end) = run(&q, &h, "true");
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted);
    }

    #[test]
    fn sink_stop_ends_search_early() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let _ = (a, b);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut sink = CollectUpTo::new(1);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sink.solutions.len(), 1);
    }

    #[test]
    fn zero_deadline_times_out() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::new(Some(std::time::Duration::ZERO));
        dl.check_now();
        let end = search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
    }

    #[test]
    fn directed_query_respects_orientation() {
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        h.add_edge(u, v);
        h.add_edge(v, w);
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (sols, _, _) = run(&q, &h, "true");
        // Directed edges: (u,v) and (v,w) only — no reversals.
        assert_eq!(sols.len(), 2);
        for m in &sols {
            assert!(h.has_edge(m.get(a), m.get(b)));
        }
    }

    #[test]
    fn directed_two_cycle_query() {
        // Query a⇄b needs a host 2-cycle.
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q.add_edge(b, a);
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        h.add_edge(u, v);
        h.add_edge(v, u);
        h.add_edge(v, w); // one-way, can't host the 2-cycle
        let (sols, _, _) = run(&q, &h, "true");
        assert_eq!(sols.len(), 2); // (u,v) and (v,u)
        for m in &sols {
            assert!(h.has_edge(m.get(a), m.get(b)));
            assert!(h.has_edge(m.get(b), m.get(a)));
        }
    }

    #[test]
    fn disconnected_query_components() {
        let h = cycle_host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c"); // isolated
        q.add_edge(a, b);
        let _ = c;
        let (sols, _, _) = run(&q, &h, "true");
        // Edge (a,b): 8 directed placements on C4's 4 edges; c takes any of
        // the 2 remaining host nodes: 16.
        assert_eq!(sols.len(), 16);
    }

    #[test]
    fn node_constraint_limits_solutions() {
        let mut h = cycle_host();
        for i in 0..4 {
            h.set_node_attr(NodeId(i), "cpu", if i % 2 == 0 { 8.0 } else { 1.0 });
        }
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        // Both endpoints need cpu ≥ 4, but C4 alternates 8,1,8,1: no edge
        // has two high-cpu endpoints.
        let (sols, _, _) = run(&q, &h, "rNode.cpu >= 4.0");
        assert!(sols.is_empty());
    }

    #[test]
    fn lemma1_order_visits_fewer_nodes_in_aggregate() {
        // Lemma 1 predicts a smaller permutation tree when nodes are
        // examined ascending by candidate count. On a single tiny instance
        // the connectivity tie-break can shift a node or two either way,
        // so validate the aggregate over several skewed instances (the
        // `abl-order` bench does the full-size version of this).
        let mut asc_total = 0u64;
        let mut desc_total = 0u64;
        for salt in 0..6u32 {
            let mut h = Network::new(Direction::Undirected);
            let ids: Vec<NodeId> = (0..9).map(|i| h.add_node(format!("h{i}"))).collect();
            for i in 0..9 {
                for j in (i + 1)..9 {
                    let e = h.add_edge(ids[i], ids[j]);
                    h.set_edge_attr(e, "d", ((i * 3 + j + salt as usize) % 6) as f64);
                }
            }
            let mut q = Network::new(Direction::Undirected);
            let hub = q.add_node("hub");
            for i in 0..3 {
                let leaf = q.add_node(format!("l{i}"));
                let e = q.add_edge(hub, leaf);
                q.set_edge_attr(e, "w", i as f64);
            }
            let p = Problem::new(&q, &h, "rEdge.d == vEdge.w").unwrap();
            let run_with = |ord: NodeOrder| -> u64 {
                let mut sink = CollectAll::default();
                let mut stats = SearchStats::default();
                let mut dl = Deadline::unlimited();
                search(&p, ord, &mut dl, &mut sink, &mut stats).unwrap();
                stats.nodes_visited
            };
            asc_total += run_with(NodeOrder::AscendingCandidates);
            desc_total += run_with(NodeOrder::DescendingCandidates);
        }
        assert!(
            asc_total <= desc_total,
            "Lemma-1 order visited {asc_total} nodes, reverse visited {desc_total}"
        );
    }
}

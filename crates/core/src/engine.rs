//! The high-level embedding API: pick an algorithm, a search mode and a
//! timeout, get back mappings + outcome + statistics.
//!
//! [`Engine`] is the in-process form of the NETEMBED mapping service
//! (component 2 of Figure 1); the `service` crate wraps it with model
//! management, reservations and negotiation.

use crate::deadline::Deadline;
use crate::ecf;
use crate::filter::FilterMatrix;
use crate::hierarchy::{HierarchySpec, Refinement, SubstrateHierarchy};
use crate::lns::{self, LnsConfig};
use crate::mapping::Mapping;
use crate::order::NodeOrder;
use crate::outcome::Outcome;
use crate::parallel::{self, StealPolicy};
use crate::problem::{Problem, ProblemError};
use crate::rwb;
use crate::scratch::EmbedScratch;
use crate::sink::{CollectAll, CollectUpTo};
use crate::stats::{BuildCharge, SearchStats};
use netgraph::Network;
use std::time::Duration;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Exhaustive search with constraint filtering (§V-A).
    Ecf,
    /// Random walk with backtracking (§V-B).
    Rwb,
    /// Lazy neighborhood search (§V-C).
    Lns,
    /// ECF with the root level parallelized over the given thread count.
    ParallelEcf {
        /// Worker threads.
        threads: usize,
    },
}

/// How many embeddings to look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Enumerate every feasible embedding.
    All,
    /// Stop at the first feasible embedding.
    First,
    /// Stop after `k` feasible embeddings.
    UpTo(usize),
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Search mode.
    pub mode: SearchMode,
    /// Wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Query-node ordering (ECF/RWB only).
    pub order: NodeOrder,
    /// RNG seed (RWB only).
    pub seed: u64,
    /// LNS heuristics (LNS only).
    pub lns: LnsConfig,
    /// Work-stealing split policy (ParallelEcf only): the D/K knobs of
    /// depth-bounded subtree re-splitting. The default enables stealing;
    /// [`StealPolicy::disabled`] recovers the static root partition.
    pub steal: StealPolicy,
    /// When set, the filter-based algorithms (ECF/RWB/ParallelEcf) run
    /// hierarchically: the host is coarsened into a
    /// [`SubstrateHierarchy`], a top-down refinement prunes infeasible
    /// super-node subtrees with sound abstract constraint verdicts, and
    /// the exact filter is built only inside the surviving subtrees
    /// ([`FilterMatrix::build_restricted`]). Solution sets are identical
    /// to the flat run; on large substrates only a fraction of the
    /// `O(|VQ|·|VR|)` matrix is expanded. LNS ignores the knob (it
    /// keeps no filter state to restrict). Engine-level runs rebuild
    /// the hierarchy per call; the service layer caches it per
    /// `(host, epoch)` and routes through [`Engine::run_hier`].
    pub hierarchy: Option<HierarchySpec>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            algorithm: Algorithm::Ecf,
            mode: SearchMode::All,
            timeout: None,
            order: NodeOrder::default(),
            seed: 0,
            lns: LnsConfig::default(),
            steal: StealPolicy::default(),
            hierarchy: None,
        }
    }
}

/// The result of one embedding run.
#[derive(Debug, Clone)]
pub struct EmbedResult {
    /// The embeddings found (order is algorithm-dependent).
    pub mappings: Vec<Mapping>,
    /// §VII-E classification of the result.
    pub outcome: Outcome,
    /// Search statistics (timings, visited nodes, evaluations).
    pub stats: SearchStats,
}

/// An embedding engine bound to one hosting network.
pub struct Engine<'a> {
    host: &'a Network,
}

impl<'a> Engine<'a> {
    /// Create an engine for `host`.
    pub fn new(host: &'a Network) -> Self {
        Engine { host }
    }

    /// The hosting network.
    pub fn host(&self) -> &Network {
        self.host
    }

    /// Embed `query` under `constraint` (§VI-B source text).
    pub fn embed(
        &self,
        query: &Network,
        constraint: &str,
        options: &Options,
    ) -> Result<EmbedResult, ProblemError> {
        let problem = Problem::new(query, self.host, constraint)?;
        Self::run(&problem, options)
    }

    /// [`Engine::embed`] with a caller-held [`EmbedScratch`]: repeated
    /// embeds reuse the DFS arenas instead of re-allocating them.
    pub fn embed_with_scratch(
        &self,
        query: &Network,
        constraint: &str,
        options: &Options,
        scratch: &mut EmbedScratch,
    ) -> Result<EmbedResult, ProblemError> {
        let problem = Problem::new(query, self.host, constraint)?;
        Self::run_with_scratch(&problem, options, scratch)
    }

    /// Embed a pre-built problem (lets callers supply separate edge and
    /// node expressions via [`Problem::with_exprs`]).
    pub fn run(problem: &Problem<'_>, options: &Options) -> Result<EmbedResult, ProblemError> {
        Self::run_with_scratch(problem, options, &mut EmbedScratch::new())
    }

    /// [`Engine::run`] with a caller-held [`EmbedScratch`]. The filter
    /// build runs under this call (parallelized for
    /// [`Algorithm::ParallelEcf`]); batch callers that also want to
    /// amortize the *filter* across runs use [`Engine::run_prebuilt`].
    pub fn run_with_scratch(
        problem: &Problem<'_>,
        options: &Options,
        scratch: &mut EmbedScratch,
    ) -> Result<EmbedResult, ProblemError> {
        let mut deadline = Deadline::new(options.timeout);
        let mut stats = SearchStats::default();
        let start = std::time::Instant::now();

        let (mappings, end) = match options.algorithm {
            Algorithm::Lns => {
                Self::dispatch_lns(problem, options, &mut deadline, &mut stats, scratch)?
            }
            _ if options.hierarchy.is_some() => {
                // Hierarchical path: coarsen, refine, then build the
                // exact filter only inside the surviving subtrees. The
                // construction happens under this run's deadline clock,
                // so a budgeted caller pays for it; the service layer
                // amortizes it through its `HierarchyCache`.
                let spec = options.hierarchy.expect("guard checked");
                let hier = SubstrateHierarchy::build(problem.host, &spec);
                Self::dispatch_hier(problem, &hier, options, &mut deadline, &mut stats, scratch)?
            }
            Algorithm::Ecf | Algorithm::Rwb => {
                let filter = FilterMatrix::build(problem, &mut deadline, &mut stats)?;
                Self::dispatch_prebuilt(
                    problem,
                    &filter,
                    options,
                    &mut deadline,
                    &mut stats,
                    scratch,
                )
            }
            Algorithm::ParallelEcf { threads } => {
                // Build-charging contract (see `stats::BuildCharge`):
                // threads the build fan-out spawns are new, not warm.
                let mut charge = BuildCharge::begin(scratch.parallel.pool().spawned_total());
                let filter = FilterMatrix::build_par_pooled(
                    problem,
                    threads,
                    &mut deadline,
                    &mut stats,
                    scratch.parallel.pool_mut(),
                )?;
                charge.finish_build(scratch.parallel.pool().spawned_total());
                let out = Self::dispatch_prebuilt(
                    problem,
                    &filter,
                    options,
                    &mut deadline,
                    &mut stats,
                    scratch,
                );
                charge.settle_pool_reuse(&mut stats);
                out
            }
        };
        Ok(Self::finalize(
            mappings,
            end,
            stats,
            start,
            options.algorithm,
        ))
    }

    /// Run over an already constructed filter (built with
    /// [`FilterMatrix::build`]/[`FilterMatrix::build_par`] for the *same*
    /// problem). This is the batch primitive: one filter build plus one
    /// scratch serve any number of runs — different modes, orders, seeds
    /// or thread counts ([`Algorithm::Lns`] ignores the filter). The
    /// returned stats cover only this run; build-phase counters live with
    /// whoever built the filter, except `filter_cells`, which is
    /// re-reported per run so result tables stay comparable.
    pub fn run_prebuilt(
        problem: &Problem<'_>,
        filter: &FilterMatrix,
        options: &Options,
        scratch: &mut EmbedScratch,
    ) -> Result<EmbedResult, ProblemError> {
        let mut deadline = Deadline::new(options.timeout);
        let mut stats = SearchStats::default();
        let start = std::time::Instant::now();
        let (mappings, end) = match options.algorithm {
            Algorithm::Lns => {
                Self::dispatch_lns(problem, options, &mut deadline, &mut stats, scratch)?
            }
            _ => Self::dispatch_prebuilt(
                problem,
                filter,
                options,
                &mut deadline,
                &mut stats,
                scratch,
            ),
        };
        Ok(Self::finalize(
            mappings,
            end,
            stats,
            start,
            options.algorithm,
        ))
    }

    /// Run hierarchically over an already coarsened substrate (built
    /// with [`SubstrateHierarchy::build`] for this problem's host) —
    /// the batch primitive of the hierarchical path, mirroring
    /// [`Engine::run_prebuilt`]: one coarsening serves any number of
    /// queries against the same host snapshot. Refinement, the
    /// restricted filter build and the exact search all run under this
    /// call's deadline. A sound coarse-level infeasibility verdict
    /// returns [`Outcome::Complete`] with no mappings — definitively
    /// infeasible without touching the full filter matrix.
    pub fn run_hier(
        problem: &Problem<'_>,
        hier: &SubstrateHierarchy,
        options: &Options,
        scratch: &mut EmbedScratch,
    ) -> Result<EmbedResult, ProblemError> {
        let mut deadline = Deadline::new(options.timeout);
        let mut stats = SearchStats::default();
        let start = std::time::Instant::now();
        let (mappings, end) = match options.algorithm {
            Algorithm::Lns => {
                Self::dispatch_lns(problem, options, &mut deadline, &mut stats, scratch)?
            }
            _ => Self::dispatch_hier(problem, hier, options, &mut deadline, &mut stats, scratch)?,
        };
        Ok(Self::finalize(
            mappings,
            end,
            stats,
            start,
            options.algorithm,
        ))
    }

    /// Refinement + restricted filter build + exact search for the
    /// filter-based algorithms.
    fn dispatch_hier(
        problem: &Problem<'_>,
        hier: &SubstrateHierarchy,
        options: &Options,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        scratch: &mut EmbedScratch,
    ) -> Result<(Vec<Mapping>, ecf::SearchEnd), ProblemError> {
        match hier.refine(problem, deadline, stats) {
            Refinement::TimedOut => {
                stats.timed_out = true;
                Ok((Vec::new(), ecf::SearchEnd::Timeout))
            }
            // The refinement's empty-domain prune is sound: no
            // concretization of a pruned super-node holds a solution,
            // so an empty result here is exhaustive, not a give-up.
            Refinement::Infeasible => Ok((Vec::new(), ecf::SearchEnd::Exhausted)),
            Refinement::Restricted(allowed) => match options.algorithm {
                Algorithm::ParallelEcf { threads } => {
                    let mut charge = BuildCharge::begin(scratch.parallel.pool().spawned_total());
                    let filter = FilterMatrix::build_restricted_par_pooled(
                        problem,
                        &allowed,
                        threads,
                        deadline,
                        stats,
                        scratch.parallel.pool_mut(),
                    )?;
                    charge.finish_build(scratch.parallel.pool().spawned_total());
                    let out = Self::dispatch_prebuilt(
                        problem, &filter, options, deadline, stats, scratch,
                    );
                    charge.settle_pool_reuse(stats);
                    Ok(out)
                }
                _ => {
                    let filter =
                        FilterMatrix::build_restricted(problem, &allowed, deadline, stats)?;
                    Ok(Self::dispatch_prebuilt(
                        problem, &filter, options, deadline, stats, scratch,
                    ))
                }
            },
        }
    }

    /// Shared run finalization: authoritative wall clock, the
    /// sequential-run `cpu_time = elapsed` convention (parallel runs keep
    /// the worker sum their merge produced), and outcome classification.
    fn finalize(
        mappings: Vec<Mapping>,
        end: ecf::SearchEnd,
        mut stats: SearchStats,
        start: std::time::Instant,
        algorithm: Algorithm,
    ) -> EmbedResult {
        stats.elapsed = start.elapsed();
        if !matches!(algorithm, Algorithm::ParallelEcf { .. }) {
            stats.cpu_time = stats.elapsed;
        }
        let outcome = Outcome::classify(end, mappings.clone());
        EmbedResult {
            mappings,
            outcome,
            stats,
        }
    }

    /// Second-stage dispatch for the filter-based algorithms.
    fn dispatch_prebuilt(
        problem: &Problem<'_>,
        filter: &FilterMatrix,
        options: &Options,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        scratch: &mut EmbedScratch,
    ) -> (Vec<Mapping>, ecf::SearchEnd) {
        match options.algorithm {
            Algorithm::Ecf => match options.mode {
                SearchMode::All => {
                    let mut sink = CollectAll::default();
                    let end = ecf::search_prebuilt_with_scratch(
                        problem,
                        filter,
                        options.order,
                        deadline,
                        &mut sink,
                        stats,
                        &mut scratch.search,
                    );
                    (sink.solutions, end)
                }
                SearchMode::First | SearchMode::UpTo(_) => {
                    let k = match options.mode {
                        SearchMode::UpTo(k) => k,
                        _ => 1,
                    };
                    let mut sink = CollectUpTo::new(k);
                    let end = ecf::search_prebuilt_with_scratch(
                        problem,
                        filter,
                        options.order,
                        deadline,
                        &mut sink,
                        stats,
                        &mut scratch.search,
                    );
                    (sink.solutions, end)
                }
            },
            Algorithm::Rwb => {
                let limit = match options.mode {
                    SearchMode::All => usize::MAX,
                    SearchMode::First => 1,
                    SearchMode::UpTo(k) => k,
                };
                let mut sink = CollectUpTo::new(limit);
                let end = rwb::search_prebuilt(
                    problem,
                    filter,
                    options.seed,
                    options.order,
                    deadline,
                    &mut sink,
                    stats,
                    &mut scratch.search,
                );
                (sink.solutions, end)
            }
            Algorithm::ParallelEcf { threads } => {
                let limit = match options.mode {
                    SearchMode::All => None,
                    SearchMode::First => Some(1),
                    SearchMode::UpTo(k) => Some(k),
                };
                parallel::search_prebuilt_with_policy(
                    problem,
                    filter,
                    threads,
                    limit,
                    options.order,
                    deadline,
                    stats,
                    &mut scratch.parallel,
                    options.steal,
                )
            }
            Algorithm::Lns => unreachable!("LNS is dispatched without a filter"),
        }
    }

    /// LNS dispatch (no filter stage).
    fn dispatch_lns(
        problem: &Problem<'_>,
        options: &Options,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        scratch: &mut EmbedScratch,
    ) -> Result<(Vec<Mapping>, ecf::SearchEnd), ProblemError> {
        Ok(match options.mode {
            SearchMode::All => {
                let mut sink = CollectAll::default();
                let end = lns::search_with_scratch(
                    problem,
                    &options.lns,
                    deadline,
                    &mut sink,
                    stats,
                    &mut scratch.search,
                )?;
                (sink.solutions, end)
            }
            SearchMode::First | SearchMode::UpTo(_) => {
                let k = match options.mode {
                    SearchMode::UpTo(k) => k,
                    _ => 1,
                };
                let mut sink = CollectUpTo::new(k);
                let end = lns::search_with_scratch(
                    problem,
                    &options.lns,
                    deadline,
                    &mut sink,
                    stats,
                    &mut scratch.search,
                )?;
                (sink.solutions, end)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, NodeId};

    fn host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..5).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i + j) * 10) as f64);
            }
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q
    }

    #[test]
    fn all_algorithms_agree_on_feasibility_and_count() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let constraint = "rEdge.d <= 30.0";

        let ecf = engine.embed(&q, constraint, &Options::default()).unwrap();
        let lns = engine
            .embed(
                &q,
                constraint,
                &Options {
                    algorithm: Algorithm::Lns,
                    ..Default::default()
                },
            )
            .unwrap();
        let par = engine
            .embed(
                &q,
                constraint,
                &Options {
                    algorithm: Algorithm::ParallelEcf { threads: 3 },
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(ecf.mappings.len(), lns.mappings.len());
        assert_eq!(ecf.mappings.len(), par.mappings.len());
        assert!(matches!(ecf.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn first_mode_returns_one() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        for algorithm in [
            Algorithm::Ecf,
            Algorithm::Rwb,
            Algorithm::Lns,
            Algorithm::ParallelEcf { threads: 2 },
        ] {
            let r = engine
                .embed(
                    &q,
                    "true",
                    &Options {
                        algorithm,
                        mode: SearchMode::First,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(r.mappings.len(), 1, "algorithm {algorithm:?}");
            assert!(matches!(r.outcome, Outcome::Partial(_)));
        }
    }

    #[test]
    fn up_to_mode_caps_solutions() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(
                &q,
                "true",
                &Options {
                    mode: SearchMode::UpTo(3),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.mappings.len(), 3);
    }

    #[test]
    fn cold_parallel_run_reports_zero_pool_reuse() {
        // Regression: a multi-edge query makes the filter build fan out
        // first, spawning the pool threads *before* the search stage —
        // those threads are new, not warm, and must not be counted as
        // reuse on the very first run.
        let h = host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        q.add_edge(a, c);
        let engine = Engine::new(&h);
        let opts = Options {
            algorithm: Algorithm::ParallelEcf { threads: 4 },
            ..Options::default()
        };
        let mut scratch = EmbedScratch::new();
        let cold = engine
            .embed_with_scratch(&q, "true", &opts, &mut scratch)
            .unwrap();
        assert_eq!(cold.stats.pool_reuse, 0, "cold run must report no reuse");
        let warm = engine
            .embed_with_scratch(&q, "true", &opts, &mut scratch)
            .unwrap();
        assert!(warm.stats.pool_reuse > 0, "second run must reuse the pool");
        assert_eq!(cold.mappings.len(), warm.mappings.len());
    }

    #[test]
    fn partially_warm_pool_keeps_credit_for_warm_threads() {
        // A 2-thread run leaves 2 parked threads; a following 4-thread
        // run on a 2-edge query builds with only 2 chunks (spawns
        // nothing) and then grows the pool in the *search* stage. The
        // two genuinely warm threads must stay credited — only
        // build-phase spawns are deducted, never search-stage ones.
        let h = host();
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let engine = Engine::new(&h);
        let mut scratch = EmbedScratch::new();
        engine
            .embed_with_scratch(
                &q,
                "true",
                &Options {
                    algorithm: Algorithm::ParallelEcf { threads: 2 },
                    ..Options::default()
                },
                &mut scratch,
            )
            .unwrap();
        assert_eq!(scratch.parallel.pool().thread_count(), 2);
        let grown = engine
            .embed_with_scratch(
                &q,
                "true",
                &Options {
                    algorithm: Algorithm::ParallelEcf { threads: 4 },
                    ..Options::default()
                },
                &mut scratch,
            )
            .unwrap();
        assert_eq!(
            grown.stats.pool_reuse, 2,
            "the two pre-existing threads served this run"
        );
        assert_eq!(scratch.parallel.pool().thread_count(), 4);
    }

    #[test]
    fn infeasible_is_complete_empty() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(&q, "rEdge.d > 1e9", &Options::default())
            .unwrap();
        assert!(r.outcome.definitively_infeasible());
        assert!(r.mappings.is_empty());
    }

    #[test]
    fn parse_error_propagates() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        assert!(matches!(
            engine.embed(&q, "1 +", &Options::default()),
            Err(ProblemError::Parse(_))
        ));
    }

    #[test]
    fn timeout_classifies_inconclusive_or_partial() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(
                &q,
                "true",
                &Options {
                    timeout: Some(Duration::ZERO),
                    ..Default::default()
                },
            )
            .unwrap();
        // With a zero budget the filter build aborts immediately.
        assert!(matches!(r.outcome, Outcome::Inconclusive));
        assert!(r.stats.timed_out);
    }
}

//! The high-level embedding API: pick an algorithm, a search mode and a
//! timeout, get back mappings + outcome + statistics.
//!
//! [`Engine`] is the in-process form of the NETEMBED mapping service
//! (component 2 of Figure 1); the `service` crate wraps it with model
//! management, reservations and negotiation.

use crate::deadline::Deadline;
use crate::ecf;
use crate::lns::{self, LnsConfig};
use crate::mapping::Mapping;
use crate::order::NodeOrder;
use crate::outcome::Outcome;
use crate::parallel;
use crate::problem::{Problem, ProblemError};
use crate::rwb;
use crate::sink::{CollectAll, CollectUpTo};
use crate::stats::SearchStats;
use netgraph::Network;
use std::time::Duration;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Exhaustive search with constraint filtering (§V-A).
    Ecf,
    /// Random walk with backtracking (§V-B).
    Rwb,
    /// Lazy neighborhood search (§V-C).
    Lns,
    /// ECF with the root level parallelized over the given thread count.
    ParallelEcf {
        /// Worker threads.
        threads: usize,
    },
}

/// How many embeddings to look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Enumerate every feasible embedding.
    All,
    /// Stop at the first feasible embedding.
    First,
    /// Stop after `k` feasible embeddings.
    UpTo(usize),
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Search mode.
    pub mode: SearchMode,
    /// Wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Query-node ordering (ECF/RWB only).
    pub order: NodeOrder,
    /// RNG seed (RWB only).
    pub seed: u64,
    /// LNS heuristics (LNS only).
    pub lns: LnsConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            algorithm: Algorithm::Ecf,
            mode: SearchMode::All,
            timeout: None,
            order: NodeOrder::default(),
            seed: 0,
            lns: LnsConfig::default(),
        }
    }
}

/// The result of one embedding run.
#[derive(Debug, Clone)]
pub struct EmbedResult {
    /// The embeddings found (order is algorithm-dependent).
    pub mappings: Vec<Mapping>,
    /// §VII-E classification of the result.
    pub outcome: Outcome,
    /// Search statistics (timings, visited nodes, evaluations).
    pub stats: SearchStats,
}

/// An embedding engine bound to one hosting network.
pub struct Engine<'a> {
    host: &'a Network,
}

impl<'a> Engine<'a> {
    /// Create an engine for `host`.
    pub fn new(host: &'a Network) -> Self {
        Engine { host }
    }

    /// The hosting network.
    pub fn host(&self) -> &Network {
        self.host
    }

    /// Embed `query` under `constraint` (§VI-B source text).
    pub fn embed(
        &self,
        query: &Network,
        constraint: &str,
        options: &Options,
    ) -> Result<EmbedResult, ProblemError> {
        let problem = Problem::new(query, self.host, constraint)?;
        Self::run(&problem, options)
    }

    /// Embed a pre-built problem (lets callers supply separate edge and
    /// node expressions via [`Problem::with_exprs`]).
    pub fn run(problem: &Problem<'_>, options: &Options) -> Result<EmbedResult, ProblemError> {
        let mut deadline = Deadline::new(options.timeout);
        let mut stats = SearchStats::default();

        let (mappings, end) = match options.algorithm {
            Algorithm::Ecf => match options.mode {
                SearchMode::All => {
                    let mut sink = CollectAll::default();
                    let end =
                        ecf::search(problem, options.order, &mut deadline, &mut sink, &mut stats)?;
                    (sink.solutions, end)
                }
                SearchMode::First | SearchMode::UpTo(_) => {
                    let k = match options.mode {
                        SearchMode::UpTo(k) => k,
                        _ => 1,
                    };
                    let mut sink = CollectUpTo::new(k);
                    let end =
                        ecf::search(problem, options.order, &mut deadline, &mut sink, &mut stats)?;
                    (sink.solutions, end)
                }
            },
            Algorithm::Rwb => {
                let limit = match options.mode {
                    SearchMode::All => usize::MAX,
                    SearchMode::First => 1,
                    SearchMode::UpTo(k) => k,
                };
                rwb::search(
                    problem,
                    options.seed,
                    limit,
                    options.order,
                    &mut deadline,
                    &mut stats,
                )?
            }
            Algorithm::Lns => match options.mode {
                SearchMode::All => {
                    let mut sink = CollectAll::default();
                    let end =
                        lns::search(problem, &options.lns, &mut deadline, &mut sink, &mut stats)?;
                    (sink.solutions, end)
                }
                SearchMode::First | SearchMode::UpTo(_) => {
                    let k = match options.mode {
                        SearchMode::UpTo(k) => k,
                        _ => 1,
                    };
                    let mut sink = CollectUpTo::new(k);
                    let end =
                        lns::search(problem, &options.lns, &mut deadline, &mut sink, &mut stats)?;
                    (sink.solutions, end)
                }
            },
            Algorithm::ParallelEcf { threads } => {
                let limit = match options.mode {
                    SearchMode::All => None,
                    SearchMode::First => Some(1),
                    SearchMode::UpTo(k) => Some(k),
                };
                parallel::search(
                    problem,
                    threads,
                    limit,
                    options.order,
                    &mut deadline,
                    &mut stats,
                )?
            }
        };
        let outcome = Outcome::classify(end, mappings.clone());
        Ok(EmbedResult {
            mappings,
            outcome,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, NodeId};

    fn host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..5).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i + j) * 10) as f64);
            }
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q
    }

    #[test]
    fn all_algorithms_agree_on_feasibility_and_count() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let constraint = "rEdge.d <= 30.0";

        let ecf = engine.embed(&q, constraint, &Options::default()).unwrap();
        let lns = engine
            .embed(
                &q,
                constraint,
                &Options {
                    algorithm: Algorithm::Lns,
                    ..Default::default()
                },
            )
            .unwrap();
        let par = engine
            .embed(
                &q,
                constraint,
                &Options {
                    algorithm: Algorithm::ParallelEcf { threads: 3 },
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(ecf.mappings.len(), lns.mappings.len());
        assert_eq!(ecf.mappings.len(), par.mappings.len());
        assert!(matches!(ecf.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn first_mode_returns_one() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        for algorithm in [
            Algorithm::Ecf,
            Algorithm::Rwb,
            Algorithm::Lns,
            Algorithm::ParallelEcf { threads: 2 },
        ] {
            let r = engine
                .embed(
                    &q,
                    "true",
                    &Options {
                        algorithm,
                        mode: SearchMode::First,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(r.mappings.len(), 1, "algorithm {algorithm:?}");
            assert!(matches!(r.outcome, Outcome::Partial(_)));
        }
    }

    #[test]
    fn up_to_mode_caps_solutions() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(
                &q,
                "true",
                &Options {
                    mode: SearchMode::UpTo(3),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.mappings.len(), 3);
    }

    #[test]
    fn infeasible_is_complete_empty() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(&q, "rEdge.d > 1e9", &Options::default())
            .unwrap();
        assert!(r.outcome.definitively_infeasible());
        assert!(r.mappings.is_empty());
    }

    #[test]
    fn parse_error_propagates() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        assert!(matches!(
            engine.embed(&q, "1 +", &Options::default()),
            Err(ProblemError::Parse(_))
        ));
    }

    #[test]
    fn timeout_classifies_inconclusive_or_partial() {
        let h = host();
        let q = edge_query();
        let engine = Engine::new(&h);
        let r = engine
            .embed(
                &q,
                "true",
                &Options {
                    timeout: Some(Duration::ZERO),
                    ..Default::default()
                },
            )
            .unwrap();
        // With a zero budget the filter build aborts immediately.
        assert!(matches!(r.outcome, Outcome::Inconclusive));
        assert!(r.stats.timed_out);
    }
}

//! The sparse 3-D filter matrix of §V-A.
//!
//! During ECF/RWB's first stage the constraint expression is applied to
//! every (query edge, host edge) pair. Each match `(q1 → r1, q2 → r2)`
//! populates two cells:
//!
//! ```text
//! F[(q1, r1, q2)] ← r2        F[(q2, r2, q1)] ← r1
//! ```
//!
//! so that during the second stage, the candidates for the next query node
//! `vi` given its already-mapped neighbors `vj → rj` are the intersection
//! of the cells `F[(vj, rj, vi)]` minus the already-used host nodes —
//! the paper's expression (2).
//!
//! For directed graphs only the matching orientation is recorded
//! (footnote 3): the forward map covers query edges `vj → vi` and a reverse
//! map covers `vi → vj`, and the search intersects whichever apply. This
//! replaces the paper's negative filter `F̄` with an exact equivalent: both
//! encode "which reverse-direction candidates are (in)admissible", and a
//! positive encoding needs no subtraction pass.

use crate::deadline::Deadline;
use crate::problem::{Problem, ProblemError};
use crate::stats::SearchStats;
use netgraph::{NodeBitSet, NodeId};
use rustc_hash::FxHashMap;

/// Key of one filter cell: `(v, r, v′)` with ids packed as `u32`.
type CellKey = (u32, u32, u32);

/// The constructed filter state for one problem.
pub struct FilterMatrix {
    /// `fwd[(vj, rj, vi)]`: candidates for `vi` via query edge `vj → vi`
    /// (for undirected problems this holds both orientations).
    fwd: FxHashMap<CellKey, Vec<NodeId>>,
    /// `rev[(vj, rj, vi)]`: candidates for `vi` via query edge `vi → vj`
    /// (directed problems only).
    rev: FxHashMap<CellKey, Vec<NodeId>>,
    /// Per-query-node base candidate set (expression (1) of the paper):
    /// every host node that appears in at least one edge match per incident
    /// edge, or that passes the node constraint for edge-less query nodes.
    base: Vec<NodeBitSet>,
    /// `base[v].len()`, precomputed for the Lemma-1 ordering.
    counts: Vec<usize>,
    /// Whether construction was cut short by the deadline. A truncated
    /// filter must not be searched (results would be incomplete).
    truncated: bool,
}

impl FilterMatrix {
    /// First-stage filter construction. Evaluates the constraint for every
    /// (query edge, host edge) pair, polling `deadline`; on expiry returns
    /// a matrix flagged [`FilterMatrix::truncated`].
    ///
    /// Counter updates land in `stats` (`constraint_evals`,
    /// `filter_cells`).
    pub fn build(
        problem: &Problem<'_>,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Result<FilterMatrix, ProblemError> {
        let nq = problem.nq();
        let nr = problem.nr();
        let undirected = problem.query.is_undirected();

        let mut fwd: FxHashMap<CellKey, Vec<NodeId>> = FxHashMap::default();
        let mut rev: FxHashMap<CellKey, Vec<NodeId>> = FxHashMap::default();

        // Node-admissibility pass: which (v, r) pairs can possibly map.
        // Two sound prunes apply before any constraint evaluation:
        // degree (every query edge maps to a distinct host edge, so the
        // host node needs at least the query node's degree — in/out
        // separately for directed graphs) and then the node constraint.
        let mut node_pass: Vec<NodeBitSet> = Vec::with_capacity(nq);
        for v in problem.query.node_ids() {
            let mut set = NodeBitSet::new(nr);
            let (v_out, v_in) = (
                problem.query.neighbors(v).len(),
                problem.query.in_neighbors(v).len(),
            );
            for r in problem.host.node_ids() {
                if problem.host.neighbors(r).len() < v_out
                    || problem.host.in_neighbors(r).len() < v_in
                {
                    continue;
                }
                if problem.has_node_expr() {
                    stats.constraint_evals += 1;
                    if !problem.node_ok(v, r)? {
                        continue;
                    }
                }
                set.insert(r);
            }
            node_pass.push(set);
        }

        let mut base: Vec<NodeBitSet> = (0..nq).map(|_| NodeBitSet::new(nr)).collect();
        let mut truncated = false;

        'outer: for qe in problem.query.edge_refs() {
            let (a, b) = (qe.src, qe.dst);
            for he in problem.host.edge_refs() {
                if deadline.expired() {
                    truncated = true;
                    break 'outer;
                }
                let (u, v) = (he.src, he.dst);
                // Orientation 1: a→u, b→v.
                if node_pass[a.index()].contains(u) && node_pass[b.index()].contains(v) {
                    stats.constraint_evals += 1;
                    if problem.edge_ok(qe.id, a, b, he.id, u, v)? {
                        push_cell(&mut fwd, (a.0, u.0, b.0), v);
                        if undirected {
                            push_cell(&mut fwd, (b.0, v.0, a.0), u);
                        } else {
                            push_cell(&mut rev, (b.0, v.0, a.0), u);
                        }
                        base[a.index()].insert(u);
                        base[b.index()].insert(v);
                    }
                }
                // Orientation 2 (undirected hosts only): a→v, b→u.
                if undirected
                    && node_pass[a.index()].contains(v)
                    && node_pass[b.index()].contains(u)
                {
                    stats.constraint_evals += 1;
                    if problem.edge_ok(qe.id, a, b, he.id, v, u)? {
                        push_cell(&mut fwd, (a.0, v.0, b.0), u);
                        push_cell(&mut fwd, (b.0, u.0, a.0), v);
                        base[a.index()].insert(v);
                        base[b.index()].insert(u);
                    }
                }
            }
        }

        // Edge-less query nodes (degree 0): their base set is the node-
        // admissible set — topology imposes nothing.
        for v in problem.query.node_ids() {
            if problem.query.total_degree(v) == 0 {
                base[v.index()] = node_pass[v.index()].clone();
            }
        }

        // Sort every cell so the search can use binary-search membership
        // tests, and deduplicate (a host edge scanned in two orientations
        // cannot produce duplicates, but directed multi-edges could).
        for cell in fwd.values_mut().chain(rev.values_mut()) {
            cell.sort_unstable();
            cell.dedup();
        }

        let counts: Vec<usize> = base.iter().map(|s| s.len()).collect();
        stats.filter_cells = (fwd.len() + rev.len()) as u64;
        Ok(FilterMatrix {
            fwd,
            rev,
            base,
            counts,
            truncated,
        })
    }

    /// True when construction hit the deadline; search must not run.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Candidate count for query node `v` (the Lemma-1 sort key).
    #[inline]
    pub fn candidate_count(&self, v: NodeId) -> usize {
        self.counts[v.index()]
    }

    /// Base candidate set for query node `v` (expression (1)).
    #[inline]
    pub fn base(&self, v: NodeId) -> &NodeBitSet {
        &self.base[v.index()]
    }

    /// Cell `F[(vj, rj, vi)]` for query edge `vj → vi` (or the undirected
    /// edge `{vj, vi}`): candidates for `vi`. Empty slice when absent.
    #[inline]
    pub fn fwd_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
        self.fwd
            .get(&(vj.0, rj.0, vi.0))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Reverse cell for query edge `vi → vj` in directed problems:
    /// candidates for `vi` given `vj → rj`.
    #[inline]
    pub fn rev_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
        self.rev
            .get(&(vj.0, rj.0, vi.0))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of materialized cells (space metric for §V-C).
    pub fn cell_count(&self) -> usize {
        self.fwd.len() + self.rev.len()
    }

    /// Total number of candidate entries across cells.
    pub fn entry_count(&self) -> usize {
        self.fwd.values().chain(self.rev.values()).map(Vec::len).sum()
    }
}

#[inline]
fn push_cell(map: &mut FxHashMap<CellKey, Vec<NodeId>>, key: CellKey, value: NodeId) {
    map.entry(key).or_default().push(value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, Network};

    /// Host: path u - v - w with delays 5, 50; query: single edge.
    fn fixture() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Undirected);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        let e1 = h.add_edge(u, v);
        h.set_edge_attr(e1, "d", 5.0);
        let e2 = h.add_edge(v, w);
        h.set_edge_attr(e2, "d", 50.0);
        (q, h)
    }

    fn build(q: &Network, h: &Network, c: &str) -> (FilterMatrix, SearchStats) {
        let p = Problem::new(q, h, c).unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        (f, s)
    }

    #[test]
    fn both_orientations_recorded_for_undirected() {
        let (q, h) = fixture();
        let (f, stats) = build(&q, &h, "rEdge.d < 10.0");
        // Only edge (u,v) matches; both orientations of the query edge.
        let (a, b) = (NodeId(0), NodeId(1));
        let (u, v) = (NodeId(0), NodeId(1));
        assert_eq!(f.fwd_cell(a, u, b), &[v]);
        assert_eq!(f.fwd_cell(a, v, b), &[u]);
        assert_eq!(f.fwd_cell(b, u, a), &[v]);
        assert_eq!(f.fwd_cell(b, v, a), &[u]);
        assert!(f.fwd_cell(a, NodeId(2), b).is_empty());
        // Base candidates: {u, v} for both query nodes.
        assert_eq!(f.candidate_count(a), 2);
        assert_eq!(f.candidate_count(b), 2);
        // 2 host edges × 2 orientations = 4 evals.
        assert_eq!(stats.constraint_evals, 4);
        assert!(!f.truncated());
    }

    #[test]
    fn unconstrained_query_matches_everything() {
        let (q, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(f.candidate_count(a), 3);
        assert_eq!(f.candidate_count(b), 3);
        // v's cell given a→v must contain both u and w.
        assert_eq!(f.fwd_cell(a, NodeId(1), b), &[NodeId(0), NodeId(2)]);
        // Cells: (a, r, b) and (b, r, a) for r ∈ {u, v, w} = 6 distinct
        // cells; the two cells anchored at v hold two candidates each.
        assert_eq!(f.cell_count(), 6);
    }

    #[test]
    fn node_constraint_prunes_candidates() {
        let (q, mut h) = fixture();
        h.set_node_attr(NodeId(0), "cpu", 8.0);
        h.set_node_attr(NodeId(1), "cpu", 1.0);
        h.set_node_attr(NodeId(2), "cpu", 8.0);
        let p = Problem::new(&q, &h, "rNode.cpu >= 4.0").unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        // v (cpu 1) excluded ⇒ no host edge has both endpoints admissible
        // ⇒ no cells at all.
        assert_eq!(f.cell_count(), 0);
        assert_eq!(f.candidate_count(NodeId(0)), 0);
    }

    #[test]
    fn directed_uses_rev_cells() {
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        h.add_edge(u, v);
        let (f, _) = build(&q, &h, "true");
        // a→u admits b→v via fwd; b→v admits a→u via rev.
        assert_eq!(f.fwd_cell(a, u, b), &[v]);
        assert_eq!(f.rev_cell(b, v, a), &[u]);
        // The wrong orientation is absent.
        assert!(f.fwd_cell(a, v, b).is_empty());
        assert!(f.rev_cell(b, u, a).is_empty());
    }

    #[test]
    fn isolated_query_node_base_is_node_admissible_set() {
        let mut q = Network::new(Direction::Undirected);
        q.add_node("lone");
        let (_, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        assert_eq!(f.candidate_count(NodeId(0)), 3);
    }

    #[test]
    fn deadline_truncates_construction() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut d = Deadline::new(Some(std::time::Duration::ZERO));
        // Force immediate observation.
        d.check_now();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        assert!(f.truncated());
    }

    #[test]
    fn type_error_surfaces() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "rEdge.d == \"fast\"").unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        assert!(matches!(
            FilterMatrix::build(&p, &mut d, &mut s),
            Err(ProblemError::Eval(_))
        ));
    }

    #[test]
    fn entry_count_counts_candidates() {
        let (q, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        // Each of the 8 cells holds exactly one candidate here.
        assert_eq!(f.entry_count(), 8);
    }
}

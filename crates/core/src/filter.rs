//! The 3-D constraint filter matrix of §V-A, stored as a flat CSR arena.
//!
//! During ECF/RWB's first stage the constraint expression is applied to
//! every (query edge, host edge) pair. Each match `(q1 → r1, q2 → r2)`
//! populates two cells:
//!
//! ```text
//! F[(q1, r1, q2)] ← r2        F[(q2, r2, q1)] ← r1
//! ```
//!
//! so that during the second stage, the candidates for the next query node
//! `vi` given its already-mapped neighbors `vj → rj` are the intersection
//! of the cells `F[(vj, rj, vi)]` minus the already-used host nodes —
//! the paper's expression (2).
//!
//! ## Storage layout
//!
//! A cell key `(vj, rj, vi)` is sparse in `vj × vi` (only query-edge pairs
//! exist) but dense in `rj` (any admissible host node can anchor a cell).
//! The matrix exploits that shape instead of hashing:
//!
//! * the ordered query pairs `(vj, vi)` that can ever hold cells are known
//!   before any constraint is evaluated (one per directed query edge, two
//!   per undirected edge), so a dense `nq × nq` table maps `(vj, vi)` to a
//!   small *pair slot* — or to "no cells" for non-adjacent pairs;
//! * per pair slot, a CSR offset row indexed by `rj` points into one
//!   contiguous candidate arena (`Vec<NodeId>`, each cell's span sorted
//!   ascending).
//!
//! [`FilterMatrix::fwd_cell`]/[`FilterMatrix::rev_cell`] are therefore two
//! array indexings and a slice borrow — O(1), no hashing, no pointer
//! chasing — and construction is two passes: evaluate-and-collect, then
//! counting-sort into the arena. Cells holding at least
//! [`CELL_DENSE_MIN`] candidates additionally materialize a
//! [`NodeBitSet`] mirror ([`FilterMatrix::fwd_view`]), which the search's
//! inner loop intersects word-by-word into per-depth scratch masks (see
//! `ecf::fill_candidates`) — the hot path allocates nothing and probes no
//! hash table.
//!
//! For directed graphs only the matching orientation is recorded
//! (footnote 3): the forward table covers query edges `vj → vi` and a
//! reverse table covers `vi → vj`, and the search intersects whichever
//! apply. This replaces the paper's negative filter `F̄` with an exact
//! equivalent: both encode "which reverse-direction candidates are
//! (in)admissible", and a positive encoding needs no subtraction pass.
//!
//! ## Parallel construction
//!
//! The evaluation scan is embarrassingly parallel over *query edges*:
//! distinct query edges populate distinct `(vj, vi)` pair slots, so their
//! cell rows are disjoint by construction. [`FilterMatrix::build_par`]
//! exploits that: the pair-slot tables are fixed up front (in query-edge
//! order, before any evaluation), the query-edge list is split into
//! contiguous chunks — one scan worker each — and every worker streams
//! `(cell row, candidate)` hits into thread-local buffers. The stitch
//! concatenates the chunk outputs in chunk order, which reproduces the
//! sequential scan's hit stream *exactly*, and the deterministic
//! counting-sort pass then lays out the same CSR arena — the parallel
//! build is bitwise-identical to [`FilterMatrix::build`] (verified by
//! `tests/prop_layout.rs` via the `PartialEq` impl, which compares the
//! raw slot/offset/arena/bitset storage). Per-worker eval counters sum to
//! the sequential total, and base candidate sets are OR-merged (bitwise
//! OR commutes, so worker order cannot matter).
//!
//! The seed's `FxHashMap`-keyed implementation survives as
//! [`reference::HashFilterMatrix`] for the `abl_filter_layout` ablation
//! benchmark and the layout-equivalence property test
//! (`tests/prop_layout.rs`).

use crate::deadline::Deadline;
use crate::problem::{Problem, ProblemError};
use crate::stats::SearchStats;
use netgraph::{EdgeRef, NodeBitSet, NodeId};
use rustc_hash::FxHashSet;

/// Cells with at least this many candidates also materialize a bitset
/// mirror for word-level intersection. Below it, staging the (short)
/// sorted slice into a scratch mask is cheaper than carrying `nr` bits
/// per cell through construction.
pub const CELL_DENSE_MIN: usize = 16;

/// A filter cell, in both representations the search can consume.
#[derive(Clone, Copy)]
pub struct CellView<'a> {
    /// The cell's candidates, sorted ascending. Empty when the cell is
    /// absent.
    pub slice: &'a [NodeId],
    /// Bitset mirror, present when `slice.len() >= CELL_DENSE_MIN`.
    pub bits: Option<&'a NodeBitSet>,
}

/// One direction's cells: pair-slot table + CSR offsets + arena.
///
/// `PartialEq` compares the raw storage (slots, offsets, arena, bitset
/// mirrors) — two tables are equal only when they are laid out
/// identically, which is what the parallel-build determinism property
/// asserts.
#[derive(Clone, PartialEq)]
struct CellTable {
    nq: usize,
    nr: usize,
    /// `slot[vj * nq + vi]`: dense pair slot, or `u32::MAX` when the
    /// ordered pair `(vj, vi)` has no cells in this direction.
    slot: Vec<u32>,
    /// `offsets[s * (nr + 1) + rj] .. offsets[s * (nr + 1) + rj + 1]`:
    /// the arena span of cell `(vj, rj, vi)` with pair slot `s`.
    offsets: Vec<u32>,
    /// All candidates, cell spans sorted ascending.
    arena: Vec<NodeId>,
    /// `bit_idx[s * nr + rj]`: index into `bits`, or `u32::MAX`.
    bit_idx: Vec<u32>,
    /// Bitset mirrors of the dense cells.
    bits: Vec<NodeBitSet>,
    /// Number of non-empty cells, counted once during construction.
    ncells: usize,
}

impl CellTable {
    /// Pair-slot lookup for `(vj, vi)`.
    #[inline]
    fn pair(&self, vj: NodeId, vi: NodeId) -> u32 {
        self.slot[vj.index() * self.nq + vi.index()]
    }

    #[inline]
    fn cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
        let s = self.pair(vj, vi);
        if s == u32::MAX {
            return &[];
        }
        let row = s as usize * (self.nr + 1) + rj.index();
        &self.arena[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    #[inline]
    fn view(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> CellView<'_> {
        let s = self.pair(vj, vi);
        if s == u32::MAX {
            return CellView {
                slice: &[],
                bits: None,
            };
        }
        let row = s as usize * (self.nr + 1) + rj.index();
        let slice = &self.arena[self.offsets[row] as usize..self.offsets[row + 1] as usize];
        let bi = self.bit_idx[s as usize * self.nr + rj.index()];
        CellView {
            slice,
            bits: (bi != u32::MAX).then(|| &self.bits[bi as usize]),
        }
    }

    /// Number of non-empty cells (cached at construction; O(1) like the
    /// hash layout's map length).
    fn cell_count(&self) -> usize {
        self.ncells
    }

    /// Pair slots in this table (rows per slot: `nr`).
    fn nslots(&self) -> usize {
        self.offsets.len() / (self.nr + 1)
    }

    /// In-place removal pass of [`FilterMatrix::patch`]: drop every
    /// dirty-incident arena entry (anchor `rj` or candidate dirty) that
    /// the re-scan did not confirm, compact the arena tail-forward, and
    /// rebuild offsets, bitset mirrors and the cell count canonically —
    /// the surviving layout is exactly what [`CellTable::from_hits`]
    /// would produce from the surviving hit stream, which is what keeps
    /// a patched table `PartialEq`-identical to a fresh build.
    fn retain_confirmed(&mut self, dirty: &NodeBitSet, keep: &FxHashSet<(u64, u32)>) {
        let nslots = self.nslots();
        let mut new_offsets = vec![0u32; self.offsets.len()];
        let mut write = 0usize;
        let mut ncells = 0usize;
        for s in 0..nslots {
            let obase = s * (self.nr + 1);
            for rj in 0..self.nr {
                let (lo, hi) = (
                    self.offsets[obase + rj] as usize,
                    self.offsets[obase + rj + 1] as usize,
                );
                new_offsets[obase + rj] = write as u32;
                let rj_dirty = dirty.contains(NodeId(rj as u32));
                for k in lo..hi {
                    let r2 = self.arena[k];
                    let affected = rj_dirty || dirty.contains(r2);
                    if !affected || keep.contains(&(s as u64 * self.nr as u64 + rj as u64, r2.0)) {
                        self.arena[write] = r2;
                        write += 1;
                    }
                }
                if write as u32 > new_offsets[obase + rj] {
                    ncells += 1;
                }
            }
            new_offsets[obase + self.nr] = write as u32;
        }
        self.arena.truncate(write);
        self.offsets = new_offsets;
        // Re-derive the bitset mirrors from scratch: a shrunken span may
        // have crossed the density threshold, and `from_hits` assigns
        // mirror indices in row order — reproduce that exactly.
        self.bits.clear();
        self.bit_idx.fill(u32::MAX);
        for s in 0..nslots {
            let obase = s * (self.nr + 1);
            for rj in 0..self.nr {
                let (lo, hi) = (
                    self.offsets[obase + rj] as usize,
                    self.offsets[obase + rj + 1] as usize,
                );
                let span = &self.arena[lo..hi];
                if span.len() >= CELL_DENSE_MIN {
                    self.bit_idx[s * self.nr + rj] = self.bits.len() as u32;
                    self.bits
                        .push(NodeBitSet::from_iter(self.nr, span.iter().copied()));
                }
            }
        }
        self.ncells = ncells;
    }

    /// OR into `out` every anchor `rj` of a non-empty cell keyed
    /// `(vj, rj, ·)` — the scan-derived base-set contribution of this
    /// table for query node `vj` (a hit `(vj, rj, vi) ← r2` always
    /// inserted `rj` into `base[vj]`).
    fn collect_anchors(&self, vj: NodeId, out: &mut NodeBitSet) {
        for vi in 0..self.nq {
            let s = self.slot[vj.index() * self.nq + vi];
            if s == u32::MAX {
                continue;
            }
            let obase = s as usize * (self.nr + 1);
            for rj in 0..self.nr {
                if self.offsets[obase + rj] < self.offsets[obase + rj + 1] {
                    out.insert(NodeId(rj as u32));
                }
            }
        }
    }
}

/// Dense `(vj, vi)` → pair-slot table. Fixed *before* any constraint is
/// evaluated — slots are assigned in query-edge order, so the sequential
/// and parallel builds agree on the numbering by construction.
#[derive(Clone, PartialEq)]
struct PairSlots {
    nq: usize,
    slot: Vec<u32>,
    slots: u32,
}

impl PairSlots {
    fn new(nq: usize) -> Self {
        PairSlots {
            nq,
            slot: vec![u32::MAX; nq * nq],
            slots: 0,
        }
    }

    /// Register the ordered query pair `(vj, vi)` as cell-bearing.
    fn add_pair(&mut self, vj: NodeId, vi: NodeId) {
        let idx = vj.index() * self.nq + vi.index();
        if self.slot[idx] == u32::MAX {
            self.slot[idx] = self.slots;
            self.slots += 1;
        }
    }

    /// Pair slot of `(vj, vi)`, `u32::MAX` when the pair bears no cells.
    #[inline]
    fn get(&self, vj: NodeId, vi: NodeId) -> u32 {
        self.slot[vj.index() * self.nq + vi.index()]
    }
}

/// Record `r2 ∈ F[(vj, rj, vi)]` as a `(cell row, candidate)` hit. The
/// pair must have been registered in `slots`.
#[inline]
fn push_hit(
    hits: &mut Vec<(u64, NodeId)>,
    slots: &PairSlots,
    nr: usize,
    vj: NodeId,
    rj: NodeId,
    vi: NodeId,
    r2: NodeId,
) {
    let s = slots.get(vj, vi);
    debug_assert_ne!(s, u32::MAX, "cell pushed for unregistered pair");
    hits.push((s as u64 * nr as u64 + rj.index() as u64, r2));
}

/// Raw output of one evaluation-scan chunk: streamed cell hits, partial
/// base sets, and local counters. Chunk outputs stitched in chunk order
/// reproduce the sequential scan exactly.
struct ScanOut {
    fwd_hits: Vec<(u64, NodeId)>,
    rev_hits: Vec<(u64, NodeId)>,
    base: Vec<NodeBitSet>,
    evals: u64,
    truncated: bool,
}

/// Evaluate the constraint for `qedges × host edges` (the first-stage
/// scan), streaming hits. This is the shared worker body of both the
/// sequential and the parallel build — identical logic, so chunked runs
/// concatenate to exactly the sequential hit stream.
fn scan_query_edges(
    problem: &Problem<'_>,
    qedges: &[EdgeRef],
    node_pass: &[NodeBitSet],
    fwd_slots: &PairSlots,
    rev_slots: &PairSlots,
    deadline: &mut Deadline,
) -> Result<ScanOut, ProblemError> {
    let nq = problem.nq();
    let nr = problem.nr();
    let undirected = problem.query.is_undirected();
    let mut out = ScanOut {
        fwd_hits: Vec::new(),
        rev_hits: Vec::new(),
        base: (0..nq).map(|_| NodeBitSet::new(nr)).collect(),
        evals: 0,
        truncated: false,
    };
    'outer: for qe in qedges {
        let (a, b) = (qe.src, qe.dst);
        for he in problem.host.edge_refs() {
            if deadline.expired() {
                out.truncated = true;
                break 'outer;
            }
            let (u, v) = (he.src, he.dst);
            // Orientation 1: a→u, b→v.
            if node_pass[a.index()].contains(u) && node_pass[b.index()].contains(v) {
                out.evals += 1;
                if problem.edge_ok(qe.id, a, b, he.id, u, v)? {
                    push_hit(&mut out.fwd_hits, fwd_slots, nr, a, u, b, v);
                    if undirected {
                        push_hit(&mut out.fwd_hits, fwd_slots, nr, b, v, a, u);
                    } else {
                        push_hit(&mut out.rev_hits, rev_slots, nr, b, v, a, u);
                    }
                    out.base[a.index()].insert(u);
                    out.base[b.index()].insert(v);
                }
            }
            // Orientation 2: a→v, b→u. A real evaluation for undirected
            // hosts; for directed hosts the orientation is rejected by
            // direction alone, but it is still one considered orientation
            // of the scan, so the counter is bumped either way to keep
            // directed and undirected eval totals comparable.
            if node_pass[a.index()].contains(v) && node_pass[b.index()].contains(u) {
                out.evals += 1;
                if undirected && problem.edge_ok(qe.id, a, b, he.id, v, u)? {
                    push_hit(&mut out.fwd_hits, fwd_slots, nr, a, v, b, u);
                    push_hit(&mut out.fwd_hits, fwd_slots, nr, b, u, a, v);
                    out.base[a.index()].insert(v);
                    out.base[b.index()].insert(u);
                }
            }
        }
    }
    Ok(out)
}

impl CellTable {
    /// Counting-sort a hit stream into the CSR layout. Deterministic:
    /// the layout depends only on the hit multiset order within each cell
    /// (and each span is sorted afterwards), so any scan that reproduces
    /// the sequential hit stream produces a bitwise-identical table.
    fn from_hits(slots: PairSlots, nr: usize, hits: Vec<(u64, NodeId)>) -> CellTable {
        let nslots = slots.slots as usize;
        let rows = nslots * nr;
        // Counting sort the hits by cell row.
        let mut counts = vec![0u32; rows];
        for &(row, _) in &hits {
            counts[row as usize] += 1;
        }
        // Per-slot offset rows of length nr + 1 (the extra slot closes the
        // last cell of each pair).
        let mut offsets = vec![0u32; nslots * (nr + 1)];
        let mut running = 0u32;
        for s in 0..nslots {
            let obase = s * (nr + 1);
            for rj in 0..nr {
                offsets[obase + rj] = running;
                running += counts[s * nr + rj];
            }
            offsets[obase + nr] = running;
        }
        let mut arena = vec![NodeId(u32::MAX); hits.len()];
        let mut cursor: Vec<u32> = (0..rows)
            .map(|row| offsets[row / nr * (nr + 1) + row % nr])
            .collect();
        for &(row, r2) in &hits {
            let c = &mut cursor[row as usize];
            arena[*c as usize] = r2;
            *c += 1;
        }
        // Sort each cell span so the search and external callers can rely
        // on ascending order. Host edges are unique per node pair, so a
        // span cannot contain duplicates.
        let mut bit_idx = vec![u32::MAX; rows];
        let mut bits: Vec<NodeBitSet> = Vec::new();
        let mut ncells = 0usize;
        for s in 0..nslots {
            let obase = s * (nr + 1);
            for rj in 0..nr {
                let (lo, hi) = (
                    offsets[obase + rj] as usize,
                    offsets[obase + rj + 1] as usize,
                );
                if lo == hi {
                    continue;
                }
                ncells += 1;
                let span = &mut arena[lo..hi];
                span.sort_unstable();
                debug_assert!(span.windows(2).all(|w| w[0] < w[1]), "duplicate candidates");
                if span.len() >= CELL_DENSE_MIN {
                    bit_idx[s * nr + rj] = bits.len() as u32;
                    bits.push(NodeBitSet::from_iter(nr, span.iter().copied()));
                }
            }
        }
        CellTable {
            nq: slots.nq,
            nr,
            slot: slots.slot,
            offsets,
            arena,
            bit_idx,
            bits,
            ncells,
        }
    }
}

/// The constructed filter state for one problem.
///
/// `PartialEq` compares the raw CSR storage of both cell tables plus the
/// base sets — equality means the two matrices are laid out
/// bitwise-identically, the property `tests/prop_layout.rs` asserts for
/// [`FilterMatrix::build`] vs [`FilterMatrix::build_par`].
#[derive(Clone, PartialEq)]
pub struct FilterMatrix {
    /// `fwd[(vj, rj, vi)]`: candidates for `vi` via query edge `vj → vi`
    /// (for undirected problems this holds both orientations).
    fwd: CellTable,
    /// `rev[(vj, rj, vi)]`: candidates for `vi` via query edge `vi → vj`
    /// (directed problems only).
    rev: CellTable,
    /// Per-query-node base candidate set (expression (1) of the paper):
    /// every host node that appears in at least one edge match per incident
    /// edge, or that passes the node constraint for edge-less query nodes.
    base: Vec<NodeBitSet>,
    /// `base[v].len()`, precomputed for the Lemma-1 ordering.
    counts: Vec<usize>,
    /// Whether construction was cut short by the deadline. A truncated
    /// filter must not be searched (results would be incomplete).
    truncated: bool,
}

/// How [`FilterMatrix::patch`] resolved a dirty window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOutcome {
    /// The matrix was repaired in place and is now bitwise-identical to
    /// a fresh build against the patched host.
    Patched,
    /// Re-evaluation discovered a *newly admissible* candidate (or the
    /// patch preconditions failed: truncated matrix, host shape change,
    /// deadline expiry). Additions cannot be spliced into the frozen
    /// CSR arena — the caller must fall back to a full rebuild.
    NeedsRebuild,
}

/// Memoized node-admissibility probe for [`FilterMatrix::patch`]: the
/// tri-state `memo` (0 unknown / 1 admissible / 2 not) caches verdicts
/// per `(v, r)` so repeated probes of the same pair across host edges
/// evaluate the node constraint once, exactly mirroring the gate in
/// [`node_admissible_within`].
#[allow(clippy::too_many_arguments)]
fn admit_memo(
    problem: &Problem<'_>,
    qdeg: &[(usize, usize)],
    memo: &mut [u8],
    nr: usize,
    v: NodeId,
    r: NodeId,
    stats: &mut SearchStats,
) -> Result<bool, ProblemError> {
    let idx = v.index() * nr + r.index();
    match memo[idx] {
        1 => return Ok(true),
        2 => return Ok(false),
        _ => {}
    }
    let (v_out, v_in) = qdeg[v.index()];
    let mut ok =
        problem.host.neighbors(r).len() >= v_out && problem.host.in_neighbors(r).len() >= v_in;
    if ok && problem.has_node_expr() {
        stats.constraint_evals += 1;
        ok = problem.node_ok(v, r)?;
    }
    memo[idx] = if ok { 1 } else { 2 };
    Ok(ok)
}

/// Confirm one re-scanned hit against the frozen table: present → record
/// it in `keep` (so the removal pass retains it) and report `true`;
/// absent → the mutation *added* a candidate, which the arena cannot
/// absorb — the caller must rebuild.
fn confirm_hit(
    table: &CellTable,
    keep: &mut FxHashSet<(u64, u32)>,
    vj: NodeId,
    rj: NodeId,
    vi: NodeId,
    r2: NodeId,
) -> bool {
    let s = table.pair(vj, vi);
    if s == u32::MAX {
        return false;
    }
    let row = s as usize * (table.nr + 1) + rj.index();
    let span = &table.arena[table.offsets[row] as usize..table.offsets[row + 1] as usize];
    if span.binary_search(&r2).is_err() {
        return false;
    }
    keep.insert((s as u64 * table.nr as u64 + rj.index() as u64, r2.0));
    true
}

/// Node-admissibility prefilter: which `(v, r)` pairs can possibly map.
/// Two sound prunes apply before any constraint evaluation: degree (every
/// query edge maps to a distinct host edge, so the host node needs at
/// least the query node's degree — in/out separately for directed graphs)
/// and then the node constraint.
pub(crate) fn node_admissible(
    problem: &Problem<'_>,
    stats: &mut SearchStats,
) -> Result<Vec<NodeBitSet>, ProblemError> {
    node_admissible_within(problem, stats, None)
}

/// [`node_admissible`] scoped to per-query-node candidate sets. With
/// `allowed` present (the hierarchical expansion step) only the listed
/// host nodes are examined — the degree gate and node constraint are
/// never evaluated outside the surviving super-node subtrees, which is
/// where the hierarchy's `O(levels)` vs `O(|VR|)` admission win comes
/// from on large substrates.
pub(crate) fn node_admissible_within(
    problem: &Problem<'_>,
    stats: &mut SearchStats,
    allowed: Option<&[NodeBitSet]>,
) -> Result<Vec<NodeBitSet>, ProblemError> {
    let nr = problem.nr();
    let mut node_pass: Vec<NodeBitSet> = Vec::with_capacity(problem.nq());
    for v in problem.query.node_ids() {
        let mut set = NodeBitSet::new(nr);
        let (v_out, v_in) = (
            problem.query.neighbors(v).len(),
            problem.query.in_neighbors(v).len(),
        );
        let admit = |r: NodeId, stats: &mut SearchStats| -> Result<bool, ProblemError> {
            if problem.host.neighbors(r).len() < v_out || problem.host.in_neighbors(r).len() < v_in
            {
                return Ok(false);
            }
            if problem.has_node_expr() {
                stats.constraint_evals += 1;
                if !problem.node_ok(v, r)? {
                    return Ok(false);
                }
            }
            Ok(true)
        };
        match allowed {
            Some(allowed) => {
                for r in allowed[v.index()].iter() {
                    if admit(r, stats)? {
                        set.insert(r);
                    }
                }
            }
            None => {
                for r in problem.host.node_ids() {
                    if admit(r, stats)? {
                        set.insert(r);
                    }
                }
            }
        }
        node_pass.push(set);
    }
    Ok(node_pass)
}

impl FilterMatrix {
    /// First-stage filter construction. Evaluates the constraint for every
    /// (query edge, host edge) pair, polling `deadline`; on expiry returns
    /// a matrix flagged [`FilterMatrix::truncated`].
    ///
    /// Counter updates land in `stats` (`constraint_evals`,
    /// `filter_cells`). Every *considered orientation* of a (query edge,
    /// host edge) pair whose endpoints pass the node prefilter bumps
    /// `constraint_evals` — including, for directed problems, the reverse
    /// orientation that direction alone rejects (the paper's F̄ pass) —
    /// so directed and undirected runs of the same topology report
    /// comparable totals.
    pub fn build(
        problem: &Problem<'_>,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Result<FilterMatrix, ProblemError> {
        Self::build_impl(problem, 1, deadline, stats, None, None)
    }

    /// [`FilterMatrix::build`] restricted to per-query-node host
    /// candidate sets — the expansion step of the hierarchical search:
    /// `allowed[v]` (one bitset per query node, host-node capacity)
    /// scopes the node prefilter itself, so neither the admission gate
    /// nor any cell outside the surviving super-node subtrees is ever
    /// evaluated. With `allowed`
    /// covering every solution (the hierarchy refinement's guarantee)
    /// the restricted matrix yields exactly the same search results as
    /// the full build.
    pub fn build_restricted(
        problem: &Problem<'_>,
        allowed: &[NodeBitSet],
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Result<FilterMatrix, ProblemError> {
        Self::build_impl(problem, 1, deadline, stats, None, Some(allowed))
    }

    /// [`FilterMatrix::build_restricted`] with the scan fanned out over
    /// a caller-held persistent [`WorkerPool`](crate::pool::WorkerPool),
    /// mirroring [`FilterMatrix::build_par_pooled`].
    pub fn build_restricted_par_pooled(
        problem: &Problem<'_>,
        allowed: &[NodeBitSet],
        threads: usize,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        pool: &mut crate::pool::WorkerPool,
    ) -> Result<FilterMatrix, ProblemError> {
        Self::build_impl(
            problem,
            threads.max(1),
            deadline,
            stats,
            Some(pool),
            Some(allowed),
        )
    }

    /// [`FilterMatrix::build`] with the evaluation scan parallelized over
    /// `threads` scoped worker threads (contiguous query-edge chunks, one
    /// worker each). Produces a matrix bitwise-identical to the
    /// sequential build — same CSR layout, same eval counters, same base
    /// sets — because the chunk outputs are stitched in chunk order and
    /// the counting-sort pass is deterministic. `threads <= 1`, or a
    /// query with a single edge, falls back to the sequential scan.
    pub fn build_par(
        problem: &Problem<'_>,
        threads: usize,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Result<FilterMatrix, ProblemError> {
        Self::build_impl(problem, threads.max(1), deadline, stats, None, None)
    }

    /// [`FilterMatrix::build_par`], but the chunk scan runs on a
    /// caller-held persistent [`WorkerPool`](crate::pool::WorkerPool)
    /// instead of a fresh thread scope — the spawn-free path for
    /// long-lived callers (the engine routes
    /// [`Algorithm::ParallelEcf`](crate::Algorithm) builds here through
    /// the [`ParallelScratch`](crate::ParallelScratch) pool). Output is
    /// bitwise-identical to the sequential and scoped builds.
    pub fn build_par_pooled(
        problem: &Problem<'_>,
        threads: usize,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        pool: &mut crate::pool::WorkerPool,
    ) -> Result<FilterMatrix, ProblemError> {
        Self::build_impl(problem, threads.max(1), deadline, stats, Some(pool), None)
    }

    fn build_impl(
        problem: &Problem<'_>,
        threads: usize,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
        pool: Option<&mut crate::pool::WorkerPool>,
        allowed: Option<&[NodeBitSet]>,
    ) -> Result<FilterMatrix, ProblemError> {
        let nq = problem.nq();
        let nr = problem.nr();
        let undirected = problem.query.is_undirected();

        // Phase boundary: a zero/expired/cancelled budget is caught here,
        // before any evaluation work, regardless of how many strided
        // polls the caller's deadline has already consumed.
        if deadline.check_now() {
            stats.filter_cells = 0;
            return Ok(FilterMatrix {
                fwd: CellTable::from_hits(PairSlots::new(nq), nr, Vec::new()),
                rev: CellTable::from_hits(PairSlots::new(nq), nr, Vec::new()),
                base: (0..nq).map(|_| NodeBitSet::new(nr)).collect(),
                counts: vec![0; nq],
                truncated: true,
            });
        }

        if let Some(allowed) = allowed {
            debug_assert_eq!(allowed.len(), nq);
        }
        let node_pass = node_admissible_within(problem, stats, allowed)?;

        // The cell-bearing ordered pairs are exactly the query edges (both
        // orientations when undirected), known before evaluation starts.
        let mut fwd_slots = PairSlots::new(nq);
        let mut rev_slots = PairSlots::new(nq);
        for qe in problem.query.edge_refs() {
            fwd_slots.add_pair(qe.src, qe.dst);
            if undirected {
                fwd_slots.add_pair(qe.dst, qe.src);
            } else {
                rev_slots.add_pair(qe.dst, qe.src);
            }
        }

        // The evaluation scan: one chunk inline, or `workers` contiguous
        // chunks fanned out over scoped threads. Each worker polls its own
        // clone of the deadline (shared cancel flag, shared clock).
        let qedges: Vec<EdgeRef> = problem.query.edge_refs().collect();
        let workers = threads.min(qedges.len()).max(1);
        let outs: Vec<Result<ScanOut, ProblemError>> = if workers <= 1 {
            vec![scan_query_edges(
                problem, &qedges, &node_pass, &fwd_slots, &rev_slots, deadline,
            )]
        } else if let Some(pool) = pool {
            // Persistent-pool fan-out: same chunks, same deterministic
            // stitch order, but the threads were (usually) already
            // parked waiting — no spawn/join on the warm path.
            let chunk = qedges.len().div_ceil(workers);
            let chunks: Vec<&[EdgeRef]> = qedges.chunks(chunk).collect();
            let mut slots: Vec<Option<Result<ScanOut, ProblemError>>> =
                (0..chunks.len()).map(|_| None).collect();
            {
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks.len());
                for (ch, slot) in chunks.into_iter().zip(slots.iter_mut()) {
                    let mut dl = deadline.clone();
                    let (node_pass, fwd_slots, rev_slots) = (&node_pass, &fwd_slots, &rev_slots);
                    jobs.push(Box::new(move || {
                        *slot = Some(scan_query_edges(
                            problem, ch, node_pass, fwd_slots, rev_slots, &mut dl,
                        ));
                    }));
                }
                pool.run_scoped(jobs);
            }
            slots
                .into_iter()
                .map(|s| s.expect("pool scan job completed"))
                .collect()
        } else {
            let chunk = qedges.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for ch in qedges.chunks(chunk) {
                    let mut dl = deadline.clone();
                    let (node_pass, fwd_slots, rev_slots) = (&node_pass, &fwd_slots, &rev_slots);
                    handles.push(scope.spawn(move |_| {
                        scan_query_edges(problem, ch, node_pass, fwd_slots, rev_slots, &mut dl)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scan worker panicked"))
                    .collect()
            })
            .expect("scope failure")
        };

        // Deterministic stitch: chunk outputs in chunk order reproduce
        // the sequential hit stream; bases OR-merge; eval counts sum.
        let mut fwd_hits: Vec<(u64, NodeId)> = Vec::new();
        let mut rev_hits: Vec<(u64, NodeId)> = Vec::new();
        let mut base: Vec<NodeBitSet> = (0..nq).map(|_| NodeBitSet::new(nr)).collect();
        let mut truncated = false;
        for out in outs {
            // Errors surface in chunk order, so the reported error is the
            // one the sequential scan would have hit first.
            let mut out = out?;
            fwd_hits.append(&mut out.fwd_hits);
            rev_hits.append(&mut out.rev_hits);
            for (acc, part) in base.iter_mut().zip(&out.base) {
                acc.union_with(part);
            }
            stats.constraint_evals += out.evals;
            truncated |= out.truncated;
        }
        if truncated {
            // Let the caller's own deadline observe the expiry the worker
            // clones saw (their `expired_seen` latches are thread-local).
            deadline.check_now();
        }

        // Edge-less query nodes (degree 0): their base set is the node-
        // admissible set — topology imposes nothing.
        for v in problem.query.node_ids() {
            if problem.query.total_degree(v) == 0 {
                base[v.index()] = node_pass[v.index()].clone();
            }
        }

        let fwd = CellTable::from_hits(fwd_slots, nr, fwd_hits);
        let rev = CellTable::from_hits(rev_slots, nr, rev_hits);
        let counts: Vec<usize> = base.iter().map(|s| s.len()).collect();
        stats.filter_cells = (fwd.cell_count() + rev.cell_count()) as u64;
        Ok(FilterMatrix {
            fwd,
            rev,
            base,
            counts,
            truncated,
        })
    }

    /// True when construction hit the deadline; search must not run.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Candidate count for query node `v` (the Lemma-1 sort key).
    #[inline]
    pub fn candidate_count(&self, v: NodeId) -> usize {
        self.counts[v.index()]
    }

    /// Base candidate set for query node `v` (expression (1)).
    #[inline]
    pub fn base(&self, v: NodeId) -> &NodeBitSet {
        &self.base[v.index()]
    }

    /// Union of every query node's base candidate set: the host nodes
    /// this filter can reference at all. Every cell entry is a base
    /// candidate of its query node and every cell key is a base
    /// candidate of its predecessor, so a host mutation whose dirty
    /// nodes avoid this set cannot invalidate any candidate the filter
    /// holds — the soundness condition for the service layer's
    /// epoch-promotion of cached filters (a mutation may still *add*
    /// feasible candidates outside this set; promotion is deliberately
    /// conservative about those, matching serve-stale semantics).
    pub fn touched_hosts(&self) -> NodeBitSet {
        let mut out = NodeBitSet::new(self.base.first().map_or(0, |b| b.capacity()));
        for b in &self.base {
            out.union_with(b);
        }
        out
    }

    /// Cell `F[(vj, rj, vi)]` for query edge `vj → vi` (or the undirected
    /// edge `{vj, vi}`): candidates for `vi`, sorted ascending. Empty
    /// slice when absent. O(1): two table indexings, no hashing.
    #[inline]
    pub fn fwd_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
        self.fwd.cell(vj, rj, vi)
    }

    /// Reverse cell for query edge `vi → vj` in directed problems:
    /// candidates for `vi` given `vj → rj`. O(1), as for
    /// [`FilterMatrix::fwd_cell`].
    #[inline]
    pub fn rev_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
        self.rev.cell(vj, rj, vi)
    }

    /// [`CellView`] of a forward cell: slice plus bitset mirror when the
    /// cell is dense. The search's intersection loop consumes these.
    #[inline]
    pub fn fwd_view(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> CellView<'_> {
        self.fwd.view(vj, rj, vi)
    }

    /// [`CellView`] of a reverse cell.
    #[inline]
    pub fn rev_view(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> CellView<'_> {
        self.rev.view(vj, rj, vi)
    }

    /// Total number of materialized (non-empty) cells (space metric for
    /// §V-C).
    pub fn cell_count(&self) -> usize {
        self.fwd.cell_count() + self.rev.cell_count()
    }

    /// Total number of candidate entries across cells.
    pub fn entry_count(&self) -> usize {
        self.fwd.arena.len() + self.rev.arena.len()
    }

    /// Repair this matrix in place against a host that mutated since it
    /// was built, re-evaluating only what `dirty` can have changed.
    ///
    /// `problem` must be the *same query and constraint* compiled
    /// against the host **at the new epoch**, and `dirty` must cover
    /// every mutated host node plus both endpoints of every mutated
    /// host edge (the feed's `DirtySet` contract) — then a host edge
    /// with no dirty endpoint has unchanged attributes *and* unchanged
    /// endpoint admissibility, so every hit it ever produced is
    /// epoch-invariant. The patch therefore re-scans only dirty-incident
    /// host edges (and, for edge-less query nodes, dirty base rows):
    ///
    /// * a previously-recorded hit the re-scan still produces is kept;
    /// * a previously-recorded dirty-incident hit the re-scan no longer
    ///   produces is removed in place (arena compaction, offsets/bitset
    ///   mirrors/`counts` re-derived canonically);
    /// * a re-scanned hit **absent** from the frozen arena is an
    ///   addition — the method returns [`PatchOutcome::NeedsRebuild`]
    ///   without completing the mutation, and the caller must discard
    ///   this matrix and build fresh (additions cannot be spliced into
    ///   a frozen CSR arena).
    ///
    /// On [`PatchOutcome::Patched`] the matrix is `PartialEq`-identical
    /// to a fresh [`FilterMatrix::build`] at the new epoch: the
    /// counting-sort layout is a pure function of the per-cell sorted
    /// candidate sets, which the removal pass reproduces exactly. Host
    /// shape changes (`nq`/`nr` mismatch, dirty id out of range), a
    /// truncated matrix, and deadline expiry mid-scan all resolve as
    /// `NeedsRebuild` — never a partial repair. `stats` accrues
    /// `constraint_evals` for the re-scan and `filter_cells` on
    /// success.
    pub fn patch(
        &mut self,
        problem: &Problem<'_>,
        dirty: &[NodeId],
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Result<PatchOutcome, ProblemError> {
        let nq = problem.nq();
        let nr = problem.nr();
        if self.truncated || self.fwd.nq != nq || self.fwd.nr != nr {
            return Ok(PatchOutcome::NeedsRebuild);
        }
        if dirty.iter().any(|d| d.index() >= nr) {
            return Ok(PatchOutcome::NeedsRebuild);
        }
        if dirty.is_empty() {
            return Ok(PatchOutcome::Patched);
        }
        if deadline.check_now() {
            return Ok(PatchOutcome::NeedsRebuild);
        }
        let mut dirty_set = NodeBitSet::new(nr);
        for &d in dirty {
            dirty_set.insert(d);
        }
        let undirected = problem.query.is_undirected();
        let qdeg: Vec<(usize, usize)> = problem
            .query
            .node_ids()
            .map(|v| {
                (
                    problem.query.neighbors(v).len(),
                    problem.query.in_neighbors(v).len(),
                )
            })
            .collect();
        let mut memo = vec![0u8; nq * nr];
        let mut keep_fwd: FxHashSet<(u64, u32)> = FxHashSet::default();
        let mut keep_rev: FxHashSet<(u64, u32)> = FxHashSet::default();

        // Re-scan pass: regenerate the hits of every dirty-incident host
        // edge under the new epoch, mirroring `scan_query_edges` exactly
        // (orientations, admissibility gate, eval accounting). Any
        // regenerated hit missing from the frozen arena is an addition.
        for qe in problem.query.edge_refs() {
            let (a, b) = (qe.src, qe.dst);
            for he in problem.host.edge_refs() {
                let (u, v) = (he.src, he.dst);
                if !dirty_set.contains(u) && !dirty_set.contains(v) {
                    continue;
                }
                if deadline.expired() {
                    return Ok(PatchOutcome::NeedsRebuild);
                }
                // Orientation 1: a→u, b→v.
                if admit_memo(problem, &qdeg, &mut memo, nr, a, u, stats)?
                    && admit_memo(problem, &qdeg, &mut memo, nr, b, v, stats)?
                {
                    stats.constraint_evals += 1;
                    if problem.edge_ok(qe.id, a, b, he.id, u, v)? {
                        if !confirm_hit(&self.fwd, &mut keep_fwd, a, u, b, v) {
                            return Ok(PatchOutcome::NeedsRebuild);
                        }
                        let kept = if undirected {
                            confirm_hit(&self.fwd, &mut keep_fwd, b, v, a, u)
                        } else {
                            confirm_hit(&self.rev, &mut keep_rev, b, v, a, u)
                        };
                        if !kept {
                            return Ok(PatchOutcome::NeedsRebuild);
                        }
                    }
                }
                // Orientation 2: a→v, b→u (a recorded hit only when
                // undirected, exactly as in the build scan).
                if admit_memo(problem, &qdeg, &mut memo, nr, a, v, stats)?
                    && admit_memo(problem, &qdeg, &mut memo, nr, b, u, stats)?
                {
                    stats.constraint_evals += 1;
                    if undirected
                        && problem.edge_ok(qe.id, a, b, he.id, v, u)?
                        && (!confirm_hit(&self.fwd, &mut keep_fwd, a, v, b, u)
                            || !confirm_hit(&self.fwd, &mut keep_fwd, b, u, a, v))
                    {
                        return Ok(PatchOutcome::NeedsRebuild);
                    }
                }
            }
        }

        // Edge-less query nodes: their base set is the node-admissible
        // set, so a dirty host node re-admits per the new constraint —
        // newly admissible is an addition, newly inadmissible a removal.
        let mut deg0_removals: Vec<(NodeId, NodeId)> = Vec::new();
        for v in problem.query.node_ids() {
            if problem.query.total_degree(v) != 0 {
                continue;
            }
            for r in dirty_set.iter() {
                let now = admit_memo(problem, &qdeg, &mut memo, nr, v, r, stats)?;
                let was = self.base[v.index()].contains(r);
                if now && !was {
                    return Ok(PatchOutcome::NeedsRebuild);
                }
                if !now && was {
                    deg0_removals.push((v, r));
                }
            }
        }

        // Every addition check passed — mutate. Removal pass: compact
        // both tables, then re-derive bases and counts from the
        // surviving cells so the result is layout-identical to a fresh
        // build.
        self.fwd.retain_confirmed(&dirty_set, &keep_fwd);
        self.rev.retain_confirmed(&dirty_set, &keep_rev);
        for (v, r) in deg0_removals {
            self.base[v.index()].remove(r);
        }
        for v in problem.query.node_ids() {
            if problem.query.total_degree(v) == 0 {
                continue;
            }
            let base = &mut self.base[v.index()];
            base.clear();
            self.fwd.collect_anchors(v, base);
            self.rev.collect_anchors(v, base);
        }
        for (count, base) in self.counts.iter_mut().zip(&self.base) {
            *count = base.len();
        }
        stats.filter_cells = (self.fwd.cell_count() + self.rev.cell_count()) as u64;
        Ok(PatchOutcome::Patched)
    }
}

#[doc(hidden)]
pub mod reference {
    //! The seed's `FxHashMap`-keyed filter, kept verbatim (plus the same
    //! orientation-2 eval accounting as the CSR build) as the baseline
    //! for the `abl_filter_layout` ablation benchmark and as the oracle
    //! for the layout-equivalence property test. Not part of the public
    //! API.

    use super::*;
    use crate::mapping::Mapping;
    use crate::order::Pred;
    use rustc_hash::FxHashMap;

    /// Key of one filter cell: `(v, r, v′)` with ids packed as `u32`.
    type CellKey = (u32, u32, u32);

    /// Hash-map-backed filter matrix (the pre-CSR layout).
    pub struct HashFilterMatrix {
        fwd: FxHashMap<CellKey, Vec<NodeId>>,
        rev: FxHashMap<CellKey, Vec<NodeId>>,
        base: Vec<NodeBitSet>,
        counts: Vec<usize>,
        truncated: bool,
    }

    impl HashFilterMatrix {
        /// Build with hash-map cells; counters mirror
        /// [`FilterMatrix::build`] exactly.
        pub fn build(
            problem: &Problem<'_>,
            deadline: &mut Deadline,
            stats: &mut SearchStats,
        ) -> Result<HashFilterMatrix, ProblemError> {
            let nq = problem.nq();
            let nr = problem.nr();
            let undirected = problem.query.is_undirected();

            let mut fwd: FxHashMap<CellKey, Vec<NodeId>> = FxHashMap::default();
            let mut rev: FxHashMap<CellKey, Vec<NodeId>> = FxHashMap::default();
            let node_pass = node_admissible(problem, stats)?;

            let mut base: Vec<NodeBitSet> = (0..nq).map(|_| NodeBitSet::new(nr)).collect();
            let mut truncated = false;

            'outer: for qe in problem.query.edge_refs() {
                let (a, b) = (qe.src, qe.dst);
                for he in problem.host.edge_refs() {
                    if deadline.expired() {
                        truncated = true;
                        break 'outer;
                    }
                    let (u, v) = (he.src, he.dst);
                    if node_pass[a.index()].contains(u) && node_pass[b.index()].contains(v) {
                        stats.constraint_evals += 1;
                        if problem.edge_ok(qe.id, a, b, he.id, u, v)? {
                            push_cell(&mut fwd, (a.0, u.0, b.0), v);
                            if undirected {
                                push_cell(&mut fwd, (b.0, v.0, a.0), u);
                            } else {
                                push_cell(&mut rev, (b.0, v.0, a.0), u);
                            }
                            base[a.index()].insert(u);
                            base[b.index()].insert(v);
                        }
                    }
                    if node_pass[a.index()].contains(v) && node_pass[b.index()].contains(u) {
                        stats.constraint_evals += 1;
                        if undirected && problem.edge_ok(qe.id, a, b, he.id, v, u)? {
                            push_cell(&mut fwd, (a.0, v.0, b.0), u);
                            push_cell(&mut fwd, (b.0, u.0, a.0), v);
                            base[a.index()].insert(v);
                            base[b.index()].insert(u);
                        }
                    }
                }
            }

            for v in problem.query.node_ids() {
                if problem.query.total_degree(v) == 0 {
                    base[v.index()] = node_pass[v.index()].clone();
                }
            }

            for cell in fwd.values_mut().chain(rev.values_mut()) {
                cell.sort_unstable();
                cell.dedup();
            }

            let counts: Vec<usize> = base.iter().map(|s| s.len()).collect();
            stats.filter_cells = (fwd.len() + rev.len()) as u64;
            Ok(HashFilterMatrix {
                fwd,
                rev,
                base,
                counts,
                truncated,
            })
        }

        /// See [`FilterMatrix::truncated`].
        pub fn truncated(&self) -> bool {
            self.truncated
        }

        /// See [`FilterMatrix::candidate_count`].
        #[inline]
        pub fn candidate_count(&self, v: NodeId) -> usize {
            self.counts[v.index()]
        }

        /// See [`FilterMatrix::base`].
        #[inline]
        pub fn base(&self, v: NodeId) -> &NodeBitSet {
            &self.base[v.index()]
        }

        /// See [`FilterMatrix::fwd_cell`]. One hash probe per call.
        #[inline]
        pub fn fwd_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
            self.fwd
                .get(&(vj.0, rj.0, vi.0))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        /// See [`FilterMatrix::rev_cell`]. One hash probe per call.
        #[inline]
        pub fn rev_cell(&self, vj: NodeId, rj: NodeId, vi: NodeId) -> &[NodeId] {
            self.rev
                .get(&(vj.0, rj.0, vi.0))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        /// See [`FilterMatrix::cell_count`].
        pub fn cell_count(&self) -> usize {
            self.fwd.len() + self.rev.len()
        }

        /// See [`FilterMatrix::entry_count`].
        pub fn entry_count(&self) -> usize {
            self.fwd
                .values()
                .chain(self.rev.values())
                .map(Vec::len)
                .sum()
        }
    }

    #[inline]
    fn push_cell(map: &mut FxHashMap<CellKey, Vec<NodeId>>, key: CellKey, value: NodeId) {
        map.entry(key).or_default().push(value);
    }

    /// The seed's candidate computation: gather one hash-probed cell per
    /// predecessor, allocate a fresh `Vec`, and intersect via
    /// `binary_search` membership tests.
    pub fn candidates_at(
        filter: &HashFilterMatrix,
        order: &[NodeId],
        preds: &[Vec<Pred>],
        depth: usize,
        assign: &[NodeId],
        used: &NodeBitSet,
    ) -> Vec<NodeId> {
        let vi = order[depth];
        let plist = &preds[depth];
        if plist.is_empty() {
            return filter
                .base(vi)
                .iter()
                .filter(|r| !used.contains(*r))
                .collect();
        }
        let mut cells: Vec<&[NodeId]> = Vec::with_capacity(plist.len());
        for p in plist {
            let rj = assign[p.node.index()];
            let cell = if p.forward {
                filter.fwd_cell(p.node, rj, vi)
            } else {
                filter.rev_cell(p.node, rj, vi)
            };
            if cell.is_empty() {
                return Vec::new();
            }
            cells.push(cell);
        }
        cells.sort_by_key(|c| c.len());
        let (base, rest) = cells.split_first().expect("at least one cell");
        base.iter()
            .copied()
            .filter(|r| !used.contains(*r) && rest.iter().all(|c| c.binary_search(r).is_ok()))
            .collect()
    }

    /// ECF over the hash filter with the seed's per-descent allocation
    /// pattern, enumerating up to `limit` feasible mappings (in the same
    /// ascending candidate order as the CSR search, so bounded runs of
    /// the two layouts see identical solution prefixes). Used by the
    /// ablation bench (hashmap side) and the equivalence property test.
    pub fn search_up_to(
        problem: &Problem<'_>,
        filter: &HashFilterMatrix,
        order: &[NodeId],
        preds: &[Vec<Pred>],
        limit: usize,
    ) -> Vec<Mapping> {
        let mut assign = vec![NodeId(u32::MAX); problem.nq()];
        let mut used = NodeBitSet::new(problem.nr());
        let mut out = Vec::new();
        #[allow(clippy::too_many_arguments)]
        fn go(
            filter: &HashFilterMatrix,
            order: &[NodeId],
            preds: &[Vec<Pred>],
            depth: usize,
            assign: &mut Vec<NodeId>,
            used: &mut NodeBitSet,
            out: &mut Vec<Mapping>,
            limit: usize,
        ) {
            if out.len() >= limit {
                return;
            }
            if depth == order.len() {
                out.push(Mapping::new(assign.clone()));
                return;
            }
            let vq = order[depth];
            for r in candidates_at(filter, order, preds, depth, assign, used) {
                assign[vq.index()] = r;
                used.insert(r);
                go(filter, order, preds, depth + 1, assign, used, out, limit);
                used.remove(r);
                assign[vq.index()] = NodeId(u32::MAX);
                if out.len() >= limit {
                    break;
                }
            }
        }
        go(
            filter,
            order,
            preds,
            0,
            &mut assign,
            &mut used,
            &mut out,
            limit,
        );
        out
    }

    /// Every feasible mapping ([`search_up_to`] without a bound).
    pub fn search_all(
        problem: &Problem<'_>,
        filter: &HashFilterMatrix,
        order: &[NodeId],
        preds: &[Vec<Pred>],
    ) -> Vec<Mapping> {
        search_up_to(problem, filter, order, preds, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, Network};

    /// Host: path u - v - w with delays 5, 50; query: single edge.
    fn fixture() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Undirected);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        let e1 = h.add_edge(u, v);
        h.set_edge_attr(e1, "d", 5.0);
        let e2 = h.add_edge(v, w);
        h.set_edge_attr(e2, "d", 50.0);
        (q, h)
    }

    fn build(q: &Network, h: &Network, c: &str) -> (FilterMatrix, SearchStats) {
        let p = Problem::new(q, h, c).unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        (f, s)
    }

    #[test]
    fn both_orientations_recorded_for_undirected() {
        let (q, h) = fixture();
        let (f, stats) = build(&q, &h, "rEdge.d < 10.0");
        // Only edge (u,v) matches; both orientations of the query edge.
        let (a, b) = (NodeId(0), NodeId(1));
        let (u, v) = (NodeId(0), NodeId(1));
        assert_eq!(f.fwd_cell(a, u, b), &[v]);
        assert_eq!(f.fwd_cell(a, v, b), &[u]);
        assert_eq!(f.fwd_cell(b, u, a), &[v]);
        assert_eq!(f.fwd_cell(b, v, a), &[u]);
        assert!(f.fwd_cell(a, NodeId(2), b).is_empty());
        // Base candidates: {u, v} for both query nodes.
        assert_eq!(f.candidate_count(a), 2);
        assert_eq!(f.candidate_count(b), 2);
        // 2 host edges × 2 orientations = 4 evals.
        assert_eq!(stats.constraint_evals, 4);
        assert!(!f.truncated());
    }

    #[test]
    fn unconstrained_query_matches_everything() {
        let (q, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(f.candidate_count(a), 3);
        assert_eq!(f.candidate_count(b), 3);
        // v's cell given a→v must contain both u and w.
        assert_eq!(f.fwd_cell(a, NodeId(1), b), &[NodeId(0), NodeId(2)]);
        // Cells: (a, r, b) and (b, r, a) for r ∈ {u, v, w} = 6 distinct
        // cells; the two cells anchored at v hold two candidates each.
        assert_eq!(f.cell_count(), 6);
    }

    #[test]
    fn node_constraint_prunes_candidates() {
        let (q, mut h) = fixture();
        h.set_node_attr(NodeId(0), "cpu", 8.0);
        h.set_node_attr(NodeId(1), "cpu", 1.0);
        h.set_node_attr(NodeId(2), "cpu", 8.0);
        let p = Problem::new(&q, &h, "rNode.cpu >= 4.0").unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        // v (cpu 1) excluded ⇒ no host edge has both endpoints admissible
        // ⇒ no cells at all.
        assert_eq!(f.cell_count(), 0);
        assert_eq!(f.candidate_count(NodeId(0)), 0);
    }

    #[test]
    fn directed_uses_rev_cells() {
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        h.add_edge(u, v);
        let (f, _) = build(&q, &h, "true");
        // a→u admits b→v via fwd; b→v admits a→u via rev.
        assert_eq!(f.fwd_cell(a, u, b), &[v]);
        assert_eq!(f.rev_cell(b, v, a), &[u]);
        // The wrong orientation is absent.
        assert!(f.fwd_cell(a, v, b).is_empty());
        assert!(f.rev_cell(b, u, a).is_empty());
    }

    #[test]
    fn directed_and_undirected_eval_counts_comparable() {
        // Directed host 2-cycle u⇄v, directed query a→b: every node
        // passes the degree prefilter, so each of the 2 host edges
        // accounts 2 considered orientations — 4 evals, exactly like the
        // undirected twin (1 undirected host edge would account 2; the
        // 2-cycle doubles it). Before the fix the directed run reported
        // 2, making eval counts incomparable across directedness.
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Directed);
        let u = h.add_node("u");
        let v = h.add_node("v");
        h.add_edge(u, v);
        h.add_edge(v, u);
        let (_, stats) = build(&q, &h, "true");
        assert_eq!(stats.constraint_evals, 4);
    }

    #[test]
    fn isolated_query_node_base_is_node_admissible_set() {
        let mut q = Network::new(Direction::Undirected);
        q.add_node("lone");
        let (_, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        assert_eq!(f.candidate_count(NodeId(0)), 3);
    }

    #[test]
    fn deadline_truncates_construction() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut d = Deadline::new(Some(std::time::Duration::ZERO));
        // Force immediate observation.
        d.check_now();
        let mut s = SearchStats::default();
        let f = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        assert!(f.truncated());
    }

    #[test]
    fn type_error_surfaces() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "rEdge.d == \"fast\"").unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        assert!(matches!(
            FilterMatrix::build(&p, &mut d, &mut s),
            Err(ProblemError::Eval(_))
        ));
    }

    #[test]
    fn entry_count_counts_candidates() {
        let (q, h) = fixture();
        let (f, _) = build(&q, &h, "true");
        // Each of the 8 cells holds exactly one candidate here.
        assert_eq!(f.entry_count(), 8);
    }

    #[test]
    fn dense_cells_grow_bitset_mirrors() {
        // Star host: hub adjacent to many leaves ⇒ the cells anchored at
        // the hub are dense and must carry bitset mirrors agreeing with
        // their slices; leaf-anchored cells are sparse and must not.
        let mut h = Network::new(Direction::Undirected);
        let hub = h.add_node("hub");
        let leaves: Vec<NodeId> = (0..CELL_DENSE_MIN + 4)
            .map(|i| h.add_node(format!("l{i}")))
            .collect();
        for &l in &leaves {
            h.add_edge(hub, l);
        }
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (f, _) = build(&q, &h, "true");
        let dense = f.fwd_view(a, hub, b);
        assert_eq!(dense.slice.len(), leaves.len());
        let bits = dense.bits.expect("dense cell must have a bitset mirror");
        assert_eq!(bits.iter().collect::<Vec<_>>(), dense.slice);
        let sparse = f.fwd_view(a, leaves[0], b);
        assert_eq!(sparse.slice, &[hub]);
        assert!(sparse.bits.is_none());
        // Absent cells are empty in both representations.
        let absent = f.fwd_view(b, leaves[0], a);
        assert_eq!(absent.slice, &[hub]); // the symmetric orientation exists
        let no_pair = f.rev_view(a, hub, b);
        assert!(no_pair.slice.is_empty() && no_pair.bits.is_none());
    }

    #[test]
    fn parallel_build_is_bitwise_identical() {
        // A multi-edge query so the scan actually chunks.
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..4).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..4 {
            q.add_edge(qs[i], qs[(i + 1) % 4]);
        }
        let mut h = Network::new(Direction::Undirected);
        let hs: Vec<NodeId> = (0..8).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let e = h.add_edge(hs[i], hs[j]);
                h.set_edge_attr(e, "d", ((i * 5 + j) % 30) as f64);
            }
        }
        let p = Problem::new(&q, &h, "rEdge.d <= 20.0").unwrap();
        let mut d = Deadline::unlimited();
        let mut s_seq = SearchStats::default();
        let seq = FilterMatrix::build(&p, &mut d, &mut s_seq).unwrap();
        for threads in [2, 3, 4, 16] {
            let mut d = Deadline::unlimited();
            let mut s_par = SearchStats::default();
            let par = FilterMatrix::build_par(&p, threads, &mut d, &mut s_par).unwrap();
            assert!(seq == par, "layout diverges at {threads} threads");
            assert_eq!(s_seq.constraint_evals, s_par.constraint_evals);
            assert_eq!(s_seq.filter_cells, s_par.filter_cells);
        }
    }

    #[test]
    fn parallel_build_single_edge_query() {
        // Fewer query edges than threads: falls back to one chunk.
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "rEdge.d < 10.0").unwrap();
        let mut d = Deadline::unlimited();
        let (mut s1, mut s2) = (SearchStats::default(), SearchStats::default());
        let seq = FilterMatrix::build(&p, &mut d, &mut s1).unwrap();
        let par = FilterMatrix::build_par(&p, 8, &mut d, &mut s2).unwrap();
        assert!(seq == par);
        assert_eq!(s1.constraint_evals, s2.constraint_evals);
    }

    #[test]
    fn parallel_build_directed_rev_table() {
        let mut q = Network::new(Direction::Directed);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        q.add_edge(qs[0], qs[1]);
        q.add_edge(qs[1], qs[2]);
        q.add_edge(qs[2], qs[0]);
        let mut h = Network::new(Direction::Directed);
        let hs: Vec<NodeId> = (0..6).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    h.add_edge(hs[i], hs[j]);
                }
            }
        }
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut d = Deadline::unlimited();
        let (mut s1, mut s2) = (SearchStats::default(), SearchStats::default());
        let seq = FilterMatrix::build(&p, &mut d, &mut s1).unwrap();
        let par = FilterMatrix::build_par(&p, 3, &mut d, &mut s2).unwrap();
        assert!(seq == par);
        assert_eq!(s1.constraint_evals, s2.constraint_evals);
    }

    #[test]
    fn parallel_build_surfaces_eval_errors() {
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            q.add_edge(qs[i], qs[(i + 1) % 3]);
        }
        // Triangle host so every node passes the degree prefilter and the
        // (ill-typed) constraint actually gets evaluated.
        let mut h = Network::new(Direction::Undirected);
        let hs: Vec<NodeId> = (0..3).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..3 {
            let e = h.add_edge(hs[i], hs[(i + 1) % 3]);
            h.set_edge_attr(e, "d", 5.0);
        }
        let p = Problem::new(&q, &h, "rEdge.d == \"fast\"").unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        assert!(matches!(
            FilterMatrix::build_par(&p, 3, &mut d, &mut s),
            Err(ProblemError::Eval(_))
        ));
    }

    #[test]
    fn pre_expired_deadline_skips_all_work() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "rEdge.d < 10.0").unwrap();
        let mut d = Deadline::new(Some(std::time::Duration::ZERO));
        let mut s = SearchStats::default();
        let f = FilterMatrix::build_par(&p, 4, &mut d, &mut s).unwrap();
        assert!(f.truncated());
        assert_eq!(f.cell_count(), 0);
        assert_eq!(s.constraint_evals, 0, "no evaluation before the check");
        assert_eq!(s.filter_cells, 0);
    }

    /// Patch `f` (built against the pre-mutation host) with `dirty`
    /// against the post-mutation host, returning the outcome.
    fn patch(
        f: &mut FilterMatrix,
        q: &Network,
        h: &Network,
        c: &str,
        dirty: &[NodeId],
    ) -> PatchOutcome {
        let p = Problem::new(q, h, c).unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        f.patch(&p, dirty, &mut d, &mut s).unwrap()
    }

    #[test]
    fn patch_removal_matches_fresh_build() {
        let (q, mut h) = fixture();
        let c = "rEdge.d < 60.0";
        let (mut patched, _) = build(&q, &h, c);
        // Edge (v, w) leaves the constraint: its candidates must go.
        h.set_edge_attr(netgraph::EdgeId(1), "d", 100.0);
        let outcome = patch(&mut patched, &q, &h, c, &[NodeId(1), NodeId(2)]);
        assert_eq!(outcome, PatchOutcome::Patched);
        let (fresh, _) = build(&q, &h, c);
        assert!(patched == fresh, "patched layout diverges from fresh build");
        assert_eq!(patched.candidate_count(NodeId(0)), 2);
    }

    #[test]
    fn patch_with_empty_dirty_is_a_noop() {
        let (q, h) = fixture();
        let (mut f, _) = build(&q, &h, "rEdge.d < 60.0");
        let (orig, _) = build(&q, &h, "rEdge.d < 60.0");
        assert_eq!(
            patch(&mut f, &q, &h, "rEdge.d < 60.0", &[]),
            PatchOutcome::Patched
        );
        assert!(f == orig);
    }

    #[test]
    fn patch_detects_an_added_candidate() {
        let (q, mut h) = fixture();
        let c = "rEdge.d < 10.0";
        // Only (u, v) matches at build time. Edge (v, w) then drops under
        // the bound: its endpoints gain hits the frozen arena never held —
        // a patch must refuse.
        let (mut f, _) = build(&q, &h, c);
        h.set_edge_attr(netgraph::EdgeId(1), "d", 5.0);
        assert_eq!(
            patch(&mut f, &q, &h, c, &[NodeId(1), NodeId(2)]),
            PatchOutcome::NeedsRebuild
        );
    }

    #[test]
    fn patch_handles_degree_zero_base_rows() {
        let mut q = Network::new(Direction::Undirected);
        q.add_node("lone");
        let (_, mut h) = fixture();
        for r in 0..3 {
            h.set_node_attr(NodeId(r), "cpu", 8.0);
        }
        let c = "rNode.cpu >= 4.0";
        let (f, _) = build(&q, &h, c);
        assert_eq!(f.candidate_count(NodeId(0)), 3);
        // Removal: node w drops below the bound.
        h.set_node_attr(NodeId(2), "cpu", 1.0);
        let mut f2 = f.clone();
        assert_eq!(
            patch(&mut f2, &q, &h, c, &[NodeId(2)]),
            PatchOutcome::Patched
        );
        let (fresh, _) = build(&q, &h, c);
        assert!(f2 == fresh);
        assert_eq!(f2.candidate_count(NodeId(0)), 2);
        // Addition: it climbs back up — the base row cannot grow in place.
        let mut h3 = h.clone();
        h3.set_node_attr(NodeId(2), "cpu", 9.0);
        assert_eq!(
            patch(&mut f2, &q, &h3, c, &[NodeId(2)]),
            PatchOutcome::NeedsRebuild
        );
    }

    #[test]
    fn patch_refuses_truncated_and_reshaped_inputs() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut d = Deadline::new(Some(std::time::Duration::ZERO));
        d.check_now();
        let mut s = SearchStats::default();
        let mut truncated = FilterMatrix::build(&p, &mut d, &mut s).unwrap();
        assert!(truncated.truncated());
        assert_eq!(
            patch(&mut truncated, &q, &h, "true", &[NodeId(0)]),
            PatchOutcome::NeedsRebuild
        );
        // A host that grew a node is a shape change, not a patch.
        let (mut f, _) = build(&q, &h, "true");
        let mut grown = h.clone();
        grown.add_node("x");
        assert_eq!(
            patch(&mut f, &q, &grown, "true", &[NodeId(3)]),
            PatchOutcome::NeedsRebuild
        );
    }

    #[test]
    fn patch_directed_rev_table_matches_fresh_build() {
        let mut q = Network::new(Direction::Directed);
        let qa = q.add_node("a");
        let qb = q.add_node("b");
        q.add_edge(qa, qb);
        let mut h = Network::new(Direction::Directed);
        let hs: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    let e = h.add_edge(hs[i], hs[j]);
                    h.set_edge_attr(e, "d", 5.0);
                }
            }
        }
        let c = "rEdge.d < 10.0";
        let (mut f, _) = build(&q, &h, c);
        // Every edge incident to h3 leaves the constraint.
        let edges: Vec<_> = h.edge_refs().collect();
        for e in edges {
            if e.src == hs[3] || e.dst == hs[3] {
                h.set_edge_attr(e.id, "d", 50.0);
            }
        }
        let dirty: Vec<NodeId> = hs.clone();
        assert_eq!(patch(&mut f, &q, &h, c, &dirty), PatchOutcome::Patched);
        let (fresh, _) = build(&q, &h, c);
        assert!(
            f == fresh,
            "directed patch layout diverges from fresh build"
        );
    }

    #[test]
    fn patch_recrosses_the_dense_cell_threshold() {
        // Hub cell starts dense (bitset mirror); removals push it below
        // CELL_DENSE_MIN and the mirror must disappear exactly as in a
        // fresh build.
        let mut h = Network::new(Direction::Undirected);
        let hub = h.add_node("hub");
        let leaves: Vec<NodeId> = (0..CELL_DENSE_MIN + 2)
            .map(|i| h.add_node(format!("l{i}")))
            .collect();
        for &l in &leaves {
            let e = h.add_edge(hub, l);
            h.set_edge_attr(e, "d", 5.0);
        }
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let c = "rEdge.d < 10.0";
        let (mut f, _) = build(&q, &h, c);
        assert!(f.fwd_view(a, hub, b).bits.is_some(), "starts dense");
        // Cut enough leaves to drop below the density threshold.
        let mut dirty = vec![hub];
        let edges: Vec<_> = h.edge_refs().take(4).collect();
        for e in edges {
            h.set_edge_attr(e.id, "d", 50.0);
            dirty.push(e.dst);
        }
        assert_eq!(patch(&mut f, &q, &h, c, &dirty), PatchOutcome::Patched);
        let (fresh, _) = build(&q, &h, c);
        assert!(f == fresh);
        assert!(f.fwd_view(a, hub, b).bits.is_none(), "mirror dropped");
    }

    #[test]
    fn csr_matches_reference_on_fixture() {
        let (q, h) = fixture();
        let p = Problem::new(&q, &h, "rEdge.d < 60.0").unwrap();
        let mut d = Deadline::unlimited();
        let (mut s1, mut s2) = (SearchStats::default(), SearchStats::default());
        let csr = FilterMatrix::build(&p, &mut d, &mut s1).unwrap();
        let href = reference::HashFilterMatrix::build(&p, &mut d, &mut s2).unwrap();
        assert_eq!(s1.constraint_evals, s2.constraint_evals);
        assert_eq!(csr.cell_count(), href.cell_count());
        assert_eq!(csr.entry_count(), href.entry_count());
        for vj in q.node_ids() {
            for vi in q.node_ids() {
                for rj in h.node_ids() {
                    assert_eq!(csr.fwd_cell(vj, rj, vi), href.fwd_cell(vj, rj, vi));
                    assert_eq!(csr.rev_cell(vj, rj, vi), href.rev_cell(vj, rj, vi));
                }
            }
        }
    }
}

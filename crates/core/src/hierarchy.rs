//! Multilevel substrate hierarchy: repeated coarsening of the host
//! network plus a top-down refinement search.
//!
//! A [`SubstrateHierarchy`] groups host nodes into super-nodes by
//! deterministic greedy matching, level by level, roughly halving the
//! node count each time. Every super-node and super-edge carries
//! *conservatively aggregated* attribute bounds
//! ([`cexpr::BoundsMap`]): a coarse element's bounds contain the exact
//! attribute values of every member, so abstract constraint
//! evaluation ([`cexpr::Compiled::abs_edge`] /
//! [`cexpr::Compiled::abs_node`]) returning
//! [`Verdict::Infeasible`] is a sound prune — no concrete solution
//! can live inside a pruned subtree (coarse-feasible ⊇ fine-feasible).
//!
//! [`SubstrateHierarchy::refine`] walks the hierarchy from the
//! coarsest level down: per query node it keeps a domain of candidate
//! super-nodes (degree gate + abstract node constraint), runs
//! arc-consistency over the query edges using abstract edge verdicts
//! on super-arcs, and descends only into the children of surviving
//! super-nodes. The finest level's survivors expand into per-query-node
//! host [`NodeBitSet`]s that restrict the exact filter build
//! ([`FilterMatrix::build_restricted`](crate::FilterMatrix)), so the
//! exhaustive search touches a small fraction of the full
//! `O(|VQ|·|VR|)` matrix on large substrates.

use std::collections::BTreeMap;

use cexpr::{AbsEdgeCtx, AbsNodeCtx, BoundsMap, Verdict};
use netgraph::{Network, NodeBitSet, NodeId};
use rustc_hash::FxHashMap;

use crate::deadline::Deadline;
use crate::problem::Problem;
use crate::stats::SearchStats;

/// Knobs controlling hierarchy construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchySpec {
    /// Maximum number of coarsening levels to build.
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many super-nodes.
    pub min_nodes: usize,
}

impl Default for HierarchySpec {
    fn default() -> Self {
        Self {
            max_levels: 16,
            min_nodes: 64,
        }
    }
}

/// One coarsening level. `child` indices point into the next finer
/// layer; at level 0 they are host node indices.
struct Level {
    /// Number of super-nodes.
    n: usize,
    /// CSR offsets into `child`.
    child_off: Vec<u32>,
    /// Member indices in the next finer layer (host ids at level 0).
    child: Vec<u32>,
    /// Host leaves under each super-node.
    leaf_count: Vec<u32>,
    /// Max out-degree (host `neighbors`) over member host nodes.
    max_out: Vec<u32>,
    /// Max in-degree (host `in_neighbors`) over member host nodes.
    max_in: Vec<u32>,
    /// Aggregated node-attribute bounds per super-node.
    node_bounds: Vec<BoundsMap>,
    /// Aggregated bounds over member edges *internal* to the
    /// super-node; `None` when no internal edge exists.
    self_bounds: Vec<Option<BoundsMap>>,
    /// Super-arc endpoints, sorted by `(src, dst)`, `src != dst`.
    arc_src: Vec<u32>,
    arc_dst: Vec<u32>,
    /// Aggregated edge bounds per super-arc.
    arc_bounds: Vec<BoundsMap>,
    /// CSR over the arc list grouped by `src`.
    out_off: Vec<u32>,
    /// CSR over `in_arc` grouped by `dst`.
    in_off: Vec<u32>,
    /// Arc indices sorted by `(dst, src)`.
    in_arc: Vec<u32>,
}

impl Level {
    fn children(&self, sup: usize) -> &[u32] {
        &self.child[self.child_off[sup] as usize..self.child_off[sup + 1] as usize]
    }

    fn out_arcs(&self, sup: usize) -> std::ops::Range<usize> {
        self.out_off[sup] as usize..self.out_off[sup + 1] as usize
    }

    fn in_arcs(&self, sup: usize) -> &[u32] {
        &self.in_arc[self.in_off[sup] as usize..self.in_off[sup + 1] as usize]
    }

    /// The identity level: one super-node per host node. Used only as
    /// the seed for the first `coarsen` call, never stored.
    fn identity(host: &Network) -> Level {
        let n = host.node_count();
        let mut max_out = Vec::with_capacity(n);
        let mut max_in = Vec::with_capacity(n);
        let mut node_bounds = Vec::with_capacity(n);
        for v in host.node_ids() {
            max_out.push(host.neighbors(v).len() as u32);
            max_in.push(host.in_neighbors(v).len() as u32);
            node_bounds.push(BoundsMap::from_node(host, v));
        }
        // `neighbors` lists are sorted, so iterating nodes in order
        // yields arcs already sorted by (src, dst). Undirected edges
        // appear in both endpoint lists and thus as both arcs.
        let mut arc_src = Vec::new();
        let mut arc_dst = Vec::new();
        let mut arc_bounds: Vec<BoundsMap> = Vec::new();
        for u in host.node_ids() {
            for &(w, e) in host.neighbors(u) {
                if w == u {
                    continue; // self-loops carry no pairwise cell
                }
                let b = BoundsMap::from_edge(host, e);
                if arc_src.last() == Some(&u.0) && arc_dst.last() == Some(&w.0) {
                    // parallel edge between the same ordered pair
                    arc_bounds.last_mut().expect("arc exists").merge_from(&b);
                } else {
                    arc_src.push(u.0);
                    arc_dst.push(w.0);
                    arc_bounds.push(b);
                }
            }
        }
        let (out_off, in_off, in_arc) = build_arc_csr(n, &arc_src, &arc_dst);
        Level {
            n,
            child_off: Vec::new(),
            child: Vec::new(),
            leaf_count: vec![1; n],
            max_out,
            max_in,
            node_bounds,
            self_bounds: vec![None; n],
            arc_src,
            arc_dst,
            arc_bounds,
            out_off,
            in_off,
            in_arc,
        }
    }
}

/// Build the out-CSR and in-CSR over an arc list sorted by `(src, dst)`.
fn build_arc_csr(n: usize, arc_src: &[u32], arc_dst: &[u32]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let m = arc_src.len();
    let mut out_off = vec![0u32; n + 1];
    for &s in arc_src {
        out_off[s as usize + 1] += 1;
    }
    for i in 0..n {
        out_off[i + 1] += out_off[i];
    }
    let mut in_count = vec![0u32; n + 1];
    for &d in arc_dst {
        in_count[d as usize + 1] += 1;
    }
    for i in 0..n {
        in_count[i + 1] += in_count[i];
    }
    let in_off = in_count.clone();
    let mut cursor = in_count;
    let mut in_arc = vec![0u32; m];
    for (idx, &d) in arc_dst.iter().enumerate() {
        let slot = cursor[d as usize];
        in_arc[slot as usize] = idx as u32;
        cursor[d as usize] += 1;
    }
    (out_off, in_off, in_arc)
}

/// Coarsen one level by greedy matching: scan nodes in ascending id
/// order, pair each unmatched node with its first unmatched neighbor
/// (out first, then in), then pair leftover singletons with each other
/// so every level at least halves (up to rounding). Deterministic by
/// construction.
fn coarsen(fine: &Level) -> Level {
    let n = fine.n;
    const UNMATCHED: u32 = u32::MAX;
    let mut partner = vec![UNMATCHED; n];
    for u in 0..n {
        if partner[u] != UNMATCHED {
            continue;
        }
        let mut found = None;
        for a in fine.out_arcs(u) {
            let w = fine.arc_dst[a] as usize;
            if w != u && partner[w] == UNMATCHED {
                found = Some(w);
                break;
            }
        }
        if found.is_none() {
            for &a in fine.in_arcs(u) {
                let w = fine.arc_src[a as usize] as usize;
                if w != u && partner[w] == UNMATCHED {
                    found = Some(w);
                    break;
                }
            }
        }
        if let Some(w) = found {
            partner[u] = w as u32;
            partner[w] = u as u32;
        }
    }
    // Pair leftover singletons (ascending) so progress is guaranteed
    // even on stars and other matchings-resistant shapes.
    let mut prev_single: Option<usize> = None;
    for u in 0..n {
        if partner[u] != UNMATCHED {
            continue;
        }
        match prev_single.take() {
            None => prev_single = Some(u),
            Some(p) => {
                partner[p] = u as u32;
                partner[u] = p as u32;
            }
        }
    }
    // Assign coarse ids in ascending order of each group's smallest
    // member, so the mapping is stable and deterministic.
    const UNSET: u32 = u32::MAX;
    let mut group_of = vec![UNSET; n];
    let mut n_new = 0u32;
    for u in 0..n {
        if group_of[u] != UNSET {
            continue;
        }
        group_of[u] = n_new;
        if partner[u] != UNMATCHED {
            group_of[partner[u] as usize] = n_new;
        }
        n_new += 1;
    }
    let n_new = n_new as usize;

    // Children CSR + aggregated node state.
    let mut child_off = vec![0u32; n_new + 1];
    for &g in &group_of {
        child_off[g as usize + 1] += 1;
    }
    for i in 0..n_new {
        child_off[i + 1] += child_off[i];
    }
    let mut cursor = child_off.clone();
    let mut child = vec![0u32; n];
    for (u, &g) in group_of.iter().enumerate() {
        child[cursor[g as usize] as usize] = u as u32;
        cursor[g as usize] += 1;
    }

    let mut leaf_count = vec![0u32; n_new];
    let mut max_out = vec![0u32; n_new];
    let mut max_in = vec![0u32; n_new];
    let mut node_bounds: Vec<Option<BoundsMap>> = vec![None; n_new];
    let mut self_bounds: Vec<Option<BoundsMap>> = vec![None; n_new];
    for (u, &g) in group_of.iter().enumerate() {
        let g = g as usize;
        leaf_count[g] += fine.leaf_count[u];
        max_out[g] = max_out[g].max(fine.max_out[u]);
        max_in[g] = max_in[g].max(fine.max_in[u]);
        merge_opt(&mut node_bounds[g], &fine.node_bounds[u]);
        if let Some(sb) = &fine.self_bounds[u] {
            merge_opt(&mut self_bounds[g], sb);
        }
    }
    let node_bounds: Vec<BoundsMap> = node_bounds
        .into_iter()
        .map(|b| b.expect("every group has a member"))
        .collect();

    // Super-arcs: fine arcs between distinct groups accumulate into a
    // BTreeMap (deterministic order); intra-group arcs fold into the
    // group's self bounds.
    let mut arcs: BTreeMap<(u32, u32), BoundsMap> = BTreeMap::new();
    for a in 0..fine.arc_src.len() {
        let gs = group_of[fine.arc_src[a] as usize];
        let gd = group_of[fine.arc_dst[a] as usize];
        let b = &fine.arc_bounds[a];
        if gs == gd {
            merge_opt(&mut self_bounds[gs as usize], b);
        } else {
            match arcs.entry((gs, gd)) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(b.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_from(b);
                }
            }
        }
    }
    let mut arc_src = Vec::with_capacity(arcs.len());
    let mut arc_dst = Vec::with_capacity(arcs.len());
    let mut arc_bounds = Vec::with_capacity(arcs.len());
    for ((s, d), b) in arcs {
        arc_src.push(s);
        arc_dst.push(d);
        arc_bounds.push(b);
    }
    let (out_off, in_off, in_arc) = build_arc_csr(n_new, &arc_src, &arc_dst);
    Level {
        n: n_new,
        child_off,
        child,
        leaf_count,
        max_out,
        max_in,
        node_bounds,
        self_bounds,
        arc_src,
        arc_dst,
        arc_bounds,
        out_off,
        in_off,
        in_arc,
    }
}

fn merge_opt(dst: &mut Option<BoundsMap>, src: &BoundsMap) {
    match dst {
        None => *dst = Some(src.clone()),
        Some(d) => d.merge_from(src),
    }
}

/// Outcome of [`SubstrateHierarchy::refine`].
#[derive(Debug)]
pub enum Refinement {
    /// Some query node's domain emptied at a coarse level: the problem
    /// has **no** solution (the prune is sound), without ever touching
    /// the full filter matrix.
    Infeasible,
    /// Per-query-node host candidate sets covering every solution;
    /// feed to [`FilterMatrix::build_restricted`](crate::FilterMatrix).
    Restricted(Vec<NodeBitSet>),
    /// The deadline expired during refinement.
    TimedOut,
}

/// A multilevel coarsening of one host network. Build once per
/// `(host, epoch)` — construction only reads the host, so the same
/// hierarchy serves every query against that snapshot.
pub struct SubstrateHierarchy {
    host_nodes: usize,
    /// `levels[0]` is the finest coarsening (children are host node
    /// ids); the last entry is the coarsest.
    levels: Vec<Level>,
}

impl SubstrateHierarchy {
    /// Coarsen `host` until a level has at most `spec.min_nodes`
    /// super-nodes or `spec.max_levels` levels exist.
    pub fn build(host: &Network, spec: &HierarchySpec) -> Self {
        let floor = spec.min_nodes.max(1);
        let mut chain = vec![Level::identity(host)];
        while chain.len() - 1 < spec.max_levels {
            let fine = chain.last().expect("chain is never empty");
            if fine.n <= floor {
                break;
            }
            let coarse = coarsen(fine);
            if coarse.n >= fine.n {
                break;
            }
            chain.push(coarse);
        }
        chain.remove(0); // drop the identity seed; level-0 children are host ids
        SubstrateHierarchy {
            host_nodes: host.node_count(),
            levels: chain,
        }
    }

    /// Number of coarsening levels (0 when the host was already at or
    /// below the `min_nodes` floor).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Host node count this hierarchy was built from.
    pub fn host_nodes(&self) -> usize {
        self.host_nodes
    }

    /// Super-node count at `level` (0 = finest).
    pub fn level_size(&self, level: usize) -> usize {
        self.levels[level].n
    }

    /// Super-node counts from finest to coarsest.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.n).collect()
    }

    /// All host leaves under super-node `sup` of `level`, ascending.
    pub fn leaf_members(&self, level: usize, sup: usize) -> Vec<NodeId> {
        let mut frontier = vec![sup as u32];
        for li in (0..=level).rev() {
            let lvl = &self.levels[li];
            let mut next = Vec::new();
            for &s in &frontier {
                next.extend_from_slice(lvl.children(s as usize));
            }
            frontier = next;
        }
        frontier.sort_unstable();
        frontier.into_iter().map(NodeId).collect()
    }

    /// Aggregated node bounds of super-node `sup` at `level`.
    pub fn node_bounds(&self, level: usize, sup: usize) -> &BoundsMap {
        &self.levels[level].node_bounds[sup]
    }

    /// Aggregated bounds of edges internal to super-node `sup`.
    pub fn self_bounds(&self, level: usize, sup: usize) -> Option<&BoundsMap> {
        self.levels[level].self_bounds[sup].as_ref()
    }

    /// Aggregated bounds of the super-arc `s → t`, if present.
    pub fn arc_bounds_between(&self, level: usize, s: usize, t: usize) -> Option<&BoundsMap> {
        let lvl = &self.levels[level];
        lvl.out_arcs(s)
            .find(|&a| lvl.arc_dst[a] == t as u32)
            .map(|a| &lvl.arc_bounds[a])
    }

    /// Top-down refinement: per-query-node candidate domains are
    /// filtered (degree gate + abstract node constraint) and propagated
    /// to arc-consistency with abstract edge verdicts at each level,
    /// descending only into surviving super-nodes' children.
    ///
    /// Updates `stats` hierarchy counters (`hier_levels`,
    /// `hier_pruned`, `hier_expanded_cells`, `hier_full_cells`) plus
    /// `constraint_evals`/`prunes` for the abstract work performed.
    pub fn refine(
        &self,
        problem: &Problem<'_>,
        deadline: &mut Deadline,
        stats: &mut SearchStats,
    ) -> Refinement {
        let q = problem.query;
        let nq = problem.nq();
        stats.hier_levels = self.levels.len() as u64;
        stats.hier_full_cells = (nq as u64) * (self.host_nodes as u64);
        if self.levels.is_empty() {
            let allowed: Vec<NodeBitSet> =
                (0..nq).map(|_| NodeBitSet::full(self.host_nodes)).collect();
            stats.hier_expanded_cells = stats.hier_full_cells;
            return Refinement::Restricted(allowed);
        }

        let q_out: Vec<u32> = q.node_ids().map(|v| q.neighbors(v).len() as u32).collect();
        let q_in: Vec<u32> = q
            .node_ids()
            .map(|v| q.in_neighbors(v).len() as u32)
            .collect();
        let qedges: Vec<netgraph::EdgeRef> = q.edge_refs().collect();

        let mut pruned_total = 0u64;
        let mut prev: Option<Vec<NodeBitSet>> = None;
        for li in (0..self.levels.len()).rev() {
            if deadline.check_now() {
                return Refinement::TimedOut;
            }
            let lvl = &self.levels[li];
            // Seed this level's domains: every super-node at the
            // coarsest level, else the children of coarser survivors.
            let mut domains: Vec<NodeBitSet> = Vec::with_capacity(nq);
            let mut considered = 0u64;
            let mut admitted = 0u64;
            for v in 0..nq {
                let mut dom = NodeBitSet::new(lvl.n);
                let mut admit = |s: usize, stats: &mut SearchStats| {
                    considered += 1;
                    if lvl.max_out[s] < q_out[v] || lvl.max_in[s] < q_in[v] {
                        return;
                    }
                    if let Some(node_expr) = problem.node_expr() {
                        stats.constraint_evals += 1;
                        let verdict = node_expr.abs_node(&AbsNodeCtx {
                            q,
                            v_node: NodeId(v as u32),
                            r_node: &lvl.node_bounds[s],
                        });
                        if verdict == Verdict::Infeasible {
                            return;
                        }
                    }
                    admitted += 1;
                    dom.insert(NodeId(s as u32));
                };
                match &prev {
                    None => {
                        for s in 0..lvl.n {
                            admit(s, stats);
                        }
                    }
                    Some(coarser) => {
                        let coarser_lvl = &self.levels[li + 1];
                        for sup in coarser[v].iter() {
                            for &c in coarser_lvl.children(sup.index()) {
                                admit(c as usize, stats);
                            }
                        }
                    }
                }
                if dom.is_empty() {
                    stats.hier_pruned = pruned_total + (considered - admitted);
                    return Refinement::Infeasible;
                }
                domains.push(dom);
            }
            pruned_total += considered - admitted;

            // Arc-consistency over query edges with lazily memoized
            // abstract super-arc verdicts (true = Maybe).
            let mut arc_memo: FxHashMap<(u32, u32), bool> = FxHashMap::default();
            let mut self_memo: FxHashMap<(u32, u32), bool> = FxHashMap::default();
            let mut changed = true;
            while changed {
                changed = false;
                for (ei, e) in qedges.iter().enumerate() {
                    if deadline.expired() {
                        return Refinement::TimedOut;
                    }
                    let (a, b) = (e.src.index(), e.dst.index());
                    let edge_maybe =
                        |arc: usize,
                         stats: &mut SearchStats,
                         memo: &mut FxHashMap<(u32, u32), bool>| {
                            *memo.entry((ei as u32, arc as u32)).or_insert_with(|| {
                                stats.constraint_evals += 1;
                                let verdict = problem.edge_expr().abs_edge(&AbsEdgeCtx {
                                    q,
                                    v_edge: e.id,
                                    v_src: e.src,
                                    v_dst: e.dst,
                                    r_edge: &lvl.arc_bounds[arc],
                                    r_src: &lvl.node_bounds[lvl.arc_src[arc] as usize],
                                    r_dst: &lvl.node_bounds[lvl.arc_dst[arc] as usize],
                                });
                                verdict == Verdict::Maybe
                            })
                        };
                    let self_maybe =
                        |s: usize,
                         stats: &mut SearchStats,
                         memo: &mut FxHashMap<(u32, u32), bool>| {
                            *memo.entry((ei as u32, s as u32)).or_insert_with(|| {
                                let Some(sb) = &lvl.self_bounds[s] else {
                                    return false;
                                };
                                stats.constraint_evals += 1;
                                let verdict = problem.edge_expr().abs_edge(&AbsEdgeCtx {
                                    q,
                                    v_edge: e.id,
                                    v_src: e.src,
                                    v_dst: e.dst,
                                    r_edge: sb,
                                    r_src: &lvl.node_bounds[s],
                                    r_dst: &lvl.node_bounds[s],
                                });
                                verdict == Verdict::Maybe
                            })
                        };

                    // Revise the source side: S ∈ D_a needs an out-arc
                    // to some T ∈ D_b (or an internal edge when the
                    // whole query edge fits inside S).
                    let mut dropped: Vec<NodeId> = Vec::new();
                    for sid in domains[a].iter() {
                        let s = sid.index();
                        let mut supported = false;
                        for arc in lvl.out_arcs(s) {
                            let t = lvl.arc_dst[arc] as usize;
                            if domains[b].contains(NodeId(t as u32))
                                && edge_maybe(arc, stats, &mut arc_memo)
                            {
                                supported = true;
                                break;
                            }
                        }
                        if !supported
                            && domains[b].contains(sid)
                            && self_maybe(s, stats, &mut self_memo)
                        {
                            supported = true;
                        }
                        if !supported {
                            dropped.push(sid);
                        }
                    }
                    for sid in dropped.drain(..) {
                        domains[a].remove(sid);
                        stats.prunes += 1;
                        pruned_total += 1;
                        changed = true;
                    }
                    if domains[a].is_empty() {
                        stats.hier_pruned = pruned_total;
                        return Refinement::Infeasible;
                    }

                    // Revise the target side via in-arcs.
                    for tid in domains[b].iter() {
                        let t = tid.index();
                        let mut supported = false;
                        for &arc in lvl.in_arcs(t) {
                            let arc = arc as usize;
                            let s = lvl.arc_src[arc] as usize;
                            if domains[a].contains(NodeId(s as u32))
                                && edge_maybe(arc, stats, &mut arc_memo)
                            {
                                supported = true;
                                break;
                            }
                        }
                        if !supported
                            && domains[a].contains(tid)
                            && self_maybe(t, stats, &mut self_memo)
                        {
                            supported = true;
                        }
                        if !supported {
                            dropped.push(tid);
                        }
                    }
                    for tid in dropped.drain(..) {
                        domains[b].remove(tid);
                        stats.prunes += 1;
                        pruned_total += 1;
                        changed = true;
                    }
                    if domains[b].is_empty() {
                        stats.hier_pruned = pruned_total;
                        return Refinement::Infeasible;
                    }
                }
            }
            prev = Some(domains);
        }

        // Expand level-0 survivors into host candidate sets.
        let lvl0 = &self.levels[0];
        let domains = prev.expect("at least one level was refined");
        let mut allowed = Vec::with_capacity(nq);
        let mut expanded = 0u64;
        for dom in &domains {
            let mut bs = NodeBitSet::new(self.host_nodes);
            for sup in dom.iter() {
                for &c in lvl0.children(sup.index()) {
                    bs.insert(NodeId(c));
                }
            }
            expanded += bs.len() as u64;
            allowed.push(bs);
        }
        stats.hier_pruned = pruned_total;
        stats.hier_expanded_cells = expanded;
        Refinement::Restricted(allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn ring(n: usize) -> Network {
        let mut net = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| net.add_node(format!("n{i}"))).collect();
        for i in 0..n {
            let e = net.add_edge(ids[i], ids[(i + 1) % n]);
            net.set_edge_attr(e, "bw", 10.0);
        }
        for (i, &v) in ids.iter().enumerate() {
            net.set_node_attr(v, "cpu", (i % 7) as f64);
        }
        net
    }

    #[test]
    fn levels_halve_and_partition() {
        let host = ring(64);
        let spec = HierarchySpec {
            max_levels: 8,
            min_nodes: 4,
        };
        let h = SubstrateHierarchy::build(&host, &spec);
        assert!(h.levels() >= 3);
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "sizes must strictly decrease: {sizes:?}");
        }
        assert_eq!(sizes[0], 32, "greedy matching halves a ring exactly");
        // Every level's leaves partition the host node set.
        for li in 0..h.levels() {
            let mut seen: Vec<NodeId> = Vec::new();
            for s in 0..h.level_size(li) {
                seen.extend(h.leaf_members(li, s));
            }
            seen.sort_unstable();
            assert_eq!(seen.len(), 64);
            assert!(seen.windows(2).all(|w| w[0] != w[1]), "no leaf repeats");
        }
    }

    #[test]
    fn bounds_contain_member_attrs() {
        let host = ring(32);
        let h = SubstrateHierarchy::build(
            &host,
            &HierarchySpec {
                max_levels: 8,
                min_nodes: 2,
            },
        );
        let cpu = host.schema().get("cpu").expect("cpu attr interned");
        for li in 0..h.levels() {
            for s in 0..h.level_size(li) {
                let bounds = h.node_bounds(li, s);
                for v in h.leaf_members(li, s) {
                    let val = host.node_attr(v, cpu);
                    let ab = bounds.get(cpu).expect("cpu bounds aggregated");
                    assert!(ab.contains(val), "level {li} super {s} node {v:?}");
                }
            }
        }
    }

    #[test]
    fn min_nodes_floor_respected() {
        let host = ring(16);
        let h = SubstrateHierarchy::build(
            &host,
            &HierarchySpec {
                max_levels: 16,
                min_nodes: 16,
            },
        );
        assert_eq!(h.levels(), 0, "host already at the floor");
        let h2 = SubstrateHierarchy::build(
            &host,
            &HierarchySpec {
                max_levels: 1,
                min_nodes: 2,
            },
        );
        assert_eq!(h2.levels(), 1);
        assert_eq!(h2.level_size(0), 8);
    }
}

//! # netembed — the network embedding engine
//!
//! This crate implements the paper's contribution: three complete-and-
//! correct search algorithms for embedding a constrained *query (virtual)
//! network* into a *hosting (real) network*, plus the machinery around them
//! (candidate filters, node orderings, deadlines, outcome classification,
//! and an independent mapping verifier).
//!
//! ## Algorithms (§V of the paper)
//!
//! * [`ecf`] — **Exhaustive search with Constraint Filtering**: builds the
//!   3-D filter matrix `F[(v, r, v′)] → {r′}` by evaluating the
//!   constraint expression for every (query edge, host edge) pair, orders
//!   query nodes ascending by candidate count (Lemma 1), and runs a DFS of
//!   the permutation tree that intersects filters at every extension.
//!   Complete: finds *all* feasible embeddings. The filter is stored as a
//!   flat CSR arena — a dense `(vj, vi)` pair table over per-`rj` offset
//!   rows into one contiguous candidate vector — so cell lookup is O(1)
//!   with no hashing, and dense cells carry bitset mirrors that the DFS
//!   intersects word-by-word into per-depth reusable scratch masks
//!   (zero allocation on the hot path). Construction itself parallelizes
//!   over query edges ([`FilterMatrix::build_par`]) with a
//!   bitwise-identical result. See [`filter`] for the layout and
//!   `benches/abl_filter_layout.rs` for the hashmap-vs-CSR ablation.
//! * [`rwb`] — **Random Walk with Backtracking**: the same filters, but
//!   candidates are tried in random order and the search stops at the first
//!   feasible embedding.
//! * [`lns`] — **Lazy Neighborhood Search**: keeps no global filter state
//!   (worst-case filter space is O(n⁵), §V-C); instead grows a covered set
//!   from a maximum-degree seed, always extending by the neighbor with the
//!   most links into the covered set and checking connecting edges lazily.
//! * [`parallel`] — a parallel ECF that fans the root level of the
//!   permutation tree out over a thread pool (the paper's "distributed
//!   implementation" direction, §VIII), building the filter with the same
//!   thread budget.
//!
//! ## Batching and scratch reuse
//!
//! Every search's mutable state (per-depth DFS frames, assignment array,
//! used-node mask, LNS buffers) lives in a caller-held
//! [`scratch::SearchScratch`], so services embedding thousands of queries
//! allocate the arenas once. Each algorithm exposes `*_with_scratch`
//! variants plus `*_prebuilt` entry points that additionally reuse one
//! [`FilterMatrix`] across runs; [`Engine::run_prebuilt`] combines both,
//! and the `service` crate's `submit_batch` is the end-to-end batch path.
//! For the parallel search, [`scratch::ParallelScratch`] keeps one
//! scratch per worker plus a persistent [`pool::WorkerPool`]: the worker
//! threads park between calls instead of being re-spawned per search, so
//! a warm caller's parallel runs (and pooled filter builds,
//! [`FilterMatrix::build_par_pooled`]) are spawn-free —
//! [`SearchStats::pool_reuse`] reports how many warm threads a run
//! found.
//!
//! ## Quick start
//!
//! ```
//! use netembed::{Engine, Options, Algorithm, SearchMode};
//! use netgraph::{Direction, Network};
//!
//! // Host: a triangle with delays.
//! let mut host = Network::new(Direction::Undirected);
//! let (a, b, c) = (host.add_node("a"), host.add_node("b"), host.add_node("c"));
//! for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
//!     let e = host.add_edge(u, v);
//!     host.set_edge_attr(e, "avgDelay", d);
//! }
//!
//! // Query: one edge requesting avgDelay ≤ 15.
//! let mut query = Network::new(Direction::Undirected);
//! let (x, y) = (query.add_node("x"), query.add_node("y"));
//! query.add_edge(x, y);
//!
//! let engine = Engine::new(&host);
//! let result = engine
//!     .embed(&query, "rEdge.avgDelay <= 15.0", &Options::default())
//!     .unwrap();
//! // Only the (a, b) edge qualifies, in both orientations.
//! assert_eq!(result.mappings.len(), 2);
//!
//! // First-match mode with a different algorithm:
//! let opts = Options { algorithm: Algorithm::Lns, mode: SearchMode::First, ..Default::default() };
//! let result = engine.embed(&query, "rEdge.avgDelay <= 15.0", &opts).unwrap();
//! assert_eq!(result.mappings.len(), 1);
//! ```

pub mod automorph;
pub mod deadline;
pub mod ecf;
pub mod engine;
pub mod filter;
pub mod hierarchy;
pub mod lns;
pub mod mapping;
pub mod order;
pub mod outcome;
pub mod parallel;
pub mod pathmap;
pub mod pool;
pub mod problem;
pub mod rwb;
pub mod scratch;
pub mod sink;
pub mod stats;
pub mod verify;

pub use deadline::Deadline;
pub use engine::{Algorithm, EmbedResult, Engine, Options, SearchMode};
pub use filter::{FilterMatrix, PatchOutcome};
pub use hierarchy::{HierarchySpec, Refinement, SubstrateHierarchy};
pub use mapping::Mapping;
pub use order::NodeOrder;
pub use outcome::Outcome;
pub use parallel::StealPolicy;
pub use pool::WorkerPool;
pub use problem::{Problem, ProblemError};
pub use scratch::{EmbedScratch, ParallelScratch, SearchScratch};
pub use sink::{CollectAll, CollectUpTo, CountOnly, SinkControl, SolutionSink};
pub use stats::{BuildCharge, HistogramSnapshot, LatencyHistogram, SearchStats, LATENCY_BUCKETS};
pub use verify::{check_mapping, VerifyError};

//! Lazy Neighborhood Search (LNS) — §V-C, Figures 6 and 7.
//!
//! ECF/RWB precompute filter matrices whose worst-case space is
//! O(n·|E_Q|·|E_R|) — prohibitive for under-constrained queries over dense
//! hosts. LNS instead keeps only O(depth) state: at any point the query
//! nodes are partitioned into *Covered* (already matched), *Neighbors*
//! (adjacent to a covered node) and *External* (everything else). Each step
//! picks the neighbor with the most links into the covered set (heuristic 2
//! — the largest conjunction of constraints, pruning earliest), enumerates
//! host candidates lazily by scanning the host adjacency of one covered
//! anchor, and recurses. The very first vertex is the query's maximum-
//! degree node (heuristic 1 — grow a tightly-connected core).
//!
//! Constraint evaluations are memoized in a positive/negative cache keyed
//! by `(query edge, host src, host dst)` — the moral equivalent of the
//! paper's F/F̄ pair, built lazily instead of eagerly. The cache can be
//! disabled for the `abl-negcache` ablation.

use crate::deadline::Deadline;
use crate::ecf::SearchEnd;
use crate::mapping::Mapping;
use crate::problem::{Problem, ProblemError};
use crate::scratch::SearchScratch;
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use netgraph::NodeId;

/// LNS tuning knobs (all default to the paper's heuristics).
#[derive(Debug, Clone, Copy)]
pub struct LnsConfig {
    /// Memoize constraint evaluations per (query edge, host pair).
    pub memo_cache: bool,
    /// Seed the covered set with the maximum-degree query node
    /// (heuristic 1). `false` uses input order (ablation).
    pub max_degree_seed: bool,
    /// Extend by the neighbor with the most covered links (heuristic 2).
    /// `false` picks an arbitrary neighbor (ablation).
    pub most_constrained_neighbor: bool,
}

impl Default for LnsConfig {
    fn default() -> Self {
        LnsConfig {
            memo_cache: true,
            max_degree_seed: true,
            most_constrained_neighbor: true,
        }
    }
}

/// Run LNS, streaming feasible embeddings into `sink`.
pub fn search(
    problem: &Problem<'_>,
    config: &LnsConfig,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> Result<SearchEnd, ProblemError> {
    search_with_scratch(
        problem,
        config,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search`] with a caller-held [`SearchScratch`]: the per-depth
/// candidate buffers, anchor list, dedup mask and memo-cache capacity are
/// reused across searches (the memo *contents* are cleared — they are
/// problem-specific).
pub fn search_with_scratch(
    problem: &Problem<'_>,
    config: &LnsConfig,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Result<SearchEnd, ProblemError> {
    let start = std::time::Instant::now();
    scratch.ensure(problem.nq(), problem.nr());
    scratch.ensure_lns(problem.nq(), problem.nr());
    let mut state = LnsState::new(problem, config, scratch);
    let end = state.extend(deadline, sink, stats)?;
    stats.timed_out |= end == SearchEnd::Timeout;
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    Ok(end)
}

/// Tri-state memo entry packed as u8.
const MEMO_FAIL: u8 = 0;
const MEMO_OK: u8 = 1;

/// The search state. Every buffer lives in the borrowed
/// [`SearchScratch`] (`assign`, `used`, and the `lns_*` fields), already
/// sized and reset by `ensure`; only the recursion depth is local.
struct LnsState<'p, 'a, 's> {
    problem: &'p Problem<'a>,
    config: LnsConfig,
    scr: &'s mut SearchScratch,
    depth: usize,
}

impl<'p, 'a, 's> LnsState<'p, 'a, 's> {
    fn new(problem: &'p Problem<'a>, config: &LnsConfig, scratch: &'s mut SearchScratch) -> Self {
        LnsState {
            problem,
            config: *config,
            scr: scratch,
            depth: 0,
        }
    }

    /// Pick the next query node to cover: the neighbor (of the covered
    /// set) with the most covered links; when there are no neighbors —
    /// start of the search or a new component — the maximum-degree
    /// uncovered node.
    fn pick_next(&self) -> NodeId {
        let q = self.problem.query;
        let mut best: Option<NodeId> = None;
        let mut best_links = 0u32;
        let mut best_deg = 0usize;
        for v in q.node_ids() {
            if self.scr.lns_covered[v.index()] {
                continue;
            }
            let links = self.scr.lns_covered_links[v.index()];
            let deg = q.total_degree(v);
            let replace = match best {
                None => true,
                Some(_b) => {
                    if self.config.most_constrained_neighbor {
                        (links, deg) > (best_links, best_deg)
                    } else {
                        // Ablation: arbitrary (first found) neighbor, but
                        // still prefer neighbors over externals.
                        links > 0 && best_links == 0
                    }
                }
            };
            if replace {
                best = Some(v);
                best_links = links;
                best_deg = deg;
            }
        }
        let mut chosen = best.expect("at least one uncovered node");
        // Seed choice (depth 0 or new component): max degree.
        if best_links == 0 && self.config.max_degree_seed {
            chosen = q
                .node_ids()
                .filter(|v| !self.scr.lns_covered[v.index()])
                .max_by_key(|&v| (q.total_degree(v), std::cmp::Reverse(v)))
                .expect("uncovered node");
        }
        chosen
    }

    /// Does `(vn → r)` satisfy the query edge between `vn` and covered
    /// neighbor `vc` (mapped to `rc`)? Consults/updates the memo cache.
    fn edge_pair_ok(
        &mut self,
        vn: NodeId,
        r: NodeId,
        vc: NodeId,
        rc: NodeId,
        stats: &mut SearchStats,
    ) -> Result<bool, ProblemError> {
        let q = self.problem.query;
        // The query may have the edge in either (or for directed graphs,
        // both) orientations; all present orientations must hold.
        let mut ok = true;
        if let Some(qe) = q.find_edge(vn, vc) {
            // Careful with undirected storage: fetch stored endpoints so
            // the memo key and the evaluation orientation are canonical.
            let (qs, qd) = q.edge_endpoints(qe);
            let (rs, rd) = if qs == vn { (r, rc) } else { (rc, r) };
            ok &= self.cached_pair(qe.0, qs, qd, rs, rd, stats)?;
        }
        if ok && !q.is_undirected() {
            if let Some(qe) = q.find_edge(vc, vn) {
                let (qs, qd) = q.edge_endpoints(qe);
                let (rs, rd) = if qs == vn { (r, rc) } else { (rc, r) };
                ok &= self.cached_pair(qe.0, qs, qd, rs, rd, stats)?;
            }
        }
        Ok(ok)
    }

    fn cached_pair(
        &mut self,
        qe: u32,
        qs: NodeId,
        qd: NodeId,
        rs: NodeId,
        rd: NodeId,
        stats: &mut SearchStats,
    ) -> Result<bool, ProblemError> {
        if self.config.memo_cache {
            if let Some(&m) = self.scr.lns_memo.get(&(qe, rs.0, rd.0)) {
                return Ok(m == MEMO_OK);
            }
        }
        stats.constraint_evals += 1;
        let ok = self.problem.pair_ok(netgraph::EdgeId(qe), qs, qd, rs, rd)?;
        if self.config.memo_cache {
            self.scr
                .lns_memo
                .insert((qe, rs.0, rd.0), if ok { MEMO_OK } else { MEMO_FAIL });
        }
        Ok(ok)
    }

    /// Candidate host nodes for `vn` given the current covered set,
    /// appended to `out` (cleared first). Scratch state (`anchors`,
    /// `seen`) is reused across calls.
    fn fill_candidates(
        &mut self,
        vn: NodeId,
        out: &mut Vec<NodeId>,
        stats: &mut SearchStats,
    ) -> Result<(), ProblemError> {
        out.clear();
        let q = self.problem.query;
        let r_net = self.problem.host;

        // Covered neighbors of vn with their host images. The buffer is
        // taken out of `self` (and restored before returning) because the
        // loop below needs `&mut self` for the memoized edge checks.
        let mut anchors = std::mem::take(&mut self.scr.lns_anchors);
        anchors.clear();
        for &(nb, _) in q.neighbors(vn).iter().chain(q.in_neighbors(vn)) {
            if self.scr.lns_covered[nb.index()] {
                let pair = (nb, self.scr.assign[nb.index()]);
                if !anchors.contains(&pair) {
                    anchors.push(pair);
                }
            }
        }

        // Sound degree prune: vn's query edges all need distinct host
        // edges at its image, so deg_host(r) ≥ deg_query(vn) (per
        // direction for directed graphs).
        let (vn_out, vn_in) = (q.neighbors(vn).len(), q.in_neighbors(vn).len());
        let degree_ok =
            |r: NodeId| r_net.neighbors(r).len() >= vn_out && r_net.in_neighbors(r).len() >= vn_in;

        if anchors.is_empty() {
            // New component / isolated node: scan all unused host nodes.
            for r in r_net.node_ids() {
                if self.scr.used.contains(r) || !degree_ok(r) {
                    continue;
                }
                stats.constraint_evals += 1;
                if self.problem.node_ok(vn, r)? {
                    out.push(r);
                }
            }
            self.scr.lns_anchors = anchors;
            return Ok(());
        }

        // Enumerate from the anchor whose host node has the smallest
        // adjacency — every candidate must be a host-neighbor of all
        // anchors anyway.
        let (&(_, base_rc), _) = anchors.split_first().expect("non-empty anchors");
        let mut base_rc = base_rc;
        let mut best_len = usize::MAX;
        for &(_, rc) in &anchors {
            let len = r_net.neighbors(rc).len() + r_net.in_neighbors(rc).len();
            if len < best_len {
                best_len = len;
                base_rc = rc;
            }
        }

        self.scr.lns_seen.clear();
        let neighbor_lists = [r_net.neighbors(base_rc), r_net.in_neighbors(base_rc)];
        for list in neighbor_lists {
            for &(r, _) in list {
                if self.scr.used.contains(r) || self.scr.lns_seen.contains(r) || !degree_ok(r) {
                    continue;
                }
                self.scr.lns_seen.insert(r);
                stats.constraint_evals += 1;
                if !self.problem.node_ok(vn, r)? {
                    continue;
                }
                let mut ok = true;
                for &(vc, rc) in &anchors {
                    if !self.edge_pair_ok(vn, r, vc, rc, stats)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(r);
                }
            }
        }
        self.scr.lns_anchors = anchors;
        Ok(())
    }

    /// Recursive extension (step 5..16 of Figure 7).
    fn extend(
        &mut self,
        deadline: &mut Deadline,
        sink: &mut dyn SolutionSink,
        stats: &mut SearchStats,
    ) -> Result<SearchEnd, ProblemError> {
        if deadline.expired() {
            return Ok(SearchEnd::Timeout);
        }
        if self.depth == self.problem.nq() {
            stats.solutions += 1;
            let mapping = Mapping::new(self.scr.assign.clone());
            return Ok(match sink.report(&mapping) {
                SinkControl::Stop => SearchEnd::SinkStop,
                SinkControl::Continue => SearchEnd::Exhausted,
            });
        }
        let vn = self.pick_next();
        // Take this depth's reusable buffer for the duration of the
        // candidate iteration (recursion uses the deeper buffers).
        let here = self.depth;
        let mut candidates = std::mem::take(&mut self.scr.lns_cand_bufs[here]);
        let result = (|| -> Result<SearchEnd, ProblemError> {
            self.fill_candidates(vn, &mut candidates, stats)?;
            if candidates.is_empty() {
                stats.prunes += 1;
                return Ok(SearchEnd::Exhausted);
            }
            for &r in &candidates {
                stats.nodes_visited += 1;
                self.cover(vn, r);
                let end = self.extend(deadline, sink, stats)?;
                self.uncover(vn, r);
                match end {
                    SearchEnd::Exhausted => {}
                    other => return Ok(other),
                }
            }
            Ok(SearchEnd::Exhausted)
        })();
        candidates.clear();
        self.scr.lns_cand_bufs[here] = candidates;
        result
    }

    fn cover(&mut self, v: NodeId, r: NodeId) {
        self.scr.lns_covered[v.index()] = true;
        self.scr.assign[v.index()] = r;
        self.scr.used.insert(r);
        self.depth += 1;
        let q = self.problem.query;
        for &(nb, _) in q.neighbors(v).iter().chain(q.in_neighbors(v)) {
            self.scr.lns_covered_links[nb.index()] += 1;
        }
    }

    fn uncover(&mut self, v: NodeId, r: NodeId) {
        self.scr.lns_covered[v.index()] = false;
        self.scr.assign[v.index()] = NodeId(u32::MAX);
        self.scr.used.remove(r);
        self.depth -= 1;
        let q = self.problem.query;
        for &(nb, _) in q.neighbors(v).iter().chain(q.in_neighbors(v)) {
            self.scr.lns_covered_links[nb.index()] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectAll, CollectUpTo};
    use crate::verify::check_mapping;
    use netgraph::{Direction, Network};

    fn run_all(q: &Network, h: &Network, c: &str) -> (Vec<Mapping>, SearchStats) {
        let p = Problem::new(q, h, c).unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        search(&p, &LnsConfig::default(), &mut dl, &mut sink, &mut stats).unwrap();
        for m in &sink.solutions {
            check_mapping(&p, m).unwrap();
        }
        (sink.solutions, stats)
    }

    fn cycle(n: usize, with_attrs: bool) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            let e = h.add_edge(ids[i], ids[(i + 1) % n]);
            if with_attrs {
                h.set_edge_attr(e, "d", (10 * (i + 1)) as f64);
            }
        }
        h
    }

    #[test]
    fn agrees_with_ecf_on_single_edge() {
        let h = cycle(4, true);
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let (lns_sols, stats) = run_all(&q, &h, "rEdge.d <= 20.0");
        assert_eq!(lns_sols.len(), 4); // 2 edges × 2 orientations
        assert_eq!(stats.filter_cells, 0); // LNS keeps no filter state
    }

    #[test]
    fn triangle_in_triangle_all_six() {
        let h = cycle(3, false);
        let q = cycle(3, false);
        let (sols, _) = run_all(&q, &h, "true");
        assert_eq!(sols.len(), 6);
        let distinct: std::collections::HashSet<_> = sols.iter().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn path_in_cycle_counts_match_ecf() {
        let h = cycle(5, false);
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let (sols, _) = run_all(&q, &h, "true");
        // Centre: 5 choices × 2 orders of its two cycle-neighbors = 10.
        assert_eq!(sols.len(), 10);
    }

    #[test]
    fn infeasible_is_definitive() {
        let h = cycle(4, true);
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(&p, &LnsConfig::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);
        assert!(sink.solutions.is_empty());
    }

    #[test]
    fn first_match_stops_early() {
        let h = cycle(6, false);
        let q = cycle(3, false); // no triangle in C6 → infeasible!
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut sink = CollectUpTo::new(1);
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let end = search(&p, &LnsConfig::default(), &mut dl, &mut sink, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);
        assert!(sink.solutions.is_empty());

        // A feasible variant: path query.
        let mut q2 = Network::new(Direction::Undirected);
        let a = q2.add_node("a");
        let b = q2.add_node("b");
        q2.add_edge(a, b);
        let p2 = Problem::new(&q2, &h, "true").unwrap();
        let mut sink2 = CollectUpTo::new(1);
        let mut stats2 = SearchStats::default();
        let mut dl2 = Deadline::unlimited();
        let end2 = search(
            &p2,
            &LnsConfig::default(),
            &mut dl2,
            &mut sink2,
            &mut stats2,
        )
        .unwrap();
        assert_eq!(end2, SearchEnd::SinkStop);
        assert_eq!(sink2.solutions.len(), 1);
    }

    #[test]
    fn memo_cache_reduces_evals_without_changing_results() {
        let h = cycle(8, true);
        let q = {
            let mut q = Network::new(Direction::Undirected);
            let ids: Vec<NodeId> = (0..4).map(|i| q.add_node(format!("q{i}"))).collect();
            for w in ids.windows(2) {
                q.add_edge(w[0], w[1]);
            }
            q
        };
        let p = Problem::new(&q, &h, "rEdge.d <= 60.0").unwrap();
        let run = |memo: bool| {
            let mut sink = CollectAll::default();
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let cfg = LnsConfig {
                memo_cache: memo,
                ..LnsConfig::default()
            };
            search(&p, &cfg, &mut dl, &mut sink, &mut stats).unwrap();
            (sink.solutions, stats.constraint_evals)
        };
        let (with_memo, evals_memo) = run(true);
        let (without_memo, evals_raw) = run(false);
        assert_eq!(with_memo.len(), without_memo.len());
        assert!(
            evals_memo <= evals_raw,
            "memo {evals_memo} > raw {evals_raw}"
        );
    }

    #[test]
    fn disconnected_query() {
        let h = cycle(5, false);
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q.add_node("lone");
        let (sols, _) = run_all(&q, &h, "true");
        // Edge: 5 edges × 2 orientations = 10; lone node: 3 remaining = 30.
        assert_eq!(sols.len(), 30);
    }

    #[test]
    fn directed_query_in_directed_host() {
        let mut h = Network::new(Direction::Directed);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..4 {
            h.add_edge(ids[i], ids[(i + 1) % 4]);
        }
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b);
        q.add_edge(b, c);
        let (sols, _) = run_all(&q, &h, "true");
        // Directed 2-paths in directed C4: 4.
        assert_eq!(sols.len(), 4);
    }

    #[test]
    fn node_constraints_respected() {
        let mut h = cycle(4, false);
        for i in 0..4 {
            h.set_node_attr(NodeId(i), "cpu", (i + 1) as f64);
        }
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        // cpu ≥ 3 leaves h2, h3 (adjacent in the cycle) — 2 orientations.
        let (sols, _) = run_all(&q, &h, "rNode.cpu >= 3.0");
        assert_eq!(sols.len(), 2);
    }
}

//! The [`Mapping`] type: an injective assignment of query nodes to host
//! nodes (§IV of the paper, "q → r").

use netgraph::{Network, NodeId};
use std::fmt;

/// A complete mapping: `assign[q.index()]` is the host node for query node
/// `q`. Injective by construction of the search algorithms; [`crate::verify`]
/// re-checks it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    assign: Vec<NodeId>,
}

impl Mapping {
    /// Build from a dense assignment vector.
    pub fn new(assign: Vec<NodeId>) -> Self {
        Mapping { assign }
    }

    /// Host node for query node `q`.
    #[inline]
    pub fn get(&self, q: NodeId) -> NodeId {
        self.assign[q.index()]
    }

    /// Number of mapped query nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True for the empty mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Iterate `(query node, host node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.assign
            .iter()
            .enumerate()
            .map(|(i, &r)| (NodeId(i as u32), r))
    }

    /// Raw assignment slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.assign
    }

    /// Render with node names: `"x -> siteA, y -> siteB"`.
    pub fn display<'a>(&'a self, query: &'a Network, host: &'a Network) -> MappingDisplay<'a> {
        MappingDisplay {
            mapping: self,
            query,
            host,
        }
    }
}

/// Human-readable mapping rendering (see [`Mapping::display`]).
pub struct MappingDisplay<'a> {
    mapping: &'a Mapping,
    query: &'a Network,
    host: &'a Network,
}

impl fmt::Display for MappingDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (q, r)) in self.mapping.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{} -> {}",
                self.query.node_name(q),
                self.host.node_name(r)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    #[test]
    fn accessors() {
        let m = Mapping::new(vec![NodeId(5), NodeId(2)]);
        assert_eq!(m.get(NodeId(0)), NodeId(5));
        assert_eq!(m.get(NodeId(1)), NodeId(2));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(5)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn display_uses_names() {
        let mut q = Network::new(Direction::Undirected);
        q.add_node("x");
        q.add_node("y");
        let mut h = Network::new(Direction::Undirected);
        for i in 0..3 {
            h.add_node(format!("site{i}"));
        }
        let m = Mapping::new(vec![NodeId(2), NodeId(0)]);
        assert_eq!(m.display(&q, &h).to_string(), "x -> site2, y -> site0");
    }
}

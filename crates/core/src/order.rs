//! Query-node orderings for the permutation-tree search.
//!
//! Lemma 1 of the paper: the permutation tree is smallest when query nodes
//! are examined in ascending order of their candidate counts. The default
//! ordering implements that with a connectivity-aware refinement: among the
//! not-yet-ordered nodes *adjacent to the ordered prefix* we pick the one
//! with the fewest candidates, falling back to the global minimum when the
//! prefix has no unordered neighbors (disconnected queries). Keeping the
//! prefix connected means every extension is constrained by at least one
//! filter cell, which is what makes expression (2) effective.
//!
//! The alternatives exist for the `abl-order` ablation, which validates
//! Lemma 1 empirically.

use crate::filter::{reference::HashFilterMatrix, FilterMatrix};
use netgraph::{Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Anything that can report per-query-node candidate counts (the Lemma-1
/// sort key). Implemented by both filter layouts so the ordering is
/// layout-independent — the equivalence property test and the
/// `abl_filter_layout` ablation order both searches identically.
pub trait CandidateCounts {
    /// Number of base candidates for query node `v` (expression (1)).
    fn candidate_count(&self, v: NodeId) -> usize;
}

impl CandidateCounts for FilterMatrix {
    #[inline]
    fn candidate_count(&self, v: NodeId) -> usize {
        FilterMatrix::candidate_count(self, v)
    }
}

impl CandidateCounts for HashFilterMatrix {
    #[inline]
    fn candidate_count(&self, v: NodeId) -> usize {
        HashFilterMatrix::candidate_count(self, v)
    }
}

/// Ordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeOrder {
    /// Lemma-1: ascending candidate count, connectivity-aware (default).
    #[default]
    AscendingCandidates,
    /// Anti-Lemma-1: descending candidate count (ablation baseline).
    DescendingCandidates,
    /// Query input order (ablation baseline).
    InputOrder,
    /// Uniformly random order from the given seed (ablation baseline).
    Random(u64),
}

/// Compute the processing order of the query nodes.
pub fn compute_order<C: CandidateCounts + ?Sized>(
    query: &Network,
    filter: &C,
    strategy: NodeOrder,
) -> Vec<NodeId> {
    let nq = query.node_count();
    match strategy {
        NodeOrder::InputOrder => query.node_ids().collect(),
        NodeOrder::Random(seed) => {
            let mut ids: Vec<NodeId> = query.node_ids().collect();
            ids.shuffle(&mut StdRng::seed_from_u64(seed));
            ids
        }
        NodeOrder::AscendingCandidates | NodeOrder::DescendingCandidates => {
            let ascending = strategy == NodeOrder::AscendingCandidates;
            let better = |a: usize, b: usize| if ascending { a < b } else { a > b };

            let mut ordered: Vec<NodeId> = Vec::with_capacity(nq);
            let mut placed = vec![false; nq];
            let mut adjacent = vec![false; nq]; // adjacent to the ordered prefix
            for _ in 0..nq {
                // Candidates adjacent to the prefix first; otherwise any.
                let mut best: Option<NodeId> = None;
                let mut best_adj = false;
                for v in query.node_ids() {
                    if placed[v.index()] {
                        continue;
                    }
                    let adj = adjacent[v.index()];
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            // Prefer prefix-adjacent nodes; within the same
                            // adjacency class use the candidate-count
                            // criterion; tie-break on id for determinism.
                            if adj != best_adj {
                                adj
                            } else {
                                let cv = filter.candidate_count(v);
                                let cb = filter.candidate_count(b);
                                better(cv, cb) || (cv == cb && v < b)
                            }
                        }
                    };
                    if replace {
                        best = Some(v);
                        best_adj = adj;
                    }
                }
                let v = best.expect("at least one unplaced node");
                placed[v.index()] = true;
                ordered.push(v);
                for &(nb, _) in query.neighbors(v).iter().chain(query.in_neighbors(v)) {
                    if !placed[nb.index()] {
                        adjacent[nb.index()] = true;
                    }
                }
            }
            ordered
        }
    }
}

/// For each position `i` in `order`, the earlier-ordered query nodes that
/// share a query edge with `order[i]`, tagged with the edge direction:
/// `fwd` when the query edge is `vj → vi` (use [`FilterMatrix::fwd_cell`]),
/// `rev` when it is `vi → vj` (use [`FilterMatrix::rev_cell`]). For
/// undirected queries every entry is `fwd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pred {
    /// The earlier-ordered neighbor.
    pub node: NodeId,
    /// True: query edge `node → vi` (forward cell). False: `vi → node`.
    pub forward: bool,
}

/// Build the predecessor table for `order`.
pub fn predecessors(query: &Network, order: &[NodeId]) -> Vec<Vec<Pred>> {
    let nq = query.node_count();
    let mut pos = vec![usize::MAX; nq];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let undirected = query.is_undirected();
    let mut preds: Vec<Vec<Pred>> = vec![Vec::new(); order.len()];
    for (i, &vi) in order.iter().enumerate() {
        // Out-edges vi → nb: earlier nb is a `rev` predecessor (edge
        // vi → nb) unless undirected.
        for &(nb, _) in query.neighbors(vi) {
            if pos[nb.index()] < i {
                preds[i].push(Pred {
                    node: nb,
                    forward: undirected,
                });
            }
        }
        if !undirected {
            // In-edges nb → vi: earlier nb is a `fwd` predecessor.
            for &(nb, _) in query.in_neighbors(vi) {
                if pos[nb.index()] < i {
                    preds[i].push(Pred {
                        node: nb,
                        forward: true,
                    });
                }
            }
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::Deadline;
    use crate::problem::Problem;
    use crate::stats::SearchStats;
    use netgraph::{Direction, Network};

    /// Host path with distinct delays so candidate counts differ:
    /// query is a path a-b-c with windows that give a:1, b:2, c:3 cands.
    fn fixture() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        let e1 = q.add_edge(a, b);
        let e2 = q.add_edge(b, c);
        q.set_edge_attr(e1, "w", 1.0);
        q.set_edge_attr(e2, "w", 2.0);

        // Host: star with 4 leaves; edge delays 1,1,2,2.
        let mut h = Network::new(Direction::Undirected);
        let hub = h.add_node("hub");
        for (i, d) in [1.0, 1.0, 2.0, 2.0].iter().enumerate() {
            let leaf = h.add_node(format!("l{i}"));
            let e = h.add_edge(hub, leaf);
            h.set_edge_attr(e, "d", *d);
        }
        let _ = hub;
        (q, h)
    }

    fn filter_for(q: &Network, h: &Network, c: &str) -> FilterMatrix {
        let p = Problem::new(q, h, c).unwrap();
        let mut d = Deadline::unlimited();
        let mut s = SearchStats::default();
        FilterMatrix::build(&p, &mut d, &mut s).unwrap()
    }

    #[test]
    fn ascending_starts_with_fewest_candidates() {
        let (q, h) = fixture();
        let f = filter_for(&q, &h, "rEdge.d == vEdge.w");
        // Candidate sets: a ∈ {hub, l0, l1} via w=1 edges… compute counts
        // and just assert the order is ascending at the first position and
        // connectivity-aware after it.
        let order = compute_order(&q, &f, NodeOrder::AscendingCandidates);
        assert_eq!(order.len(), 3);
        // First node is a global minimum of the candidate counts.
        let c0 = f.candidate_count(order[0]);
        let min = q.node_ids().map(|v| f.candidate_count(v)).min().unwrap();
        assert_eq!(c0, min);
        // The prefix stays connected: on a path query, the second ordered
        // node must be adjacent to the first.
        assert!(
            q.has_edge(order[0], order[1]),
            "order {order:?} breaks prefix connectivity"
        );
    }

    #[test]
    fn descending_starts_with_most_candidates() {
        let (q, h) = fixture();
        let f = filter_for(&q, &h, "true");
        let order = compute_order(&q, &f, NodeOrder::DescendingCandidates);
        let max = q.node_ids().map(|v| f.candidate_count(v)).max().unwrap();
        assert_eq!(f.candidate_count(order[0]), max);
    }

    #[test]
    fn input_order_is_identity() {
        let (q, h) = fixture();
        let f = filter_for(&q, &h, "true");
        let order = compute_order(&q, &f, NodeOrder::InputOrder);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn random_order_deterministic_per_seed() {
        let (q, h) = fixture();
        let f = filter_for(&q, &h, "true");
        let o1 = compute_order(&q, &f, NodeOrder::Random(9));
        let o2 = compute_order(&q, &f, NodeOrder::Random(9));
        assert_eq!(o1, o2);
        let mut sorted = o1.clone();
        sorted.sort();
        assert_eq!(sorted, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn predecessors_undirected_path() {
        let (q, h) = fixture();
        let f = filter_for(&q, &h, "true");
        let order = vec![NodeId(1), NodeId(0), NodeId(2)]; // b, a, c
        let preds = predecessors(&q, &order);
        assert!(preds[0].is_empty());
        assert_eq!(
            preds[1],
            vec![Pred {
                node: NodeId(1),
                forward: true
            }]
        );
        assert_eq!(
            preds[2],
            vec![Pred {
                node: NodeId(1),
                forward: true
            }]
        );
        let _ = f;
    }

    #[test]
    fn predecessors_directed_orientations() {
        let mut q = Network::new(Direction::Directed);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        q.add_edge(a, b); // a→b
        q.add_edge(c, b); // c→b
        let order = vec![a, b, c];
        let preds = predecessors(&q, &order);
        assert!(preds[0].is_empty());
        // b's predecessor a via edge a→b: forward.
        assert_eq!(
            preds[1],
            vec![Pred {
                node: a,
                forward: true
            }]
        );
        // c's predecessor b via edge c→b: reverse (edge from vi=c to b).
        assert_eq!(
            preds[2],
            vec![Pred {
                node: b,
                forward: false
            }]
        );
    }

    #[test]
    fn connectivity_aware_prefix() {
        // Query: two components {a-b} and {c-d}; ascending order must
        // finish one component before starting the other when counts tie.
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let c = q.add_node("c");
        let d = q.add_node("d");
        q.add_edge(a, b);
        q.add_edge(c, d);
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..6).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                h.add_edge(ids[i], ids[j]);
            }
        }
        let f = filter_for(&q, &h, "true");
        let order = compute_order(&q, &f, NodeOrder::AscendingCandidates);
        // Positions of the two components' nodes must be contiguous.
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        let comp1: Vec<usize> = vec![pos(a), pos(b)];
        let comp2: Vec<usize> = vec![pos(c), pos(d)];
        let c1 = (comp1.iter().min().unwrap(), comp1.iter().max().unwrap());
        let c2 = (comp2.iter().min().unwrap(), comp2.iter().max().unwrap());
        assert!(
            c1.1 < c2.0 || c2.1 < c1.0,
            "components interleaved: {order:?}"
        );
    }
}

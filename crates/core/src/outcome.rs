//! Result-quality classification — §VII-E of the paper.
//!
//! A NETEMBED run returns one of three result types:
//!
//! 1. **Complete** — the algorithm terminated before its timeout; the
//!    returned set is the complete set of feasible embeddings (possibly
//!    empty, which is a definitive "impossible to embed").
//! 2. **Partial** — the algorithm timed out after finding some (but not
//!    necessarily all) feasible embeddings. RWB in first-match mode always
//!    returns at most a partial set by design (footnote 7).
//! 3. **Inconclusive** — the timeout expired with no feasible embedding
//!    found; whether one exists is unknown.

use crate::ecf::SearchEnd;
use crate::mapping::Mapping;

/// Classified result of an embedding run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every feasible embedding (empty ⇒ definitively infeasible).
    Complete(Vec<Mapping>),
    /// Some feasible embeddings; more may exist.
    Partial(Vec<Mapping>),
    /// Timed out with nothing found; feasibility unknown.
    Inconclusive,
}

impl Outcome {
    /// Classify a finished run.
    ///
    /// `end` is how the search stopped; `mappings` is what it found.
    /// A sink-initiated stop counts as partial: the search was cut short
    /// deliberately, so unexplored embeddings may remain.
    pub fn classify(end: SearchEnd, mappings: Vec<Mapping>) -> Outcome {
        match end {
            SearchEnd::Exhausted => Outcome::Complete(mappings),
            SearchEnd::SinkStop => Outcome::Partial(mappings),
            SearchEnd::Timeout => {
                if mappings.is_empty() {
                    Outcome::Inconclusive
                } else {
                    Outcome::Partial(mappings)
                }
            }
        }
    }

    /// The mappings found, regardless of classification.
    pub fn mappings(&self) -> &[Mapping] {
        match self {
            Outcome::Complete(m) | Outcome::Partial(m) => m,
            Outcome::Inconclusive => &[],
        }
    }

    /// True when at least one embedding was found.
    pub fn found_any(&self) -> bool {
        !self.mappings().is_empty()
    }

    /// True for a definitive infeasibility answer.
    pub fn definitively_infeasible(&self) -> bool {
        matches!(self, Outcome::Complete(m) if m.is_empty())
    }

    /// Short label used by the Fig-15 experiment ("all", "some", "none").
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Complete(m) if m.is_empty() => "none (definitive)",
            Outcome::Complete(_) => "all",
            Outcome::Partial(_) => "some",
            Outcome::Inconclusive => "inconclusive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeId;

    fn m() -> Mapping {
        Mapping::new(vec![NodeId(0)])
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(
            Outcome::classify(SearchEnd::Exhausted, vec![m()]),
            Outcome::Complete(vec![m()])
        );
        assert_eq!(
            Outcome::classify(SearchEnd::Exhausted, vec![]),
            Outcome::Complete(vec![])
        );
        assert_eq!(
            Outcome::classify(SearchEnd::SinkStop, vec![m()]),
            Outcome::Partial(vec![m()])
        );
        assert_eq!(
            Outcome::classify(SearchEnd::Timeout, vec![m()]),
            Outcome::Partial(vec![m()])
        );
        assert_eq!(
            Outcome::classify(SearchEnd::Timeout, vec![]),
            Outcome::Inconclusive
        );
    }

    #[test]
    fn accessors() {
        let complete_empty = Outcome::Complete(vec![]);
        assert!(complete_empty.definitively_infeasible());
        assert!(!complete_empty.found_any());
        assert_eq!(complete_empty.label(), "none (definitive)");

        let partial = Outcome::Partial(vec![m()]);
        assert!(partial.found_any());
        assert_eq!(partial.mappings().len(), 1);
        assert_eq!(partial.label(), "some");

        assert_eq!(Outcome::Inconclusive.mappings().len(), 0);
        assert_eq!(Outcome::Inconclusive.label(), "inconclusive");
        assert_eq!(Outcome::Complete(vec![m()]).label(), "all");
    }
}

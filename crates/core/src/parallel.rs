//! Parallel ECF: fan the root of the permutation tree out over threads.
//!
//! The paper notes (§III, §VIII) that the NETEMBED service can be
//! replicated and ultimately distributed. Within one machine the natural
//! parallelization of ECF partitions the *root level* of the permutation
//! tree: each worker owns a disjoint slice of the first query node's
//! candidate list and runs the ordinary sequential DFS below it. Subtrees
//! are completely independent (they share only the read-only filter
//! matrix), so the decomposition is embarrassingly parallel; the only
//! cross-worker coordination is the shared cancellation flag used for
//! first-match mode and deadline expiry.

use crate::deadline::Deadline;
use crate::ecf::{root_candidates, run_dfs, SearchEnd};
use crate::filter::FilterMatrix;
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder};
use crate::problem::{Problem, ProblemError};
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use netgraph::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parallel all-matches / up-to-k search.
///
/// `limit = None` enumerates everything; `Some(k)` stops all workers as
/// soon as `k` solutions have been found globally (the merged result is
/// truncated to `k`; *which* k solutions are returned depends on thread
/// scheduling, exactly like the paper's timeout-based partial results).
pub fn search(
    problem: &Problem<'_>,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    assert!(threads >= 1, "need at least one thread");
    let start = std::time::Instant::now();
    let filter = FilterMatrix::build(problem, deadline, stats)?;
    if filter.truncated() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        return Ok((Vec::new(), SearchEnd::Timeout));
    }
    let node_order = compute_order(problem.query, &filter, order);
    let preds = predecessors(problem.query, &node_order);

    // Root candidates (expression (1)).
    let roots = root_candidates(problem, &filter, &node_order, &preds);

    if roots.is_empty() {
        stats.elapsed = start.elapsed();
        return Ok((Vec::new(), SearchEnd::Exhausted));
    }

    let workers = threads.min(roots.len());
    let found = AtomicU64::new(0);
    let limit_u64 = limit.map(|k| k as u64);

    // A sink that collects locally and observes the global counter.
    struct WorkerSink<'s> {
        local: Vec<Mapping>,
        found: &'s AtomicU64,
        limit: Option<u64>,
        deadline: Deadline,
    }
    impl SolutionSink for WorkerSink<'_> {
        fn report(&mut self, mapping: &Mapping) -> SinkControl {
            let n = self.found.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(k) = self.limit {
                if n > k {
                    // Someone else already hit the limit; drop and stop.
                    return SinkControl::Stop;
                }
                self.local.push(mapping.clone());
                if n == k {
                    self.deadline.cancel();
                    return SinkControl::Stop;
                }
                return SinkControl::Continue;
            }
            self.local.push(mapping.clone());
            SinkControl::Continue
        }
    }

    let mut merged: Vec<Mapping> = Vec::new();
    let mut ends: Vec<SearchEnd> = Vec::new();
    let shared_deadline = deadline.clone();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // Strided partition spreads "hot" root candidates evenly.
            let my_roots: Vec<NodeId> = roots.iter().copied().skip(w).step_by(workers).collect();
            let filter = &filter;
            let node_order = &node_order;
            let preds = &preds;
            let found = &found;
            let dl = shared_deadline.clone();
            handles.push(scope.spawn(move |_| {
                let mut sink = WorkerSink {
                    local: Vec::new(),
                    found,
                    limit: limit_u64,
                    deadline: dl.clone(),
                };
                let mut my_dl = dl;
                let mut my_stats = SearchStats::default();
                let end = run_dfs(
                    problem,
                    filter,
                    node_order,
                    preds,
                    &mut my_dl,
                    &mut sink,
                    &mut my_stats,
                    None,
                    Some(&my_roots),
                );
                (sink.local, end, my_stats)
            }));
        }
        for h in handles {
            let (local, end, wstats) = h.join().expect("worker panicked");
            merged.extend(local);
            ends.push(end);
            stats.merge(&wstats);
        }
    })
    .expect("scope failure");

    // Aggregate ends. If the global limit was reached, workers observe a
    // cancelled deadline and report Timeout — reclassify as SinkStop.
    let limit_hit = limit_u64.is_some_and(|k| found.load(Ordering::Relaxed) >= k);
    let end = if limit_hit {
        SearchEnd::SinkStop
    } else if ends.contains(&SearchEnd::Timeout) {
        SearchEnd::Timeout
    } else if ends.contains(&SearchEnd::SinkStop) {
        SearchEnd::SinkStop
    } else {
        SearchEnd::Exhausted
    };
    if let Some(k) = limit {
        merged.truncate(k);
    }
    stats.solutions = merged.len() as u64;
    stats.timed_out = end == SearchEnd::Timeout;
    stats.elapsed = start.elapsed();
    Ok((merged, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecf;
    use crate::sink::CollectAll;
    use crate::verify::check_mapping;
    use netgraph::{Direction, Network};

    fn grid_host(n: usize) -> Network {
        // Clique host with varied delays — lots of embeddings.
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i * 7 + j * 3) % 50) as f64);
            }
        }
        h
    }

    fn ring_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            q.add_edge(ids[i], ids[(i + 1) % n]);
        }
        q
    }

    #[test]
    fn parallel_matches_sequential_solution_set() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();

        // Sequential reference.
        let mut sink = CollectAll::default();
        let mut seq_stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut seq_stats).unwrap();
        let mut seq: Vec<Mapping> = sink.solutions;

        // Parallel.
        let mut par_stats = SearchStats::default();
        let mut dl2 = Deadline::unlimited();
        let (mut par, end) =
            search(&p, 4, None, NodeOrder::default(), &mut dl2, &mut par_stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);

        let key = |m: &Mapping| m.as_slice().to_vec();
        seq.sort_by_key(key);
        par.sort_by_key(key);
        assert_eq!(seq, par);
        for m in &par {
            check_mapping(&p, m).unwrap();
        }
    }

    #[test]
    fn single_thread_equals_sequential() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 1, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);
        // K6 hosts all 6·5·4 = 120 oriented triangles... as a ring of 3 the
        // count equals the number of ordered 3-subsets = 120.
        assert_eq!(sols.len(), 120);
    }

    #[test]
    fn limit_stops_early() {
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) =
            search(&p, 4, Some(5), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sols.len(), 5);
        for m in &sols {
            check_mapping(&p, m).unwrap();
        }
    }

    #[test]
    fn infeasible_parallel_is_definitive() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let h = grid_host(4);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = search(&p, 64, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(sols.len(), 4 * 3 * 2);
    }
}

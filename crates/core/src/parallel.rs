//! Work-stealing parallel ECF: dynamic subtree scheduling over threads.
//!
//! The paper notes (§III, §VIII) that the NETEMBED service can be
//! replicated and ultimately distributed. Within one machine the first
//! cut parallelized the *root level* of the permutation tree with a
//! static strided partition; that leaves every other worker idle the
//! moment one hub node's subtree dominates the instance. This module
//! replaces the static partition with a work-stealing scheduler built
//! from three pieces:
//!
//! * **Subtree tasks.** A `SubtreeTask` is `(prefix, candidates)`: a
//!   partial assignment for the first `prefix.len()` order positions
//!   plus the untried candidate range at the next depth. The whole
//!   search is the task `([], roots)`; every task denotes a disjoint
//!   region of the permutation tree, so the union of all executed tasks
//!   is exactly the sequential traversal.
//! * **Queues.** Each worker owns a deque (`crossbeam::deque::Worker`)
//!   seeded with a strided slice of the root candidates; a shared
//!   `Injector` receives dynamically split tasks. An idle worker takes
//!   from the injector first (split tasks are published precisely
//!   because someone was idle), then from sibling deques.
//! * **A persistent pool.** Workers run on the
//!   [`WorkerPool`](crate::pool::WorkerPool) owned by the caller's
//!   [`ParallelScratch`] — threads park between calls rather than being
//!   re-spawned per search, so warm repeated searches are spawn-free
//!   (`stats.pool_reuse` counts the warm threads a run found; worker
//!   `w` always lands on pool thread `w`, keeping its scratch
//!   thread-local-warm too).
//! * **Depth-bounded splitting.** While a worker descends, the DFS
//!   offers the *untried tail* of the current frame to the scheduler at
//!   every candidate take (see `ecf::TaskSplitter`). The offer is
//!   accepted — the far *half* of the tail published as one stealable
//!   task (binary splitting keeps the task count per frame logarithmic)
//!   — only when all of: the depth is at most
//!   [`StealPolicy::split_depth`] (splitting a deep, tiny subtree costs
//!   more than finishing it), the tail has at least
//!   [`StealPolicy::min_tail`] candidates (ditto), some worker is
//!   actually hungry (an atomic idle count gates publication, so a
//!   saturated pool never pays the queue traffic), and the pool has not
//!   been cancelled (a cancelled pool must *drain*, not grow). A stolen
//!   task re-enters its prefix via `ecf::enter_prefix` without
//!   re-deriving any frame and can itself be split again.
//!
//! ## Task lifecycle
//!
//! `seeded → queued → running → (exhausted | split further)`. The
//! scheduler tracks one atomic `pending` count — tasks created minus
//! tasks finished. Workers exit when `pending` reaches zero (all
//! regions of the tree accounted for) or when their deadline
//! expires/cancels; cancellation makes workers stop taking tasks and
//! stop publishing, so queued tasks are simply dropped with the scope —
//! that is the draining behaviour the deadline tests pin down.
//!
//! ## Determinism
//!
//! Splitting only ever *moves* untried candidate ranges between
//! workers; no range is duplicated or dropped. The enumerated solution
//! *set* (and the per-run totals of `nodes_visited`/`prunes`) is
//! therefore identical to the sequential DFS for complete runs — only
//! the emission *order* depends on thread scheduling, exactly like the
//! old root partition. `stats.tasks_spawned`/`tasks_stolen` expose how
//! much re-splitting actually happened.
//!
//! The filter build is parallelized too ([`FilterMatrix::build_par`] —
//! disjoint cell rows per query edge), so both stages use the thread
//! budget.
//!
//! ## Deadline and stats discipline
//!
//! Workers run under a [`Deadline::scoped`] child of the caller's
//! deadline: hitting the solution limit cancels *the pool's* deadline so
//! all workers stop, without expiring the deadline the caller handed in
//! (which may govern later phases). Workers that stop because of that
//! cancellation report `Timeout` locally; the merge reclassifies the run
//! as [`SearchEnd::SinkStop`] and clears `timed_out` — only a real clock
//! expiry marks the merged stats as timed out. Merged `elapsed` is the
//! caller-observed wall clock (`start.elapsed()`), never a sum of
//! overlapping per-worker durations; those are summed separately into
//! [`SearchStats::cpu_time`] (which, for a stealing pool, includes the
//! time a worker spent waiting for stealable work).

use crate::deadline::Deadline;
use crate::ecf::{
    enter_prefix, leave_prefix, root_candidates, run_dfs_task, SearchEnd, TaskSplitter,
};
use crate::filter::FilterMatrix;
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder};
use crate::problem::{Problem, ProblemError};
use crate::scratch::ParallelScratch;
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use netgraph::NodeId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The D/K knobs of the depth-bounded splitting policy.
///
/// A frame at depth ≤ `split_depth` (D) whose untried tail holds ≥
/// `min_tail` (K) candidates may be published as a stealable task when
/// another worker is hungry. Shallow frames cover the largest subtrees,
/// so bounding the depth keeps task granularity coarse; bounding the
/// tail keeps a near-exhausted frame from being shipped for less work
/// than the queue round-trip costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// Deepest absolute tree depth at which frames may be split (D).
    pub split_depth: usize,
    /// Minimum untried-tail length worth publishing (K).
    pub min_tail: usize,
}

impl StealPolicy {
    /// Default D: split only within the top two levels of the tree.
    /// Binary re-splitting of stolen tasks keeps granularity adaptive
    /// below that, so a deeper default only adds queue traffic.
    pub const DEFAULT_SPLIT_DEPTH: usize = 1;
    /// Default K: don't ship fewer than this many candidates.
    pub const DEFAULT_MIN_TAIL: usize = 2;

    /// Splitting disabled: the scheduler degenerates to the static
    /// strided root partition (each worker runs its seed task alone).
    /// This is the comparator the `search_steal` bench series measures
    /// its overhead against, and the right choice when the caller knows
    /// subtree sizes are uniform.
    pub fn disabled() -> Self {
        StealPolicy {
            split_depth: 0,
            min_tail: usize::MAX,
        }
    }

    /// Split at every depth for any tail of ≥ 2: maximal task churn.
    /// Used by the determinism property tests to stress the scheduler;
    /// rarely what production wants.
    pub fn aggressive() -> Self {
        StealPolicy {
            split_depth: usize::MAX,
            min_tail: 2,
        }
    }

    /// True when this policy can never publish a task.
    fn never_splits(&self) -> bool {
        self.min_tail == usize::MAX
    }
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            split_depth: Self::DEFAULT_SPLIT_DEPTH,
            min_tail: Self::DEFAULT_MIN_TAIL,
        }
    }
}

/// One schedulable region of the permutation tree: the assignments for
/// order positions `0..prefix.len()` plus the untried candidate range
/// at depth `prefix.len()`.
struct SubtreeTask {
    prefix: Vec<NodeId>,
    cands: Vec<NodeId>,
    /// Worker that published (or was seeded with) the task; a taker with
    /// a different id counts the take into `tasks_stolen`.
    publisher: usize,
}

/// The per-worker split gate handed to the DFS (see `ecf::TaskSplitter`).
struct WorkerSplitter<'a> {
    policy: StealPolicy,
    injector: &'a Injector<SubtreeTask>,
    hungry: &'a AtomicUsize,
    pending: &'a AtomicUsize,
    /// Currently-parked thieves: a publish pops and unparks one.
    parked: &'a std::sync::Mutex<Vec<std::thread::Thread>>,
    pool_deadline: Deadline,
    me: usize,
}

impl TaskSplitter for WorkerSplitter<'_> {
    fn offer(
        &mut self,
        depth: usize,
        order: &[NodeId],
        assign: &[NodeId],
        tail: &[NodeId],
    ) -> usize {
        if depth > self.policy.split_depth || tail.len() < self.policy.min_tail {
            return 0;
        }
        // Publish only for an actual consumer: no hungry worker, no
        // queue traffic. A cancelled pool is draining — publishing would
        // strand the task in a queue nobody reads.
        if self.hungry.load(Ordering::SeqCst) == 0 || self.pool_deadline.is_cancelled() {
            return 0;
        }
        // Binary split: ship the far half of the tail, keep the near
        // half. Shipping the whole tail would let one wide frame decay
        // into a task per candidate under a persistently hungry pool;
        // halving makes the task count per frame logarithmic while the
        // stolen piece stays re-splittable.
        let taken = tail.len().div_ceil(2);
        let prefix: Vec<NodeId> = order[..depth]
            .iter()
            .map(|&vq| assign[vq.index()])
            .collect();
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.injector.push(SubtreeTask {
            prefix,
            cands: tail[tail.len() - taken..].to_vec(),
            publisher: self.me,
        });
        // Hand the task to one parked thief right away; a single task
        // needs a single consumer, and popping from the parked set
        // guarantees the wakeup lands on a thread that is actually (or
        // imminently) parked instead of burning the token on a busy one.
        if let Some(t) = self.parked.lock().expect("parked set poisoned").pop() {
            t.unpark();
        }
        taken
    }
}

/// Parallel all-matches / up-to-k search.
///
/// `limit = None` enumerates everything; `Some(k)` stops all workers as
/// soon as `k` solutions have been found globally (the merged result is
/// truncated to `k`; *which* k solutions are returned depends on thread
/// scheduling, exactly like the paper's timeout-based partial results).
pub fn search(
    problem: &Problem<'_>,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    search_with_scratch(
        problem,
        threads,
        limit,
        order,
        deadline,
        stats,
        &mut ParallelScratch::new(),
    )
}

/// [`search`] with caller-held per-worker scratches: a long-lived caller
/// (the service batch path) pays each worker's DFS-arena setup once.
#[allow(clippy::too_many_arguments)]
pub fn search_with_scratch(
    problem: &Problem<'_>,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
    scratch: &mut ParallelScratch,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    assert!(threads >= 1, "need at least one thread");
    let start = std::time::Instant::now();
    // Build-charging contract (see [`crate::BuildCharge`]): `pool_reuse`
    // must only credit threads that predate this *run*, so exactly the
    // build-phase spawns are deducted once the search has counted its
    // warm threads.
    let mut charge = crate::BuildCharge::begin(scratch.pool().spawned_total());
    let filter =
        FilterMatrix::build_par_pooled(problem, threads, deadline, stats, scratch.pool_mut())?;
    charge.finish_build(scratch.pool().spawned_total());
    let (merged, end) = search_prebuilt(
        problem, &filter, threads, limit, order, deadline, stats, scratch,
    );
    charge.settle_pool_reuse(stats);
    // Authoritative wall clock for the whole run (build + search).
    stats.elapsed = start.elapsed();
    Ok((merged, end))
}

/// The parallel second stage over an already constructed filter, under
/// the default [`StealPolicy`]. Filter reuse across calls composes with
/// scratch reuse: repeated parallel searches allocate nothing beyond
/// their result vectors and the (rare) published tasks.
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
    scratch: &mut ParallelScratch,
) -> (Vec<Mapping>, SearchEnd) {
    search_prebuilt_with_policy(
        problem,
        filter,
        threads,
        limit,
        order,
        deadline,
        stats,
        scratch,
        StealPolicy::default(),
    )
}

/// [`search_prebuilt`] with an explicit split policy — the full
/// work-stealing scheduler entry point.
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt_with_policy(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
    scratch: &mut ParallelScratch,
    policy: StealPolicy,
) -> (Vec<Mapping>, SearchEnd) {
    assert!(threads >= 1, "need at least one thread");
    let start = std::time::Instant::now();
    // Filter-phase counters are reported even when the build was cut
    // short, so harness timeout rows stay comparable.
    stats.filter_cells = filter.cell_count() as u64;
    if filter.truncated() || deadline.check_now() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        return (Vec::new(), SearchEnd::Timeout);
    }
    let node_order = compute_order(problem.query, filter, order);
    let preds = predecessors(problem.query, &node_order);

    // Root candidates (expression (1)).
    let roots = root_candidates(problem, filter, &node_order, &preds);

    if roots.is_empty() {
        stats.elapsed = start.elapsed();
        return (Vec::new(), SearchEnd::Exhausted);
    }

    // With splitting disabled there is nothing for a rootless worker to
    // ever do; with it enabled, extra workers beyond the root count are
    // fed by splits — that is exactly how a single-hub instance gets
    // parallelism the root partition could never expose. Splits can
    // only feed as many workers as there are shallow subtrees, so bound
    // the pool by the width of the top two tree levels (roots × the
    // second order node's candidate count): a 64-thread request on a
    // 4-node toy problem must not spawn 60 threads that only poll.
    let workers = if policy.never_splits() {
        threads.min(roots.len())
    } else {
        let width1 = match node_order.get(1) {
            Some(&v) => filter.candidate_count(v).max(1),
            None => 1,
        };
        threads.min(roots.len().saturating_mul(width1))
    };
    let seeds = workers.min(roots.len());
    let found = AtomicU64::new(0);
    let limit_u64 = limit.map(|k| k as u64);

    // The pool runs under a scoped child deadline: the solution-limit
    // stop cancels only the pool, never the caller's deadline.
    let pool_deadline = deadline.scoped();

    // A sink that collects locally and observes the global counter.
    struct WorkerSink<'s> {
        local: Vec<Mapping>,
        found: &'s AtomicU64,
        limit: Option<u64>,
        deadline: Deadline,
    }
    impl SolutionSink for WorkerSink<'_> {
        fn report(&mut self, mapping: &Mapping) -> SinkControl {
            let n = self.found.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(k) = self.limit {
                if n > k {
                    // Someone else already hit the limit; drop and stop.
                    return SinkControl::Stop;
                }
                self.local.push(mapping.clone());
                if n == k {
                    self.deadline.cancel();
                    return SinkControl::Stop;
                }
                return SinkControl::Continue;
            }
            self.local.push(mapping.clone());
            SinkControl::Continue
        }
    }

    // Queues: per-worker deques (seeded strided, stolen FIFO) plus the
    // shared injector for split tasks.
    let deques: Vec<Worker<SubtreeTask>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<SubtreeTask>> = deques.iter().map(|d| d.stealer()).collect();
    let injector: Injector<SubtreeTask> = Injector::new();
    for (w, deque) in deques.iter().enumerate().take(seeds) {
        // Strided partition spreads "hot" root candidates evenly.
        let my_roots: Vec<NodeId> = roots.iter().copied().skip(w).step_by(seeds).collect();
        deque.push(SubtreeTask {
            prefix: Vec::new(),
            cands: my_roots,
            publisher: w,
        });
    }
    // Live-task count: seeds now, plus every published split. Zero means
    // the whole tree is accounted for and idle workers may exit.
    let pending = AtomicUsize::new(seeds);
    // Idle-worker count, gating publication. Workers beyond the seed
    // count are hungry from the start — registered here, before any
    // thread runs, so the very first split opportunity already sees
    // them.
    let hungry = AtomicUsize::new(workers - seeds);
    // Handles of currently *parked* thieves (each worker registers
    // itself right before parking and deregisters after waking), so
    // publishers and finishers can unpark exactly the threads that are
    // sleeping instead of letting them burn the core or oversleep a
    // blind nap — a missed wakeup would put the full park timeout on
    // the pool's join latency.
    let parked: std::sync::Mutex<Vec<std::thread::Thread>> =
        std::sync::Mutex::new(Vec::with_capacity(workers));
    let wake_all = |parked: &std::sync::Mutex<Vec<std::thread::Thread>>| {
        for t in parked.lock().expect("parked set poisoned").drain(..) {
            t.unpark();
        }
    };

    let mut merged: Vec<Mapping> = Vec::new();
    let mut ends: Vec<SearchEnd> = Vec::new();
    let (pool, scratches) = scratch.pool_and_workers(workers);
    // Warm threads reused from the persistent pool: the run is
    // spawn-free exactly when this equals `workers`.
    stats.pool_reuse += pool.thread_count().min(workers) as u64;

    // One result slot per worker, written by the worker's pool job and
    // collected after the round joins.
    let mut results: Vec<Option<(Vec<Mapping>, SearchEnd, SearchStats)>> =
        (0..workers).map(|_| None).collect();
    {
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
        for (me, ((wscratch, my_deque), result)) in scratches
            .iter_mut()
            .zip(deques)
            .zip(results.iter_mut())
            .enumerate()
        {
            let node_order = &node_order;
            let preds = &preds;
            let found = &found;
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let hungry = &hungry;
            let parked = &parked;
            let wake_all = &wake_all;
            let dl = pool_deadline.clone();
            jobs.push(Box::new(move || {
                let wstart = std::time::Instant::now();
                let my_thread = std::thread::current();
                let mut sink = WorkerSink {
                    local: Vec::new(),
                    found,
                    limit: limit_u64,
                    deadline: dl.clone(),
                };
                let mut splitter = WorkerSplitter {
                    policy,
                    injector,
                    hungry,
                    pending,
                    parked,
                    pool_deadline: dl.clone(),
                    me,
                };
                let mut my_dl = dl;
                let mut my_stats = SearchStats::default();
                wscratch.ensure(problem.nq(), problem.nr());
                // Seedless workers were pre-registered as hungry by the
                // scheduler; their first idle pass must not count twice.
                let mut pre_registered = me >= seeds;
                let mut end = SearchEnd::Exhausted;
                loop {
                    // Own deque first (depth-first locality), then go
                    // hungry: injector (split tasks), then sibling seeds.
                    let mut task = my_deque.pop().map(|t| (t, false));
                    if task.is_none() && policy.never_splits() {
                        // Faithful static root partition: no splits ever
                        // exist, and seeds stay with their worker.
                        break;
                    }
                    if task.is_none() {
                        if !pre_registered {
                            hungry.fetch_add(1, Ordering::SeqCst);
                        }
                        pre_registered = false;
                        let mut spins = 0u32;
                        let got = loop {
                            if my_dl.check_now() {
                                break None;
                            }
                            if let Steal::Success(t) = injector.steal() {
                                break Some(t);
                            }
                            let sibling = stealers
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != me)
                                .find_map(|(_, s)| s.steal().success());
                            if let Some(t) = sibling {
                                break Some(t);
                            }
                            if pending.load(Ordering::SeqCst) == 0 {
                                break None;
                            }
                            // Brief spin, then park: a hot spinner
                            // steals the very CPU the busy worker needs
                            // (ruinous on few-core hosts). Register in
                            // the parked set first — publishers pop a
                            // handle from it and unpark exactly one
                            // sleeping thief — and re-check the injector
                            // after registering so a publish racing the
                            // registration can't be missed; the park
                            // timeout only covers that narrow window.
                            spins += 1;
                            if spins < 4 {
                                std::thread::yield_now();
                            } else {
                                parked
                                    .lock()
                                    .expect("parked set poisoned")
                                    .push(my_thread.clone());
                                if injector.is_empty() && pending.load(Ordering::SeqCst) != 0 {
                                    std::thread::park_timeout(std::time::Duration::from_micros(
                                        200,
                                    ));
                                }
                                let mut g = parked.lock().expect("parked set poisoned");
                                if let Some(i) = g.iter().position(|t| t.id() == my_thread.id()) {
                                    g.remove(i);
                                }
                            }
                        };
                        hungry.fetch_sub(1, Ordering::SeqCst);
                        task = got.map(|t| (t, true));
                    }
                    let Some((t, via_steal)) = task else {
                        // Drained: tree fully accounted for, or the pool
                        // was cancelled / timed out (queued tasks are
                        // discarded — that is the drain).
                        break;
                    };
                    if via_steal && t.publisher != me {
                        my_stats.tasks_stolen += 1;
                    }
                    enter_prefix(wscratch, node_order, &t.prefix);
                    let tend = run_dfs_task(
                        filter,
                        node_order,
                        preds,
                        &mut my_dl,
                        &mut sink,
                        &mut my_stats,
                        None,
                        t.prefix.len(),
                        Some(&t.cands),
                        wscratch,
                        Some(&mut splitter),
                    );
                    leave_prefix(wscratch, node_order, &t.prefix);
                    if pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        // Last live task: wake parked thieves so they
                        // observe pending == 0 and exit immediately.
                        wake_all(parked);
                    }
                    match tend {
                        SearchEnd::Exhausted => continue,
                        other => {
                            end = other;
                            // The pool deadline is cancelled (or expired)
                            // on this path: wake everyone to drain.
                            wake_all(parked);
                            break;
                        }
                    }
                }
                if end == SearchEnd::Exhausted && my_dl.was_expired() {
                    end = SearchEnd::Timeout;
                }
                // Per-worker accounting: a worker stopped by the shared
                // cancellation honestly reports Timeout here; the merge
                // below reclassifies limit-triggered stops.
                my_stats.timed_out = end == SearchEnd::Timeout;
                my_stats.cpu_time = wstart.elapsed();
                *result = Some((sink.local, end, my_stats));
            }));
        }
        pool.run_scoped(jobs);
    }
    for slot in results {
        let (local, end, wstats) = slot.expect("pool worker completed");
        merged.extend(local);
        ends.push(end);
        stats.merge(&wstats);
    }

    // Aggregate ends. If the global limit was reached, workers observe a
    // cancelled pool deadline and report Timeout — reclassify as SinkStop.
    let limit_hit = limit_u64.is_some_and(|k| found.load(Ordering::Relaxed) >= k);
    let end = if limit_hit {
        SearchEnd::SinkStop
    } else if ends.contains(&SearchEnd::Timeout) {
        SearchEnd::Timeout
    } else if ends.contains(&SearchEnd::SinkStop) {
        SearchEnd::SinkStop
    } else {
        SearchEnd::Exhausted
    };
    if let Some(k) = limit {
        merged.truncate(k);
    }
    stats.solutions = merged.len() as u64;
    // The limit (not the clock) stopped the search: the merged stats must
    // not carry the workers' limit-induced `timed_out`.
    stats.timed_out = end == SearchEnd::Timeout;
    // Wall clock as observed by this caller — never the worker sum
    // (which lives in `cpu_time` via the merge).
    stats.elapsed = start.elapsed();
    (merged, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecf;
    use crate::sink::CollectAll;
    use crate::verify::check_mapping;
    use netgraph::{Direction, Network};

    fn grid_host(n: usize) -> Network {
        // Clique host with varied delays — lots of embeddings.
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i * 7 + j * 3) % 50) as f64);
            }
        }
        h
    }

    fn ring_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            q.add_edge(ids[i], ids[(i + 1) % n]);
        }
        q
    }

    /// A deliberately skewed host: one hub owns almost all the work. The
    /// query is a star (hub + `leaves` leaves); the host is one
    /// high-degree hub wired to `spokes` spokes that are also wired in a
    /// cycle among themselves. The hub carries `cap = 1` (spokes 0), so
    /// under the `rNode.cap >= vNode.cap` constraint the query hub has
    /// exactly one root candidate — the single-hub worst case for a
    /// static root partition.
    fn skewed_host(spokes: usize) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let hub = h.add_node("hub");
        h.set_node_attr(hub, "cap", 1.0);
        let ids: Vec<NodeId> = (0..spokes).map(|i| h.add_node(format!("s{i}"))).collect();
        for (i, &s) in ids.iter().enumerate() {
            h.set_node_attr(s, "cap", 0.0);
            h.add_edge(hub, s);
            h.add_edge(s, ids[(i + 1) % spokes]);
        }
        h
    }

    fn star_query(leaves: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let hub = q.add_node("qh");
        q.set_node_attr(hub, "cap", 1.0);
        for i in 0..leaves {
            let l = q.add_node(format!("ql{i}"));
            q.set_node_attr(l, "cap", 0.0);
            q.add_edge(hub, l);
        }
        q
    }

    fn run_seq(p: &Problem<'_>) -> (Vec<Mapping>, SearchStats) {
        let mut sink = CollectAll::default();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search(p, NodeOrder::default(), &mut dl, &mut sink, &mut stats).unwrap();
        (sink.solutions, stats)
    }

    fn sorted(mut v: Vec<Mapping>) -> Vec<Mapping> {
        v.sort_by_key(|m| m.as_slice().to_vec());
        v
    }

    #[test]
    fn parallel_matches_sequential_solution_set() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();

        // Sequential reference.
        let (seq, seq_stats) = run_seq(&p);

        // Parallel.
        let mut par_stats = SearchStats::default();
        let mut dl2 = Deadline::unlimited();
        let (par, end) =
            search(&p, 4, None, NodeOrder::default(), &mut dl2, &mut par_stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);

        let par = sorted(par);
        assert_eq!(sorted(seq), par);
        for m in &par {
            check_mapping(&p, m).unwrap();
        }
        // Both runs evaluated the same filter: identical build counters.
        assert_eq!(seq_stats.constraint_evals, par_stats.constraint_evals);
        assert_eq!(seq_stats.filter_cells, par_stats.filter_cells);
        // Splitting moves work, never duplicates it: identical totals.
        assert_eq!(seq_stats.nodes_visited, par_stats.nodes_visited);
        assert_eq!(seq_stats.prunes, par_stats.prunes);
    }

    #[test]
    fn aggressive_splitting_preserves_solution_set() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();
        let (seq, seq_stats) = run_seq(&p);

        let mut dl = Deadline::unlimited();
        let mut bstats = SearchStats::default();
        let filter = FilterMatrix::build(&p, &mut dl, &mut bstats).unwrap();
        for threads in [2usize, 3, 4] {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let mut scratch = ParallelScratch::new();
            let (sols, end) = search_prebuilt_with_policy(
                &p,
                &filter,
                threads,
                None,
                NodeOrder::default(),
                &mut dl,
                &mut stats,
                &mut scratch,
                StealPolicy::aggressive(),
            );
            assert_eq!(end, SearchEnd::Exhausted, "threads {threads}");
            assert_eq!(sorted(sols), sorted(seq.clone()), "threads {threads}");
            assert_eq!(stats.nodes_visited, seq_stats.nodes_visited);
            assert_eq!(stats.prunes, seq_stats.prunes);
        }
    }

    #[test]
    fn skewed_host_exercises_stealing() {
        // One hub root candidate owns the whole tree: the static root
        // partition would run this on a single worker. The stealing
        // scheduler spawns the pool with three pre-registered hungry
        // workers (threads > roots), so the hub worker *must* split at
        // its first shallow frame (tasks_spawned > 0, deterministic) and
        // the splits must eventually move across workers (tasks_stolen >
        // 0 — thread scheduling decides *when* a sibling grabs one, so
        // allow a few attempts). Every attempt must agree with the
        // sequential solution set.
        let h = skewed_host(10);
        let q = star_query(4);
        let p = Problem::new(&q, &h, "rNode.cap >= vNode.cap").unwrap();
        let (seq, _) = run_seq(&p);
        assert!(!seq.is_empty());

        let mut dl = Deadline::unlimited();
        let mut bstats = SearchStats::default();
        let filter = FilterMatrix::build(&p, &mut dl, &mut bstats).unwrap();
        let mut stolen_seen = false;
        for attempt in 0..10 {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let mut scratch = ParallelScratch::new();
            let (sols, end) = search_prebuilt_with_policy(
                &p,
                &filter,
                4,
                None,
                NodeOrder::default(),
                &mut dl,
                &mut stats,
                &mut scratch,
                StealPolicy::aggressive(),
            );
            assert_eq!(end, SearchEnd::Exhausted, "attempt {attempt}");
            assert_eq!(sorted(sols), sorted(seq.clone()), "attempt {attempt}");
            assert!(
                stats.tasks_spawned > 0,
                "hungry workers must force splits on a skewed host"
            );
            if stats.tasks_stolen > 0 {
                stolen_seen = true;
                break;
            }
        }
        assert!(
            stolen_seen,
            "no task ever moved between workers across 10 skewed runs"
        );
    }

    #[test]
    fn disabled_policy_is_static_root_partition() {
        let h = grid_host(7);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let (seq, _) = run_seq(&p);
        let mut dl = Deadline::unlimited();
        let mut bstats = SearchStats::default();
        let filter = FilterMatrix::build(&p, &mut dl, &mut bstats).unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let mut scratch = ParallelScratch::new();
        let (sols, end) = search_prebuilt_with_policy(
            &p,
            &filter,
            3,
            None,
            NodeOrder::default(),
            &mut dl,
            &mut stats,
            &mut scratch,
            StealPolicy::disabled(),
        );
        assert_eq!(end, SearchEnd::Exhausted);
        assert_eq!(sorted(sols), sorted(seq));
        assert_eq!(stats.tasks_spawned, 0, "disabled policy must never split");
        assert_eq!(stats.tasks_stolen, 0);
    }

    #[test]
    fn single_thread_equals_sequential() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 1, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);
        // K6 hosts all 6·5·4 = 120 oriented triangles... as a ring of 3 the
        // count equals the number of ordered 3-subsets = 120.
        assert_eq!(sols.len(), 120);
        // A lone worker has nobody to feed.
        assert_eq!(stats.tasks_stolen, 0);
    }

    #[test]
    fn limit_stops_early() {
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) =
            search(&p, 4, Some(5), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sols.len(), 5);
        for m in &sols {
            check_mapping(&p, m).unwrap();
        }
    }

    #[test]
    fn limit_hit_clears_timed_out() {
        // Regression: the limit stop cancels the pool deadline, making
        // workers report Timeout; the merged stats must not claim the
        // search timed out when the solution limit (not the clock)
        // stopped it.
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) =
            search(&p, 4, Some(3), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sols.len(), 3);
        assert!(
            !stats.timed_out,
            "limit-stopped search must not report a timeout"
        );
    }

    #[test]
    fn limit_hit_does_not_cancel_caller_deadline() {
        // Regression: the pool's limit-triggered cancel must stay scoped
        // to the pool — the caller's deadline remains usable for later
        // phases of the same request.
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (_, end) = search(&p, 4, Some(2), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert!(!dl.was_expired());
        assert!(
            !dl.check_now(),
            "limit cancel leaked into the caller's deadline"
        );
    }

    #[test]
    fn elapsed_is_wall_clock_not_worker_sum() {
        // A multi-root problem with enough work that 4 workers each
        // accumulate measurable time: merged `elapsed` must stay within
        // the caller-observed wall clock (summing per-worker durations
        // would exceed it), while `cpu_time` carries the worker sum.
        let h = grid_host(9);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let outer = std::time::Instant::now();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        let wall = outer.elapsed();
        assert_eq!(end, SearchEnd::Exhausted);
        assert!(!sols.is_empty());
        assert!(
            stats.elapsed <= wall,
            "merged elapsed {:?} exceeds caller wall clock {:?}",
            stats.elapsed,
            wall
        );
        assert!(stats.cpu_time > std::time::Duration::ZERO);

        // And the parallel wall clock stays in the same ballpark as one
        // sequential run (a merge that summed worker durations would
        // multiply it by the worker count; allow generous slack for
        // thread spawn overhead on loaded machines).
        let mut seq_sink = CollectAll::default();
        let mut seq_stats = SearchStats::default();
        let mut seq_dl = Deadline::unlimited();
        ecf::search(
            &p,
            NodeOrder::default(),
            &mut seq_dl,
            &mut seq_sink,
            &mut seq_stats,
        )
        .unwrap();
        let bound = seq_stats.elapsed * 8 + std::time::Duration::from_millis(250);
        assert!(
            stats.elapsed <= bound,
            "parallel elapsed {:?} not within ~sequential {:?}",
            stats.elapsed,
            seq_stats.elapsed
        );
    }

    #[test]
    fn truncated_build_populates_filter_counters() {
        // A pre-expired deadline truncates the build before any scan
        // work; the stats must still carry the filter-phase counters
        // (here: zero cells, but *set*, plus the timeout flags) so
        // harness timeout rows stay comparable.
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats {
            filter_cells: 999, // stale value from a previous run
            ..SearchStats::default()
        };
        let mut dl = Deadline::new(Some(std::time::Duration::ZERO));
        dl.check_now();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
        assert_eq!(stats.filter_cells, 0, "truncated build must reset cells");
        assert_eq!(stats.solutions, 0);
    }

    #[test]
    fn prebuilt_truncated_filter_reports_timeout_with_counters() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut bstats = SearchStats::default();
        let mut bdl = Deadline::new(Some(std::time::Duration::ZERO));
        bdl.check_now();
        let filter = FilterMatrix::build(&p, &mut bdl, &mut bstats).unwrap();
        assert!(filter.truncated());

        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let mut scratch = ParallelScratch::new();
        let (sols, end) = search_prebuilt(
            &p,
            &filter,
            4,
            None,
            NodeOrder::default(),
            &mut dl,
            &mut stats,
            &mut scratch,
        );
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
        assert_eq!(stats.filter_cells, filter.cell_count() as u64);
    }

    #[test]
    fn scratch_reuse_across_calls_matches_fresh() {
        let h = grid_host(7);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "rEdge.d <= 40.0").unwrap();
        let mut scratch = ParallelScratch::new();
        let run = |scratch: &mut ParallelScratch| {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let (sols, end) = search_with_scratch(
                &p,
                3,
                None,
                NodeOrder::default(),
                &mut dl,
                &mut stats,
                scratch,
            )
            .unwrap();
            assert_eq!(end, SearchEnd::Exhausted);
            sorted(sols)
        };
        let first = run(&mut scratch);
        let second = run(&mut scratch);
        let third = run(&mut scratch);
        assert_eq!(first, second);
        assert_eq!(second, third);
    }

    #[test]
    fn warm_pool_makes_repeat_searches_spawn_free() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();
        let mut dl = Deadline::unlimited();
        let mut bstats = SearchStats::default();
        let filter = FilterMatrix::build(&p, &mut dl, &mut bstats).unwrap();
        let mut scratch = ParallelScratch::new();

        // Cold run: the pool is empty, every worker thread is new.
        let mut cold = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (first, end) = search_prebuilt(
            &p,
            &filter,
            4,
            None,
            NodeOrder::default(),
            &mut dl,
            &mut cold,
            &mut scratch,
        );
        assert_eq!(end, SearchEnd::Exhausted);
        assert_eq!(cold.pool_reuse, 0, "cold pool has nothing to reuse");
        let spawned = scratch.pool().spawned_total();
        assert_eq!(spawned, 4, "cold run spawns exactly the worker count");

        // Warm runs: zero new threads, full reuse, identical answers.
        for round in 0..3 {
            let mut warm = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let (again, end) = search_prebuilt(
                &p,
                &filter,
                4,
                None,
                NodeOrder::default(),
                &mut dl,
                &mut warm,
                &mut scratch,
            );
            assert_eq!(end, SearchEnd::Exhausted, "round {round}");
            assert_eq!(sorted(again), sorted(first.clone()), "round {round}");
            assert_eq!(
                scratch.pool().spawned_total(),
                spawned,
                "warm round {round} spawned new threads"
            );
            assert_eq!(warm.pool_reuse, 4, "round {round} must reuse all workers");
        }
    }

    #[test]
    fn pooled_build_matches_scoped_build() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();
        let mut dl = Deadline::unlimited();
        let mut s1 = SearchStats::default();
        let scoped = FilterMatrix::build_par(&p, 4, &mut dl, &mut s1).unwrap();
        let mut pool = crate::pool::WorkerPool::new();
        let mut dl = Deadline::unlimited();
        let mut s2 = SearchStats::default();
        let pooled = FilterMatrix::build_par_pooled(&p, 4, &mut dl, &mut s2, &mut pool).unwrap();
        assert!(scoped == pooled, "pooled build must be bitwise-identical");
        assert_eq!(s1.constraint_evals, s2.constraint_evals);
        // And a second pooled build reuses the same threads.
        let before = pool.spawned_total();
        let mut dl = Deadline::unlimited();
        let mut s3 = SearchStats::default();
        let again = FilterMatrix::build_par_pooled(&p, 4, &mut dl, &mut s3, &mut pool).unwrap();
        assert!(again == pooled, "warm pooled build diverged");
        assert_eq!(pool.spawned_total(), before, "warm build spawned threads");
    }

    #[test]
    fn infeasible_parallel_is_definitive() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        // 64 requested threads on a 4-node toy problem: the scheduler
        // bounds the pool by the top-two-level tree width instead of
        // spawning 60 workers that could never be fed.
        let h = grid_host(4);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = search(&p, 64, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(sols.len(), 4 * 3 * 2);
    }
}

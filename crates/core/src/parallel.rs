//! Parallel ECF: fan the root of the permutation tree out over threads.
//!
//! The paper notes (§III, §VIII) that the NETEMBED service can be
//! replicated and ultimately distributed. Within one machine the natural
//! parallelization of ECF partitions the *root level* of the permutation
//! tree: each worker owns a disjoint slice of the first query node's
//! candidate list and runs the ordinary sequential DFS below it. Subtrees
//! are completely independent (they share only the read-only filter
//! matrix), so the decomposition is embarrassingly parallel; the only
//! cross-worker coordination is the shared cancellation flag used for
//! first-match mode and deadline expiry.
//!
//! The filter build itself is parallelized too
//! ([`FilterMatrix::build_par`] — disjoint cell rows per query edge), so
//! both stages use the thread budget.
//!
//! ## Deadline and stats discipline
//!
//! Workers run under a [`Deadline::scoped`] child of the caller's
//! deadline: hitting the solution limit cancels *the pool's* deadline so
//! all workers stop, without expiring the deadline the caller handed in
//! (which may govern later phases). Workers that stop because of that
//! cancellation report `Timeout` locally; the merge reclassifies the run
//! as [`SearchEnd::SinkStop`] and clears `timed_out` — only a real clock
//! expiry marks the merged stats as timed out. Merged `elapsed` is the
//! caller-observed wall clock (`start.elapsed()`), never a sum of
//! overlapping per-worker durations; those are summed separately into
//! [`SearchStats::cpu_time`].

use crate::deadline::Deadline;
use crate::ecf::{root_candidates, run_dfs, SearchEnd};
use crate::filter::FilterMatrix;
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder};
use crate::problem::{Problem, ProblemError};
use crate::scratch::ParallelScratch;
use crate::sink::{SinkControl, SolutionSink};
use crate::stats::SearchStats;
use netgraph::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parallel all-matches / up-to-k search.
///
/// `limit = None` enumerates everything; `Some(k)` stops all workers as
/// soon as `k` solutions have been found globally (the merged result is
/// truncated to `k`; *which* k solutions are returned depends on thread
/// scheduling, exactly like the paper's timeout-based partial results).
pub fn search(
    problem: &Problem<'_>,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    search_with_scratch(
        problem,
        threads,
        limit,
        order,
        deadline,
        stats,
        &mut ParallelScratch::new(),
    )
}

/// [`search`] with caller-held per-worker scratches: a long-lived caller
/// (the service batch path) pays each worker's DFS-arena setup once.
#[allow(clippy::too_many_arguments)]
pub fn search_with_scratch(
    problem: &Problem<'_>,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
    scratch: &mut ParallelScratch,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    assert!(threads >= 1, "need at least one thread");
    let start = std::time::Instant::now();
    let filter = FilterMatrix::build_par(problem, threads, deadline, stats)?;
    let (merged, end) = search_prebuilt(
        problem, &filter, threads, limit, order, deadline, stats, scratch,
    );
    // Authoritative wall clock for the whole run (build + search).
    stats.elapsed = start.elapsed();
    Ok((merged, end))
}

/// The parallel second stage over an already constructed filter. Filter
/// reuse across calls composes with scratch reuse: repeated parallel
/// searches allocate nothing beyond their result vectors.
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    threads: usize,
    limit: Option<usize>,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
    scratch: &mut ParallelScratch,
) -> (Vec<Mapping>, SearchEnd) {
    assert!(threads >= 1, "need at least one thread");
    let start = std::time::Instant::now();
    // Filter-phase counters are reported even when the build was cut
    // short, so harness timeout rows stay comparable.
    stats.filter_cells = filter.cell_count() as u64;
    if filter.truncated() || deadline.check_now() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        return (Vec::new(), SearchEnd::Timeout);
    }
    let node_order = compute_order(problem.query, filter, order);
    let preds = predecessors(problem.query, &node_order);

    // Root candidates (expression (1)).
    let roots = root_candidates(problem, filter, &node_order, &preds);

    if roots.is_empty() {
        stats.elapsed = start.elapsed();
        return (Vec::new(), SearchEnd::Exhausted);
    }

    let workers = threads.min(roots.len());
    let found = AtomicU64::new(0);
    let limit_u64 = limit.map(|k| k as u64);

    // The pool runs under a scoped child deadline: the solution-limit
    // stop cancels only the pool, never the caller's deadline.
    let pool_deadline = deadline.scoped();

    // A sink that collects locally and observes the global counter.
    struct WorkerSink<'s> {
        local: Vec<Mapping>,
        found: &'s AtomicU64,
        limit: Option<u64>,
        deadline: Deadline,
    }
    impl SolutionSink for WorkerSink<'_> {
        fn report(&mut self, mapping: &Mapping) -> SinkControl {
            let n = self.found.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(k) = self.limit {
                if n > k {
                    // Someone else already hit the limit; drop and stop.
                    return SinkControl::Stop;
                }
                self.local.push(mapping.clone());
                if n == k {
                    self.deadline.cancel();
                    return SinkControl::Stop;
                }
                return SinkControl::Continue;
            }
            self.local.push(mapping.clone());
            SinkControl::Continue
        }
    }

    let mut merged: Vec<Mapping> = Vec::new();
    let mut ends: Vec<SearchEnd> = Vec::new();
    let scratches = scratch.for_workers(workers);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, wscratch) in scratches.iter_mut().enumerate() {
            // Strided partition spreads "hot" root candidates evenly.
            let my_roots: Vec<NodeId> = roots.iter().copied().skip(w).step_by(workers).collect();
            let node_order = &node_order;
            let preds = &preds;
            let found = &found;
            let dl = pool_deadline.clone();
            handles.push(scope.spawn(move |_| {
                let wstart = std::time::Instant::now();
                let mut sink = WorkerSink {
                    local: Vec::new(),
                    found,
                    limit: limit_u64,
                    deadline: dl.clone(),
                };
                let mut my_dl = dl;
                let mut my_stats = SearchStats::default();
                let end = run_dfs(
                    problem,
                    filter,
                    node_order,
                    preds,
                    &mut my_dl,
                    &mut sink,
                    &mut my_stats,
                    None,
                    Some(&my_roots),
                    wscratch,
                );
                // Per-worker accounting: a worker stopped by the shared
                // cancellation honestly reports Timeout here; the merge
                // below reclassifies limit-triggered stops.
                my_stats.timed_out = end == SearchEnd::Timeout;
                my_stats.cpu_time = wstart.elapsed();
                (sink.local, end, my_stats)
            }));
        }
        for h in handles {
            let (local, end, wstats) = h.join().expect("worker panicked");
            merged.extend(local);
            ends.push(end);
            stats.merge(&wstats);
        }
    })
    .expect("scope failure");

    // Aggregate ends. If the global limit was reached, workers observe a
    // cancelled pool deadline and report Timeout — reclassify as SinkStop.
    let limit_hit = limit_u64.is_some_and(|k| found.load(Ordering::Relaxed) >= k);
    let end = if limit_hit {
        SearchEnd::SinkStop
    } else if ends.contains(&SearchEnd::Timeout) {
        SearchEnd::Timeout
    } else if ends.contains(&SearchEnd::SinkStop) {
        SearchEnd::SinkStop
    } else {
        SearchEnd::Exhausted
    };
    if let Some(k) = limit {
        merged.truncate(k);
    }
    stats.solutions = merged.len() as u64;
    // The limit (not the clock) stopped the search: the merged stats must
    // not carry the workers' limit-induced `timed_out`.
    stats.timed_out = end == SearchEnd::Timeout;
    // Wall clock as observed by this caller — never the worker sum
    // (which lives in `cpu_time` via the merge).
    stats.elapsed = start.elapsed();
    (merged, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecf;
    use crate::sink::CollectAll;
    use crate::verify::check_mapping;
    use netgraph::{Direction, Network};

    fn grid_host(n: usize) -> Network {
        // Clique host with varied delays — lots of embeddings.
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let e = h.add_edge(ids[i], ids[j]);
                h.set_edge_attr(e, "d", ((i * 7 + j * 3) % 50) as f64);
            }
        }
        h
    }

    fn ring_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..n {
            q.add_edge(ids[i], ids[(i + 1) % n]);
        }
        q
    }

    #[test]
    fn parallel_matches_sequential_solution_set() {
        let h = grid_host(8);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "rEdge.d <= 30.0").unwrap();

        // Sequential reference.
        let mut sink = CollectAll::default();
        let mut seq_stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        ecf::search(&p, NodeOrder::default(), &mut dl, &mut sink, &mut seq_stats).unwrap();
        let mut seq: Vec<Mapping> = sink.solutions;

        // Parallel.
        let mut par_stats = SearchStats::default();
        let mut dl2 = Deadline::unlimited();
        let (mut par, end) =
            search(&p, 4, None, NodeOrder::default(), &mut dl2, &mut par_stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);

        let key = |m: &Mapping| m.as_slice().to_vec();
        seq.sort_by_key(key);
        par.sort_by_key(key);
        assert_eq!(seq, par);
        for m in &par {
            check_mapping(&p, m).unwrap();
        }
        // Both runs evaluated the same filter: identical build counters.
        assert_eq!(seq_stats.constraint_evals, par_stats.constraint_evals);
        assert_eq!(seq_stats.filter_cells, par_stats.filter_cells);
    }

    #[test]
    fn single_thread_equals_sequential() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 1, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::Exhausted);
        // K6 hosts all 6·5·4 = 120 oriented triangles... as a ring of 3 the
        // count equals the number of ordered 3-subsets = 120.
        assert_eq!(sols.len(), 120);
    }

    #[test]
    fn limit_stops_early() {
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) =
            search(&p, 4, Some(5), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sols.len(), 5);
        for m in &sols {
            check_mapping(&p, m).unwrap();
        }
    }

    #[test]
    fn limit_hit_clears_timed_out() {
        // Regression: the limit stop cancels the pool deadline, making
        // workers report Timeout; the merged stats must not claim the
        // search timed out when the solution limit (not the clock)
        // stopped it.
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) =
            search(&p, 4, Some(3), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert_eq!(sols.len(), 3);
        assert!(
            !stats.timed_out,
            "limit-stopped search must not report a timeout"
        );
    }

    #[test]
    fn limit_hit_does_not_cancel_caller_deadline() {
        // Regression: the pool's limit-triggered cancel must stay scoped
        // to the pool — the caller's deadline remains usable for later
        // phases of the same request.
        let h = grid_host(8);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (_, end) = search(&p, 4, Some(2), NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(end, SearchEnd::SinkStop);
        assert!(!dl.was_expired());
        assert!(
            !dl.check_now(),
            "limit cancel leaked into the caller's deadline"
        );
    }

    #[test]
    fn elapsed_is_wall_clock_not_worker_sum() {
        // A multi-root problem with enough work that 4 workers each
        // accumulate measurable time: merged `elapsed` must stay within
        // the caller-observed wall clock (summing per-worker durations
        // would exceed it), while `cpu_time` carries the worker sum.
        let h = grid_host(9);
        let q = ring_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let outer = std::time::Instant::now();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        let wall = outer.elapsed();
        assert_eq!(end, SearchEnd::Exhausted);
        assert!(!sols.is_empty());
        assert!(
            stats.elapsed <= wall,
            "merged elapsed {:?} exceeds caller wall clock {:?}",
            stats.elapsed,
            wall
        );
        assert!(stats.cpu_time > std::time::Duration::ZERO);

        // And the parallel wall clock stays in the same ballpark as one
        // sequential run (a merge that summed worker durations would
        // multiply it by the worker count; allow generous slack for
        // thread spawn overhead on loaded machines).
        let mut seq_sink = CollectAll::default();
        let mut seq_stats = SearchStats::default();
        let mut seq_dl = Deadline::unlimited();
        ecf::search(
            &p,
            NodeOrder::default(),
            &mut seq_dl,
            &mut seq_sink,
            &mut seq_stats,
        )
        .unwrap();
        let bound = seq_stats.elapsed * 8 + std::time::Duration::from_millis(250);
        assert!(
            stats.elapsed <= bound,
            "parallel elapsed {:?} not within ~sequential {:?}",
            stats.elapsed,
            seq_stats.elapsed
        );
    }

    #[test]
    fn truncated_build_populates_filter_counters() {
        // A pre-expired deadline truncates the build before any scan
        // work; the stats must still carry the filter-phase counters
        // (here: zero cells, but *set*, plus the timeout flags) so
        // harness timeout rows stay comparable.
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats {
            filter_cells: 999, // stale value from a previous run
            ..SearchStats::default()
        };
        let mut dl = Deadline::new(Some(std::time::Duration::ZERO));
        dl.check_now();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
        assert_eq!(stats.filter_cells, 0, "truncated build must reset cells");
        assert_eq!(stats.solutions, 0);
    }

    #[test]
    fn prebuilt_truncated_filter_reports_timeout_with_counters() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut bstats = SearchStats::default();
        let mut bdl = Deadline::new(Some(std::time::Duration::ZERO));
        bdl.check_now();
        let filter = FilterMatrix::build(&p, &mut bdl, &mut bstats).unwrap();
        assert!(filter.truncated());

        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let mut scratch = ParallelScratch::new();
        let (sols, end) = search_prebuilt(
            &p,
            &filter,
            4,
            None,
            NodeOrder::default(),
            &mut dl,
            &mut stats,
            &mut scratch,
        );
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Timeout);
        assert!(stats.timed_out);
        assert_eq!(stats.filter_cells, filter.cell_count() as u64);
    }

    #[test]
    fn scratch_reuse_across_calls_matches_fresh() {
        let h = grid_host(7);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "rEdge.d <= 40.0").unwrap();
        let mut scratch = ParallelScratch::new();
        let run = |scratch: &mut ParallelScratch| {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let (mut sols, end) = search_with_scratch(
                &p,
                3,
                None,
                NodeOrder::default(),
                &mut dl,
                &mut stats,
                scratch,
            )
            .unwrap();
            assert_eq!(end, SearchEnd::Exhausted);
            sols.sort_by_key(|m| m.as_slice().to_vec());
            sols
        };
        let first = run(&mut scratch);
        let second = run(&mut scratch);
        let third = run(&mut scratch);
        assert_eq!(first, second);
        assert_eq!(second, third);
    }

    #[test]
    fn infeasible_parallel_is_definitive() {
        let h = grid_host(6);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "rEdge.d > 1e9").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        assert_eq!(end, SearchEnd::Exhausted);
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let h = grid_host(4);
        let q = ring_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = search(&p, 64, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(sols.len(), 4 * 3 * 2);
    }
}

//! Link→path embedding — the paper's first "current and future work" item
//! (§VIII): *"allow many-to-one mappings between virtual and real nodes
//! (e.g., by mapping a link in the query network to a path in the real
//! network)"*.
//!
//! A virtual link may now be realized by a host *path* of up to
//! `max_hops` edges, provided the path's aggregated metric satisfies the
//! link's requested window. Aggregation follows standard VNE practice:
//! additive metrics (delay) are summed along the path; capacity metrics
//! (bandwidth) take the path minimum. Because the general constraint
//! language of §VI-B is defined over *edges*, path admissibility uses the
//! workspace's delay-window convention instead: query edges carry
//! `dmin`/`dmax` attributes bounding the aggregated cost attribute
//! (`avgDelay` by default) — exactly the convention every experiment
//! workload already uses.
//!
//! The search is LNS-shaped (grow a covered set, extend by the most-
//! constrained neighbor) since filter matrices over all node *pairs* would
//! square the already-large edge-candidate space. Query **nodes** remain
//! injectively mapped; intermediate relay nodes of different paths may be
//! shared, which matches the paper's testbed semantics (relays forward
//! traffic, they are not allocated).

use crate::deadline::Deadline;
use crate::ecf::SearchEnd;
use crate::mapping::Mapping;
use cexpr::{parse, Compiled, NodeCtx, ParseError};
use netgraph::{AttrValue, EdgeId, Network, NodeBitSet, NodeId};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Candidate host node → the witness path per already-anchored query edge.
type CandidateWitnesses = FxHashMap<NodeId, Vec<(EdgeId, Vec<NodeId>)>>;

/// How path admissibility is judged.
#[derive(Debug, Clone)]
pub struct PathPolicy {
    /// Maximum number of host edges a virtual link may span (≥ 1).
    pub max_hops: usize,
    /// Host edge attribute summed along the path (additive metric).
    pub cost_attr: String,
    /// Query edge attributes bounding the aggregated cost: `(lo, hi)`.
    /// A missing `lo` means 0, a missing `hi` means unbounded.
    pub window_attrs: (String, String),
    /// Optional capacity rule: `(host_attr, query_attr)` — the minimum of
    /// `host_attr` along the path must be ≥ the query edge's `query_attr`.
    pub capacity: Option<(String, String)>,
}

impl Default for PathPolicy {
    fn default() -> Self {
        PathPolicy {
            max_hops: 3,
            cost_attr: "avgDelay".into(),
            window_attrs: ("dmin".into(), "dmax".into()),
            capacity: None,
        }
    }
}

/// A complete link→path embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMapping {
    /// Injective node mapping (query node → host node).
    pub nodes: Mapping,
    /// For every query edge, the witness host path (node sequence from the
    /// image of the edge's source to the image of its target).
    pub paths: Vec<(EdgeId, Vec<NodeId>)>,
}

/// Errors from path-embedding runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PathMapError {
    /// `max_hops` must be at least 1.
    ZeroHops,
    /// The optional node constraint failed to parse.
    Parse(ParseError),
    /// Node-constraint evaluation raised a type error.
    Eval(cexpr::EvalError),
    /// Query larger than host (no injective node mapping exists).
    QueryLargerThanHost,
}

impl std::fmt::Display for PathMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathMapError::ZeroHops => write!(f, "max_hops must be at least 1"),
            PathMapError::Parse(e) => write!(f, "{e}"),
            PathMapError::Eval(e) => write!(f, "{e}"),
            PathMapError::QueryLargerThanHost => {
                write!(f, "query has more nodes than the host")
            }
        }
    }
}

impl std::error::Error for PathMapError {}

/// Find up to `limit` link→path embeddings of `query` into `host`.
///
/// `node_constraint` optionally restricts node placement with a
/// `vNode`/`rNode` expression (§VI-B extension), e.g.
/// `isBoundTo(vNode.osType, rNode.osType)`.
pub fn search_paths(
    query: &Network,
    host: &Network,
    policy: &PathPolicy,
    node_constraint: Option<&str>,
    limit: usize,
    deadline: &mut Deadline,
) -> Result<(Vec<PathMapping>, SearchEnd), PathMapError> {
    if policy.max_hops == 0 {
        return Err(PathMapError::ZeroHops);
    }
    if query.node_count() > host.node_count() {
        return Err(PathMapError::QueryLargerThanHost);
    }
    let node_expr = match node_constraint {
        Some(src) => Some(Compiled::new(
            &parse(src).map_err(PathMapError::Parse)?,
            query,
            host,
        )),
        None => None,
    };
    let started = Instant::now();
    let mut state = State {
        query,
        host,
        policy,
        node_expr,
        assign: vec![NodeId(u32::MAX); query.node_count()],
        covered: vec![false; query.node_count()],
        covered_links: vec![0; query.node_count()],
        used: NodeBitSet::new(host.node_count()),
        depth: 0,
        paths: FxHashMap::default(),
        results: Vec::new(),
        limit: limit.max(1),
    };
    let end = state.extend(deadline)?;
    let _ = started;
    Ok((state.results, end))
}

/// Check a [`PathMapping`] independently (tests + service safety net).
pub fn check_path_mapping(
    query: &Network,
    host: &Network,
    policy: &PathPolicy,
    pm: &PathMapping,
) -> Result<(), String> {
    if pm.nodes.len() != query.node_count() {
        return Err("wrong node-mapping length".into());
    }
    let mut used = NodeBitSet::new(host.node_count());
    for (_, r) in pm.nodes.iter() {
        if used.contains(r) {
            return Err(format!("host node {r} used twice"));
        }
        used.insert(r);
    }
    if pm.paths.len() != query.edge_count() {
        return Err("missing witness paths".into());
    }
    for (qe, path) in &pm.paths {
        let (qs, qd) = query.edge_endpoints(*qe);
        if path.first() != Some(&pm.nodes.get(qs)) || path.last() != Some(&pm.nodes.get(qd)) {
            return Err(format!("path endpoints wrong for query edge {qe}"));
        }
        if path.len() < 2 || path.len() - 1 > policy.max_hops {
            return Err(format!("path length out of bounds for query edge {qe}"));
        }
        let mut cost = 0.0;
        let mut min_cap = f64::INFINITY;
        for w in path.windows(2) {
            let Some(he) = host.find_edge(w[0], w[1]) else {
                return Err(format!("missing host edge {} - {}", w[0], w[1]));
            };
            cost += host
                .edge_attr_by_name(he, &policy.cost_attr)
                .and_then(AttrValue::as_num)
                .unwrap_or(0.0);
            if let Some((host_attr, _)) = &policy.capacity {
                min_cap = min_cap.min(
                    host.edge_attr_by_name(he, host_attr)
                        .and_then(AttrValue::as_num)
                        .unwrap_or(0.0),
                );
            }
        }
        let (lo, hi) = window_of(query, *qe, policy);
        if cost < lo - 1e-9 || cost > hi + 1e-9 {
            return Err(format!(
                "path cost {cost} outside window [{lo}, {hi}] for query edge {qe}"
            ));
        }
        if let Some((_, query_attr)) = &policy.capacity {
            let need = query
                .edge_attr_by_name(*qe, query_attr)
                .and_then(AttrValue::as_num)
                .unwrap_or(0.0);
            if min_cap < need {
                return Err(format!(
                    "path capacity {min_cap} below requested {need} for query edge {qe}"
                ));
            }
        }
    }
    Ok(())
}

fn window_of(query: &Network, qe: EdgeId, policy: &PathPolicy) -> (f64, f64) {
    let lo = query
        .edge_attr_by_name(qe, &policy.window_attrs.0)
        .and_then(AttrValue::as_num)
        .unwrap_or(0.0);
    let hi = query
        .edge_attr_by_name(qe, &policy.window_attrs.1)
        .and_then(AttrValue::as_num)
        .unwrap_or(f64::INFINITY);
    (lo, hi)
}

struct State<'a> {
    query: &'a Network,
    host: &'a Network,
    policy: &'a PathPolicy,
    node_expr: Option<Compiled>,
    assign: Vec<NodeId>,
    covered: Vec<bool>,
    covered_links: Vec<u32>,
    used: NodeBitSet,
    depth: usize,
    /// Witness path per query edge for the current partial mapping.
    paths: FxHashMap<u32, Vec<NodeId>>,
    results: Vec<PathMapping>,
    limit: usize,
}

impl State<'_> {
    fn node_ok(&self, v: NodeId, r: NodeId) -> Result<bool, PathMapError> {
        match &self.node_expr {
            None => Ok(true),
            Some(c) => c
                .eval_node(&NodeCtx {
                    q: self.query,
                    r: self.host,
                    v_node: v,
                    r_node: r,
                })
                .map_err(PathMapError::Eval),
        }
    }

    fn pick_next(&self) -> NodeId {
        let q = self.query;
        q.node_ids()
            .filter(|v| !self.covered[v.index()])
            .max_by_key(|&v| {
                (
                    self.covered_links[v.index()],
                    q.total_degree(v),
                    std::cmp::Reverse(v),
                )
            })
            .expect("uncovered node exists")
    }

    /// All admissible `(target, witness path rc→target)` pairs for the
    /// query edge `qe` anchored at host node `rc` (which hosts the covered
    /// endpoint). Paths are enumerated outward from `rc`; cost pruning cuts
    /// branches that already exceed the window's upper bound.
    fn admissible_targets(
        &self,
        qe: EdgeId,
        rc: NodeId,
        reverse: bool,
    ) -> FxHashMap<NodeId, Vec<NodeId>> {
        let (lo, hi) = window_of(self.query, qe, self.policy);
        let cap_need = self.policy.capacity.as_ref().map(|(_, qattr)| {
            self.query
                .edge_attr_by_name(qe, qattr)
                .and_then(AttrValue::as_num)
                .unwrap_or(0.0)
        });
        let mut found: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        let mut stack = vec![rc];
        let mut on_path = NodeBitSet::new(self.host.node_count());
        on_path.insert(rc);
        self.dfs_targets(
            &mut stack,
            &mut on_path,
            0.0,
            f64::INFINITY,
            lo,
            hi,
            cap_need,
            reverse,
            &mut found,
        );
        found
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_targets(
        &self,
        stack: &mut Vec<NodeId>,
        on_path: &mut NodeBitSet,
        cost: f64,
        min_cap: f64,
        lo: f64,
        hi: f64,
        cap_need: Option<f64>,
        reverse: bool,
        found: &mut FxHashMap<NodeId, Vec<NodeId>>,
    ) {
        let u = *stack.last().expect("non-empty");
        // For directed hosts a query edge vc→vn anchored at the covered
        // source walks out-edges; anchored at the covered target (reverse)
        // it walks in-edges. Undirected hosts treat both alike.
        let neighbors = if reverse {
            self.host.in_neighbors(u)
        } else {
            self.host.neighbors(u)
        };
        for &(v, e) in neighbors {
            if on_path.contains(v) {
                continue;
            }
            let step = self
                .host
                .edge_attr_by_name(e, &self.policy.cost_attr)
                .and_then(AttrValue::as_num)
                .unwrap_or(0.0);
            let new_cost = cost + step;
            if new_cost > hi + 1e-9 {
                continue; // additive, non-negative: no path below can recover
            }
            let new_cap = match &self.policy.capacity {
                Some((host_attr, _)) => min_cap.min(
                    self.host
                        .edge_attr_by_name(e, host_attr)
                        .and_then(AttrValue::as_num)
                        .unwrap_or(0.0),
                ),
                None => min_cap,
            };
            if let Some(need) = cap_need {
                if new_cap < need {
                    continue;
                }
            }
            stack.push(v);
            if new_cost >= lo - 1e-9 {
                // Keep the first (shortest-discovered) witness per target.
                found.entry(v).or_insert_with(|| {
                    let mut p = stack.clone();
                    if reverse {
                        p.reverse();
                    }
                    p
                });
            }
            if stack.len() - 1 < self.policy.max_hops {
                on_path.insert(v);
                self.dfs_targets(
                    stack, on_path, new_cost, new_cap, lo, hi, cap_need, reverse, found,
                );
                on_path.remove(v);
            }
            stack.pop();
        }
    }

    fn extend(&mut self, deadline: &mut Deadline) -> Result<SearchEnd, PathMapError> {
        if deadline.expired() {
            return Ok(SearchEnd::Timeout);
        }
        if self.depth == self.query.node_count() {
            let mut paths: Vec<(EdgeId, Vec<NodeId>)> = self
                .paths
                .iter()
                .map(|(e, p)| (EdgeId(*e), p.clone()))
                .collect();
            paths.sort_by_key(|(e, _)| *e);
            self.results.push(PathMapping {
                nodes: Mapping::new(self.assign.clone()),
                paths,
            });
            return Ok(if self.results.len() >= self.limit {
                SearchEnd::SinkStop
            } else {
                SearchEnd::Exhausted
            });
        }

        let vn = self.pick_next();
        // Anchors: covered neighbors with the query edge connecting them.
        let mut anchors: Vec<(NodeId, EdgeId, bool)> = Vec::new();
        for &(nb, e) in self.query.neighbors(vn) {
            if self.covered[nb.index()] {
                // Query edge stored with some orientation; path must run
                // image(src) → image(dst). vn side: if vn is the stored
                // source, the anchor (covered dst) explores reverse.
                let (qs, _) = self.query.edge_endpoints(e);
                anchors.push((nb, e, qs == vn));
            }
        }
        if !self.query.is_undirected() {
            for &(nb, e) in self.query.in_neighbors(vn) {
                if self.covered[nb.index()] && !anchors.iter().any(|(_, ae, _)| *ae == e) {
                    let (qs, _) = self.query.edge_endpoints(e);
                    anchors.push((nb, e, qs == vn));
                }
            }
        }

        // Candidate targets: intersection of per-anchor admissible sets.
        let mut candidate_paths: Option<CandidateWitnesses> = None;
        if anchors.is_empty() {
            let mut map = FxHashMap::default();
            for r in self.host.node_ids() {
                if !self.used.contains(r) && self.node_ok(vn, r)? {
                    map.insert(r, Vec::new());
                }
            }
            candidate_paths = Some(map);
        } else {
            for (nb, e, vn_is_source) in &anchors {
                let rc = self.assign[nb.index()];
                // If vn is the stored source, paths run r → rc, i.e. from
                // the anchor's perspective we walk host edges in reverse.
                let targets = self.admissible_targets(*e, rc, *vn_is_source);
                let mut next: CandidateWitnesses = FxHashMap::default();
                match &candidate_paths {
                    None => {
                        for (r, path) in targets {
                            if !self.used.contains(r) && self.node_ok(vn, r)? {
                                next.insert(r, vec![(*e, path)]);
                            }
                        }
                    }
                    Some(prev) => {
                        for (r, mut witness) in prev.clone() {
                            if let Some(path) = targets.get(&r) {
                                witness.push((*e, path.clone()));
                                next.insert(r, witness);
                            }
                        }
                    }
                }
                candidate_paths = Some(next);
                if candidate_paths.as_ref().is_some_and(FxHashMap::is_empty) {
                    break;
                }
            }
        }

        let candidates = candidate_paths.unwrap_or_default();
        let mut keys: Vec<NodeId> = candidates.keys().copied().collect();
        keys.sort();
        for r in keys {
            let witness = &candidates[&r];
            // Cover vn → r.
            self.covered[vn.index()] = true;
            self.assign[vn.index()] = r;
            self.used.insert(r);
            self.depth += 1;
            for &(nb, _) in self
                .query
                .neighbors(vn)
                .iter()
                .chain(self.query.in_neighbors(vn))
            {
                self.covered_links[nb.index()] += 1;
            }
            for (e, p) in witness {
                self.paths.insert(e.0, p.clone());
            }

            let end = self.extend(deadline)?;

            for (e, _) in witness {
                self.paths.remove(&e.0);
            }
            for &(nb, _) in self
                .query
                .neighbors(vn)
                .iter()
                .chain(self.query.in_neighbors(vn))
            {
                self.covered_links[nb.index()] -= 1;
            }
            self.depth -= 1;
            self.used.remove(r);
            self.assign[vn.index()] = NodeId(u32::MAX);
            self.covered[vn.index()] = false;

            match end {
                SearchEnd::Exhausted => {}
                other => return Ok(other),
            }
        }
        Ok(SearchEnd::Exhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    /// Host: a line u0-u1-u2-u3 with 10ms per hop.
    fn line_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("u{i}"))).collect();
        for w in ids.windows(2) {
            let e = h.add_edge(w[0], w[1]);
            h.set_edge_attr(e, "avgDelay", 10.0);
        }
        h
    }

    fn edge_query(lo: f64, hi: f64) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let e = q.add_edge(a, b);
        q.set_edge_attr(e, "dmin", lo);
        q.set_edge_attr(e, "dmax", hi);
        q
    }

    fn run(q: &Network, h: &Network, policy: &PathPolicy, limit: usize) -> Vec<PathMapping> {
        let mut dl = Deadline::unlimited();
        let (sols, _) = search_paths(q, h, policy, None, limit, &mut dl).unwrap();
        for pm in &sols {
            check_path_mapping(q, h, policy, pm).unwrap();
        }
        sols
    }

    #[test]
    fn single_hop_paths_match_plain_embedding() {
        let h = line_host();
        let q = edge_query(0.0, 15.0);
        let policy = PathPolicy {
            max_hops: 1,
            ..PathPolicy::default()
        };
        let sols = run(&q, &h, &policy, usize::MAX);
        // 3 host edges × 2 orientations.
        assert_eq!(sols.len(), 6);
        for s in &sols {
            assert_eq!(s.paths[0].1.len(), 2);
        }
    }

    #[test]
    fn multi_hop_unlocks_distant_endpoints() {
        let h = line_host();
        // Window 15..25 ms: no single 10ms hop qualifies, but any 2-hop
        // path (20ms) does.
        let q = edge_query(15.0, 25.0);
        let one_hop = run(
            &q,
            &h,
            &PathPolicy {
                max_hops: 1,
                ..PathPolicy::default()
            },
            usize::MAX,
        );
        assert!(one_hop.is_empty());
        let two_hop = run(
            &q,
            &h,
            &PathPolicy {
                max_hops: 2,
                ..PathPolicy::default()
            },
            usize::MAX,
        );
        // 2-hop pairs on the line: (u0,u2), (u1,u3) × 2 orientations.
        assert_eq!(two_hop.len(), 4);
        for s in &two_hop {
            assert_eq!(s.paths[0].1.len(), 3); // 2 hops = 3 nodes
        }
    }

    #[test]
    fn cost_upper_bound_prunes() {
        let h = line_host();
        // Window up to 35: 1-, 2- and 3-hop paths all qualify.
        let q = edge_query(0.0, 35.0);
        let sols = run(
            &q,
            &h,
            &PathPolicy {
                max_hops: 3,
                ..PathPolicy::default()
            },
            usize::MAX,
        );
        // Pairs: adjacent (3), dist-2 (2), dist-3 (1) = 6, × 2 orientations.
        assert_eq!(sols.len(), 12);
    }

    #[test]
    fn capacity_minimum_respected() {
        let mut h = line_host();
        // Middle edge has low bandwidth.
        h.set_edge_attr(netgraph::EdgeId(0), "bw", 100.0);
        h.set_edge_attr(netgraph::EdgeId(1), "bw", 5.0);
        h.set_edge_attr(netgraph::EdgeId(2), "bw", 100.0);
        let mut q = edge_query(15.0, 25.0);
        q.set_edge_attr(netgraph::EdgeId(0), "bw", 50.0);
        let policy = PathPolicy {
            max_hops: 2,
            capacity: Some(("bw".into(), "bw".into())),
            ..PathPolicy::default()
        };
        let sols = run(&q, &h, &policy, usize::MAX);
        // Every 2-hop path crosses the middle edge (bw 5 < 50): none left.
        assert!(sols.is_empty());
    }

    #[test]
    fn node_constraint_applies() {
        let mut h = line_host();
        for i in 0..4 {
            h.set_node_attr(NodeId(i), "cpu", if i == 0 || i == 2 { 8.0 } else { 1.0 });
        }
        let q = edge_query(15.0, 25.0);
        let policy = PathPolicy {
            max_hops: 2,
            ..PathPolicy::default()
        };
        let mut dl = Deadline::unlimited();
        let (sols, _) = search_paths(
            &q,
            &h,
            &policy,
            Some("rNode.cpu >= 4.0"),
            usize::MAX,
            &mut dl,
        )
        .unwrap();
        // Only (u0, u2) qualifies on cpu; path u0-u1-u2 relays through u1
        // (cpu 1) which is fine — relays are not allocated.
        assert_eq!(sols.len(), 2);
        for s in &sols {
            for (_, r) in s.nodes.iter() {
                assert!(r == NodeId(0) || r == NodeId(2));
            }
        }
    }

    #[test]
    fn triangle_query_via_paths() {
        // Host: a 6-cycle, 10ms hops. A triangle query with 2-hop windows
        // embeds as three 2-hop paths around the cycle.
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..6).map(|i| h.add_node(format!("u{i}"))).collect();
        for i in 0..6 {
            let e = h.add_edge(ids[i], ids[(i + 1) % 6]);
            h.set_edge_attr(e, "avgDelay", 10.0);
        }
        let mut q = Network::new(Direction::Undirected);
        let qs: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            let e = q.add_edge(qs[i], qs[(i + 1) % 3]);
            q.set_edge_attr(e, "dmin", 15.0);
            q.set_edge_attr(e, "dmax", 25.0);
        }
        let policy = PathPolicy {
            max_hops: 2,
            ..PathPolicy::default()
        };
        let sols = run(&q, &h, &policy, usize::MAX);
        // Placements on alternating cycle nodes: 2 phase choices × 3! node
        // orders… just assert existence + verification (done in run()).
        assert!(!sols.is_empty());
    }

    #[test]
    fn directed_paths_respect_orientation() {
        let mut h = Network::new(Direction::Directed);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v) in [(a, b), (b, c)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", 10.0);
        }
        let mut q = Network::new(Direction::Directed);
        let x = q.add_node("x");
        let y = q.add_node("y");
        let e = q.add_edge(x, y);
        q.set_edge_attr(e, "dmin", 15.0);
        q.set_edge_attr(e, "dmax", 25.0);
        let policy = PathPolicy {
            max_hops: 2,
            ..PathPolicy::default()
        };
        let mut dl = Deadline::unlimited();
        let (sols, _) = search_paths(&q, &h, &policy, None, usize::MAX, &mut dl).unwrap();
        // Only a→b→c in the forward direction.
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].nodes.get(x), a);
        assert_eq!(sols[0].nodes.get(y), c);
        assert_eq!(sols[0].paths[0].1, vec![a, b, c]);
        check_path_mapping(&q, &h, &policy, &sols[0]).unwrap();
    }

    #[test]
    fn limit_and_errors() {
        let h = line_host();
        let q = edge_query(0.0, 15.0);
        let policy = PathPolicy::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search_paths(&q, &h, &policy, None, 2, &mut dl).unwrap();
        assert_eq!(sols.len(), 2);
        assert_eq!(end, SearchEnd::SinkStop);

        let bad = PathPolicy {
            max_hops: 0,
            ..PathPolicy::default()
        };
        assert!(matches!(
            search_paths(&q, &h, &bad, None, 1, &mut dl),
            Err(PathMapError::ZeroHops)
        ));
        assert!(matches!(
            search_paths(&q, &h, &policy, Some("1 +"), 1, &mut dl),
            Err(PathMapError::Parse(_))
        ));
    }

    #[test]
    fn checker_rejects_corrupt_mappings() {
        let h = line_host();
        let q = edge_query(0.0, 15.0);
        let policy = PathPolicy::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = search_paths(&q, &h, &policy, None, 1, &mut dl).unwrap();
        let good = &sols[0];
        // Corrupt the witness path.
        let mut bad = good.clone();
        bad.paths[0].1 = vec![NodeId(0), NodeId(3)]; // not a host edge
        assert!(check_path_mapping(&q, &h, &policy, &bad).is_err());
        // Corrupt injectivity.
        let mut bad2 = good.clone();
        let first = bad2.nodes.as_slice()[0];
        bad2.nodes = Mapping::new(vec![first, first]);
        assert!(check_path_mapping(&q, &h, &policy, &bad2).is_err());
    }
}

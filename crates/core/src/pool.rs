//! Persistent worker pool: threads parked between calls.
//!
//! Every `parallel::search*` call used to spawn its workers through a
//! fresh `crossbeam::thread::scope`; measured on the bench box a
//! 4-thread spawn+join costs ~65µs, which dominates sub-millisecond
//! searches (the `skew-hub` row of `BENCH_filter.json`). A
//! [`WorkerPool`] keeps the OS threads alive across calls — parked on a
//! condvar between rounds — so a long-lived caller (the service layer,
//! a batch loop, a bench harness) pays thread creation once.
//!
//! ## The scoped-job pattern
//!
//! Search workers borrow the caller's stack: the problem, the filter,
//! the shared deques, the per-worker scratches. A pool thread, however,
//! is `'static` — it cannot hold a `'env` borrow. [`WorkerPool::run_scoped`]
//! bridges the two lifetimes the same way `std::thread::scope` does:
//! the submitted jobs are transmuted to `'static` for storage, and the
//! call **blocks until every job has finished** (including when a job
//! panics — the panic is captured, the round still drains, and the
//! payload is re-thrown on the caller thread). Because no job can
//! outlive the `run_scoped` call, the borrows it carries never dangle.
//!
//! One round runs at a time per pool (`run_scoped` takes `&mut self`);
//! job *i* of a round always runs on pool thread *i*, so worker-indexed
//! state (per-worker scratches, deque seeds) keeps its affinity across
//! calls. The pool grows on demand — asking for more jobs than threads
//! spawns the difference — and never shrinks; threads exit when the
//! pool is dropped. [`WorkerPool::spawned_total`] exposes the lifetime
//! spawn count so callers (and the acceptance tests) can prove a warm
//! run created zero new threads; the per-run view of the same fact is
//! [`SearchStats::pool_reuse`](crate::SearchStats).
//!
//! Do not call `run_scoped` from inside a pool job of the same pool:
//! the inner call would wait for threads that are busy running the
//! outer round. (The search code never nests pools; each
//! [`ParallelScratch`](crate::ParallelScratch) owns exactly one.)

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

/// A lifetime-erased job. Only ever constructed inside `run_scoped`,
/// which guarantees the erased borrows outlive the job's execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    /// One slot per pool thread; thread `i` only ever takes `slots[i]`.
    slots: Vec<Option<Job>>,
    /// Jobs of the current round still running (or queued in a slot).
    remaining: usize,
    /// First panic payload captured this round.
    panic: Option<Box<dyn Any + Send + 'static>>,
    /// Tells parked threads to exit (pool drop).
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when slots are filled (or on shutdown).
    work: Condvar,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

/// Lock that shrugs off poisoning: jobs run *outside* the lock (wrapped
/// in `catch_unwind`), so a poisoned mutex here can only mean a panic in
/// the trivial bookkeeping below — continuing is sound and keeps the
/// all-jobs-finish guarantee that `run_scoped`'s safety rests on.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.slots[me].take() {
                    break job;
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(job));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            // Keep the first panic; later ones (if any) are dropped,
            // matching what a scope join loop would surface.
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// A persistent pool of parked worker threads with scoped-job
/// submission. See the module docs for the lifetime contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    spawned_total: u64,
}

impl WorkerPool {
    /// An empty pool; threads are spawned on first use (so holding a
    /// pool you never run costs nothing).
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    slots: Vec::new(),
                    remaining: 0,
                    panic: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Vec::new(),
            spawned_total: 0,
        }
    }

    /// A pool with `n` threads spawned (and parked) up front.
    pub fn with_threads(n: usize) -> Self {
        let mut pool = Self::new();
        pool.ensure_threads(n);
        pool
    }

    /// Live pool threads.
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Threads spawned over the pool's lifetime (the pool never
    /// shrinks, so this equals [`WorkerPool::thread_count`] — it exists
    /// so tests can assert a warm run spawned nothing *new*).
    pub fn spawned_total(&self) -> u64 {
        self.spawned_total
    }

    /// Grow the pool to at least `n` threads (no-op when already big
    /// enough).
    pub fn ensure_threads(&mut self, n: usize) {
        if self.handles.len() >= n {
            return;
        }
        lock(&self.shared.state).slots.resize_with(n, || None);
        for me in self.handles.len()..n {
            let shared = Arc::clone(&self.shared);
            let handle = thread::Builder::new()
                .name(format!("netembed-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
                .expect("spawn pool worker");
            self.handles.push(handle);
            self.spawned_total += 1;
        }
    }

    /// Run one round of jobs — job `i` on pool thread `i` — and block
    /// until all of them finish. Panics in jobs are re-thrown here
    /// after the round drains.
    ///
    /// The jobs may borrow from the caller's stack (`'env`): this call
    /// does not return while any of them can still run, which is the
    /// whole safety argument for the internal lifetime erasure.
    pub fn run_scoped<'env>(&mut self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        self.ensure_threads(n);
        let mut st = lock(&self.shared.state);
        debug_assert_eq!(st.remaining, 0, "run_scoped re-entered mid-round");
        st.remaining = n;
        for (slot, job) in st.slots.iter_mut().zip(jobs) {
            // SAFETY: the job is parked in `slots`, taken by exactly one
            // pool thread, and `remaining` only reaches zero after it has
            // run (or been dropped on shutdown — impossible here, since
            // shutdown only happens in Drop, which cannot race a live
            // `&mut self` call). We block on `remaining == 0` below
            // before returning, so every `'env` borrow inside the job
            // strictly outlives the job's execution.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            *slot = Some(job);
        }
        self.shared.work.notify_all();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let panic = st.panic.take();
        drop(st);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .field("spawned_total", &self.spawned_total)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            // A pool thread only panics if the panic machinery itself
            // failed; nothing to salvage then.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_with_borrowed_state() {
        let mut pool = WorkerPool::new();
        let mut outs = vec![0usize; 4];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .enumerate()
                .map(|(i, o)| Box::new(move || *o = i + 1) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run_scoped(jobs);
        }
        assert_eq!(outs, vec![1, 2, 3, 4]);
        assert_eq!(pool.thread_count(), 4);
    }

    #[test]
    fn warm_rounds_spawn_no_new_threads() {
        let mut pool = WorkerPool::new();
        let counter = AtomicUsize::new(0);
        for round in 1..=5 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
            assert_eq!(counter.load(Ordering::Relaxed), round * 3);
            assert_eq!(pool.spawned_total(), 3, "round {round} spawned threads");
        }
    }

    #[test]
    fn pool_grows_on_demand_and_keeps_old_threads() {
        let mut pool = WorkerPool::with_threads(2);
        assert_eq!(pool.spawned_total(), 2);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        assert_eq!(pool.spawned_total(), 6, "grew by exactly the deficit");
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let mut pool = WorkerPool::new();
        pool.run_scoped(Vec::new());
        assert_eq!(pool.thread_count(), 0);
    }

    #[test]
    fn job_panic_propagates_after_round_drains() {
        let mut pool = WorkerPool::new();
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let survivors = &survivors;
                    Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }));
        assert!(result.is_err(), "job panic must reach the caller");
        // The panicking round still drained: the other jobs ran.
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
        // And the pool is reusable afterwards.
        let ok = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn job_index_maps_to_fixed_thread() {
        // Thread affinity: job i lands on pool thread i every round, so
        // worker-indexed scratches stay warm per thread.
        let mut pool = WorkerPool::with_threads(3);
        let mut first = vec![String::new(); 3];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = first
                .iter_mut()
                .map(|slot| {
                    Box::new(move || {
                        *slot = thread::current().name().unwrap_or("?").to_string();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        let mut second = vec![String::new(); 3];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = second
                .iter_mut()
                .map(|slot| {
                    Box::new(move || {
                        *slot = thread::current().name().unwrap_or("?").to_string();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        assert_eq!(first, second);
        assert_eq!(first[0], "netembed-pool-0");
    }
}

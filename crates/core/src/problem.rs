//! Problem definition: a (query, host, constraint) triple with the
//! constraint compiled against both schemas.
//!
//! The constraint expression is an input *separate from* the query topology
//! (§VI-B): callers can tighten or relax it without touching the GraphML,
//! which is what the service layer's negotiation loop relies on.

use cexpr::{parse, BinOp, Compiled, EdgeCtx, EvalError, Expr, NodeCtx, ParseError};
use netgraph::{EdgeId, Network, NodeId};
use std::fmt;

/// Flatten a top-level `&&` chain into its conjuncts.
fn split_conjunction(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary(BinOp::And, l, r) => {
            let mut out = split_conjunction(l);
            out.extend(split_conjunction(r));
            out
        }
        other => vec![other],
    }
}

/// Rebuild a conjunction (empty ⇒ `true`).
fn fold_and(parts: Vec<Expr>) -> Expr {
    let mut iter = parts.into_iter();
    match iter.next() {
        None => cexpr::always_true(),
        Some(first) => iter.fold(first, |acc, e| {
            Expr::Binary(BinOp::And, Box::new(acc), Box::new(e))
        }),
    }
}

/// Errors raised when building or running a problem.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// Constraint failed to parse.
    Parse(ParseError),
    /// Constraint raised a type error during evaluation — the query is
    /// malformed (e.g. comparing a string attribute with a number).
    Eval(EvalError),
    /// Query and host disagree on edge directionality.
    DirectionMismatch,
    /// The query has more nodes than the host — no injective mapping can
    /// exist (§IV requires m to be one-to-one).
    QueryLargerThanHost {
        /// Query node count.
        query: usize,
        /// Host node count.
        host: usize,
    },
    /// The query has no nodes.
    EmptyQuery,
    /// One `&&`-conjunct mixes node-context (`vNode`/`rNode`) and
    /// edge-context (Table I) objects; such constraints have no single
    /// evaluation context.
    MixedConjunct(String),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Parse(e) => write!(f, "constraint parse error: {e}"),
            ProblemError::Eval(e) => write!(f, "constraint evaluation error: {e}"),
            ProblemError::DirectionMismatch => {
                write!(f, "query and host must both be directed or both undirected")
            }
            ProblemError::QueryLargerThanHost { query, host } => write!(
                f,
                "query has {query} nodes but host only {host}; no injective mapping exists"
            ),
            ProblemError::EmptyQuery => write!(f, "query network has no nodes"),
            ProblemError::MixedConjunct(c) => write!(
                f,
                "conjunct `{c}` mixes node-context (vNode/rNode) and edge-context objects; \
                 split it into separate && conjuncts"
            ),
        }
    }
}

impl std::error::Error for ProblemError {}

impl From<ParseError> for ProblemError {
    fn from(e: ParseError) -> Self {
        ProblemError::Parse(e)
    }
}

impl From<EvalError> for ProblemError {
    fn from(e: EvalError) -> Self {
        ProblemError::Eval(e)
    }
}

/// A fully-specified embedding problem.
#[derive(Debug)]
pub struct Problem<'a> {
    /// Query (virtual) network.
    pub query: &'a Network,
    /// Hosting (real) network.
    pub host: &'a Network,
    edge_expr: Compiled,
    node_expr: Option<Compiled>,
}

impl<'a> Problem<'a> {
    /// Build a problem from a constraint expression source string.
    ///
    /// The expression's top-level conjunction is split by context: each
    /// `&&`-conjunct referencing `vNode`/`rNode` becomes part of the *node*
    /// constraint (applied to every query-node/host-node pair); the rest
    /// form the per-edge constraint of §VI-B. So
    /// `rNode.cpu >= vNode.cpu && rEdge.avgDelay <= vEdge.dmax` does what
    /// it reads like. A single conjunct mixing both contexts is rejected —
    /// use [`Problem::with_exprs`] for exotic combinations.
    pub fn new(
        query: &'a Network,
        host: &'a Network,
        constraint: &str,
    ) -> Result<Self, ProblemError> {
        let expr = parse(constraint)?;
        Self::from_parsed(query, host, &expr)
    }

    /// [`Problem::new`] over an already-parsed constraint: same
    /// conjunct splitting, no re-parse. This is the repeated-compile
    /// path for callers that keep a query prepared across many runs
    /// (the service layer's `PreparedQuery` re-binds the same parsed
    /// expression against each new model snapshot).
    pub fn from_parsed(
        query: &'a Network,
        host: &'a Network,
        expr: &Expr,
    ) -> Result<Self, ProblemError> {
        let mut edge_parts: Vec<Expr> = Vec::new();
        let mut node_parts: Vec<Expr> = Vec::new();
        for conjunct in split_conjunction(expr) {
            let uses_node = conjunct.uses_node_objects();
            let uses_edge = conjunct
                .attr_refs()
                .iter()
                .any(|(o, _)| !matches!(o, cexpr::Object::VNode | cexpr::Object::RNode));
            if uses_node && uses_edge {
                return Err(ProblemError::MixedConjunct(conjunct.to_string()));
            }
            if uses_node {
                node_parts.push(conjunct.clone());
            } else {
                edge_parts.push(conjunct.clone());
            }
        }
        let edge_expr = fold_and(edge_parts);
        let node_expr = if node_parts.is_empty() {
            None
        } else {
            Some(fold_and(node_parts))
        };
        Self::with_exprs(query, host, &edge_expr, node_expr.as_ref())
    }

    /// Build a problem from parsed edge and (optional) node constraints.
    pub fn with_exprs(
        query: &'a Network,
        host: &'a Network,
        edge_expr: &Expr,
        node_expr: Option<&Expr>,
    ) -> Result<Self, ProblemError> {
        if query.node_count() == 0 {
            return Err(ProblemError::EmptyQuery);
        }
        if query.is_undirected() != host.is_undirected() {
            return Err(ProblemError::DirectionMismatch);
        }
        if query.node_count() > host.node_count() {
            return Err(ProblemError::QueryLargerThanHost {
                query: query.node_count(),
                host: host.node_count(),
            });
        }
        Ok(Problem {
            query,
            host,
            edge_expr: Compiled::new(edge_expr, query, host),
            node_expr: node_expr.map(|e| Compiled::new(e, query, host)),
        })
    }

    /// Number of query nodes.
    #[inline]
    pub fn nq(&self) -> usize {
        self.query.node_count()
    }

    /// Number of host nodes.
    #[inline]
    pub fn nr(&self) -> usize {
        self.host.node_count()
    }

    /// Whether a node constraint is present.
    pub fn has_node_expr(&self) -> bool {
        self.node_expr.is_some()
    }

    /// Compiled edge constraint, for abstract (bounds) evaluation.
    pub(crate) fn edge_expr(&self) -> &Compiled {
        &self.edge_expr
    }

    /// Compiled node constraint, if any, for abstract (bounds) evaluation.
    pub(crate) fn node_expr(&self) -> Option<&Compiled> {
        self.node_expr.as_ref()
    }

    /// Evaluate the edge constraint for query edge `(v_src → v_dst)` mapped
    /// onto host pair `(r_src → r_dst)` over host edge `r_edge`.
    #[inline]
    pub fn edge_ok(
        &self,
        v_edge: EdgeId,
        v_src: NodeId,
        v_dst: NodeId,
        r_edge: EdgeId,
        r_src: NodeId,
        r_dst: NodeId,
    ) -> Result<bool, EvalError> {
        self.edge_expr.eval_edge(&EdgeCtx {
            q: self.query,
            r: self.host,
            v_edge,
            v_src,
            v_dst,
            r_edge,
            r_src,
            r_dst,
        })
    }

    /// Evaluate the node constraint for `v → r`; `true` when no node
    /// constraint was supplied.
    #[inline]
    pub fn node_ok(&self, v: NodeId, r: NodeId) -> Result<bool, EvalError> {
        match &self.node_expr {
            None => Ok(true),
            Some(c) => c.eval_node(&NodeCtx {
                q: self.query,
                r: self.host,
                v_node: v,
                r_node: r,
            }),
        }
    }

    /// Check one candidate pair `(v_src→r_src, v_dst→r_dst)` for query edge
    /// `v_edge`: the host edge must exist and the edge constraint (plus
    /// node constraints on both endpoints) must hold.
    #[inline]
    pub fn pair_ok(
        &self,
        v_edge: EdgeId,
        v_src: NodeId,
        v_dst: NodeId,
        r_src: NodeId,
        r_dst: NodeId,
    ) -> Result<bool, EvalError> {
        let Some(r_edge) = self.host.find_edge(r_src, r_dst) else {
            return Ok(false);
        };
        if !self.node_ok(v_src, r_src)? || !self.node_ok(v_dst, r_dst)? {
            return Ok(false);
        }
        self.edge_ok(v_edge, v_src, v_dst, r_edge, r_src, r_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn nets() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Undirected);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        let e1 = h.add_edge(u, v);
        h.set_edge_attr(e1, "d", 5.0);
        let e2 = h.add_edge(v, w);
        h.set_edge_attr(e2, "d", 50.0);
        h.set_node_attr(u, "cpu", 8.0);
        (q, h)
    }

    #[test]
    fn build_and_eval_edge_constraint() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "rEdge.d < 10.0").unwrap();
        assert!(!p.has_node_expr());
        assert_eq!(
            p.pair_ok(EdgeId(0), NodeId(0), NodeId(1), NodeId(0), NodeId(1)),
            Ok(true)
        );
        assert_eq!(
            p.pair_ok(EdgeId(0), NodeId(0), NodeId(1), NodeId(1), NodeId(2)),
            Ok(false)
        );
        // No host edge u-w.
        assert_eq!(
            p.pair_ok(EdgeId(0), NodeId(0), NodeId(1), NodeId(0), NodeId(2)),
            Ok(false)
        );
    }

    #[test]
    fn node_expression_autodetected() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "rNode.cpu >= 4.0").unwrap();
        assert!(p.has_node_expr());
        assert_eq!(p.node_ok(NodeId(0), NodeId(0)), Ok(true)); // u: cpu 8
        assert_eq!(p.node_ok(NodeId(0), NodeId(1)), Ok(false)); // v: missing
    }

    #[test]
    fn errors() {
        let (q, h) = nets();
        assert!(matches!(
            Problem::new(&q, &h, "1 +"),
            Err(ProblemError::Parse(_))
        ));
        let mut big = Network::new(Direction::Undirected);
        for i in 0..5 {
            big.add_node(format!("n{i}"));
        }
        assert!(matches!(
            Problem::new(&big, &h, "true"),
            Err(ProblemError::QueryLargerThanHost { query: 5, host: 3 })
        ));
        let empty = Network::new(Direction::Undirected);
        assert!(matches!(
            Problem::new(&empty, &h, "true"),
            Err(ProblemError::EmptyQuery)
        ));
        let directed = Network::new(Direction::Directed);
        let mut dq = directed.clone();
        dq.add_node("a");
        assert!(matches!(
            Problem::new(&dq, &h, "true"),
            Err(ProblemError::DirectionMismatch)
        ));
    }
}

#[cfg(test)]
mod split_tests {
    use super::*;
    use netgraph::Direction;

    fn nets2() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        let e = q.add_edge(a, b);
        q.set_edge_attr(e, "dmax", 40.0);
        q.set_node_attr(a, "cpu", 2.0);
        q.set_node_attr(b, "cpu", 2.0);
        let mut h = Network::new(Direction::Undirected);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        for (x, y, d) in [(u, v, 30.0), (v, w, 60.0)] {
            let e = h.add_edge(x, y);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h.set_node_attr(u, "cpu", 4.0);
        h.set_node_attr(v, "cpu", 4.0);
        h.set_node_attr(w, "cpu", 1.0);
        (q, h)
    }

    #[test]
    fn mixed_conjunction_splits_by_context() {
        let (q, h) = nets2();
        let p = Problem::new(
            &q,
            &h,
            "rNode.cpu >= vNode.cpu && rEdge.avgDelay <= vEdge.dmax",
        )
        .unwrap();
        assert!(p.has_node_expr());
        // Node side: u, v pass (cpu 4 ≥ 2), w fails.
        assert_eq!(p.node_ok(NodeId(0), NodeId(0)), Ok(true));
        assert_eq!(p.node_ok(NodeId(0), NodeId(2)), Ok(false));
        // Edge side: (u,v) delay 30 ≤ 40 passes; (v,w) fails.
        assert_eq!(
            p.pair_ok(EdgeId(0), NodeId(0), NodeId(1), NodeId(0), NodeId(1)),
            Ok(true)
        );
        assert_eq!(
            p.pair_ok(EdgeId(0), NodeId(0), NodeId(1), NodeId(1), NodeId(2)),
            Ok(false)
        );
    }

    #[test]
    fn single_conjunct_mixing_contexts_rejected() {
        let (q, h) = nets2();
        let err = Problem::new(&q, &h, "rNode.cpu >= vEdge.dmax").unwrap_err();
        assert!(matches!(err, ProblemError::MixedConjunct(_)));
        // Mixing under || (not a top-level conjunction) is also one
        // conjunct and gets rejected too.
        let err = Problem::new(&q, &h, "rNode.cpu >= 1.0 || rEdge.avgDelay <= 1.0").unwrap_err();
        assert!(matches!(err, ProblemError::MixedConjunct(_)));
    }

    #[test]
    fn pure_constraints_unchanged() {
        let (q, h) = nets2();
        let edge_only = Problem::new(&q, &h, "rEdge.avgDelay <= 40.0").unwrap();
        assert!(!edge_only.has_node_expr());
        let node_only = Problem::new(&q, &h, "rNode.cpu >= 2.0").unwrap();
        assert!(node_only.has_node_expr());
    }
}

//! Random Walk with Backtracking (RWB) — §V-B, Figure 5.
//!
//! RWB shares ECF's filtering conditions (expressions (1) and (2)) but
//! chooses the next candidate mapping *at random*, backtracking to the
//! previous virtual node when it reaches a dead end. Because the walk is a
//! randomized depth-first traversal of the same pruned permutation tree it
//! inherits ECF's completeness: if it returns "no solution" without timing
//! out, no solution exists. By design it terminates as soon as the first
//! feasible embedding is found (footnote 7 of the paper) — callers wanting
//! several random solutions can raise `limit`.

use crate::deadline::Deadline;
use crate::ecf::{run_dfs, SearchEnd};
use crate::filter::FilterMatrix;
use crate::mapping::Mapping;
use crate::order::{compute_order, predecessors, NodeOrder};
use crate::problem::{Problem, ProblemError};
use crate::scratch::SearchScratch;
use crate::sink::{CollectUpTo, SolutionSink};
use crate::stats::SearchStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run RWB to find up to `limit` feasible embeddings (1 = the paper's
/// behaviour). Returns the mappings found.
pub fn search(
    problem: &Problem<'_>,
    seed: u64,
    limit: usize,
    order: NodeOrder,
    deadline: &mut Deadline,
    stats: &mut SearchStats,
) -> Result<(Vec<Mapping>, SearchEnd), ProblemError> {
    let mut sink = CollectUpTo::new(limit);
    let end = search_into(problem, seed, order, deadline, &mut sink, stats)?;
    Ok((sink.solutions, end))
}

/// RWB with a caller-supplied sink.
pub fn search_into(
    problem: &Problem<'_>,
    seed: u64,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
) -> Result<SearchEnd, ProblemError> {
    search_into_with_scratch(
        problem,
        seed,
        order,
        deadline,
        sink,
        stats,
        &mut SearchScratch::new(),
    )
}

/// [`search_into`] with a caller-held [`SearchScratch`] — the natural
/// shape for batch callers sampling many random embeddings (one filter
/// build via [`search_prebuilt`], one scratch, thousands of walks).
#[allow(clippy::too_many_arguments)]
pub fn search_into_with_scratch(
    problem: &Problem<'_>,
    seed: u64,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Result<SearchEnd, ProblemError> {
    let start = std::time::Instant::now();
    let filter = FilterMatrix::build(problem, deadline, stats)?;
    let end = search_prebuilt(
        problem, &filter, seed, order, deadline, sink, stats, scratch,
    );
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    Ok(end)
}

/// The random walk over an already constructed filter: different seeds
/// (or sinks, or deadlines) can reuse one build. Mirrors
/// `ecf::search_prebuilt_with_scratch`, including the truncated-filter
/// and phase-boundary deadline handling.
#[allow(clippy::too_many_arguments)]
pub fn search_prebuilt(
    problem: &Problem<'_>,
    filter: &FilterMatrix,
    seed: u64,
    order: NodeOrder,
    deadline: &mut Deadline,
    sink: &mut dyn SolutionSink,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> SearchEnd {
    let start = std::time::Instant::now();
    stats.filter_cells = filter.cell_count() as u64;
    if filter.truncated() || deadline.check_now() {
        stats.timed_out = true;
        stats.elapsed = start.elapsed();
        stats.cpu_time = stats.elapsed;
        return SearchEnd::Timeout;
    }
    let node_order = compute_order(problem.query, filter, order);
    let preds = predecessors(problem.query, &node_order);
    let mut rng = StdRng::seed_from_u64(seed);
    let end = run_dfs(
        problem,
        filter,
        &node_order,
        &preds,
        deadline,
        sink,
        stats,
        Some(&mut rng),
        None,
        scratch,
    );
    stats.timed_out |= end == SearchEnd::Timeout;
    stats.elapsed = start.elapsed();
    stats.cpu_time = stats.elapsed;
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_mapping;
    use netgraph::{Direction, Network, NodeId};

    fn host_cycle(n: usize) -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
        for i in 0..n {
            let e = h.add_edge(ids[i], ids[(i + 1) % n]);
            h.set_edge_attr(e, "d", (10 * (i + 1)) as f64);
        }
        h
    }

    fn path_query(n: usize) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
        for w in ids.windows(2) {
            q.add_edge(w[0], w[1]);
        }
        q
    }

    #[test]
    fn finds_first_valid_solution() {
        let h = host_cycle(6);
        let q = path_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 42, 1, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(end, crate::ecf::SearchEnd::SinkStop);
        check_mapping(&p, &sols[0]).unwrap();
    }

    #[test]
    fn different_seeds_can_find_different_solutions() {
        let h = host_cycle(8);
        let q = path_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut found = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            let (sols, _) = search(&p, seed, 1, NodeOrder::default(), &mut dl, &mut stats).unwrap();
            found.insert(sols[0].clone());
        }
        // With 8·2·… possible embeddings, 20 random walks should not all
        // collapse onto one solution.
        assert!(found.len() > 1, "all seeds returned the same mapping");
    }

    #[test]
    fn complete_on_infeasible_instances() {
        let h = host_cycle(5);
        let q = path_query(3);
        let p = Problem::new(&q, &h, "rEdge.d > 1e6").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, end) = search(&p, 7, 1, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert!(sols.is_empty());
        // Exhausted (not timeout): a definitive "no solution".
        assert_eq!(end, crate::ecf::SearchEnd::Exhausted);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let h = host_cycle(8);
        let q = path_query(4);
        let p = Problem::new(&q, &h, "true").unwrap();
        let run = |seed| {
            let mut stats = SearchStats::default();
            let mut dl = Deadline::unlimited();
            search(&p, seed, 1, NodeOrder::default(), &mut dl, &mut stats)
                .unwrap()
                .0
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn limit_collects_multiple_random_solutions() {
        let h = host_cycle(8);
        let q = path_query(3);
        let p = Problem::new(&q, &h, "true").unwrap();
        let mut stats = SearchStats::default();
        let mut dl = Deadline::unlimited();
        let (sols, _) = search(&p, 3, 5, NodeOrder::default(), &mut dl, &mut stats).unwrap();
        assert_eq!(sols.len(), 5);
        for m in &sols {
            check_mapping(&p, m).unwrap();
        }
    }
}

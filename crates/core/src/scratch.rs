//! Caller-held, reusable search scratch.
//!
//! `ecf::run_dfs` needs one [`Frame`](crate::ecf) per depth (a candidate
//! `Vec`), one shared pair of intersection/staging masks, an assignment
//! array and a used-host-node bitset; LNS needs per-depth candidate
//! buffers, an anchor list, a dedup mask and its memo cache. All of that
//! is *setup*, not search: for tight queries over big hosts the fixed
//! allocation dominates the (microsecond-scale) search itself. A
//! [`SearchScratch`] owns the whole arena and is re-validated (and,
//! where semantically required, cleared) by `SearchScratch::ensure` at
//! the start of every search, so a caller embedding thousands of queries
//! — the service layer's batch path — allocates once and reuses the
//! high-water-mark buffers forever after. The cold (fresh-scratch) path
//! is kept cheap too: the DFS masks are shared across depths instead of
//! per-frame, and the LNS-only buffers are sized lazily by
//! `ensure_lns`, so a one-shot ECF search allocates a handful of
//! buffers, not `O(depth)` bitsets.
//!
//! [`ParallelScratch`] is the same idea for `parallel::search`: one
//! [`SearchScratch`] per worker thread, grown on demand and reused
//! across every stolen subtree task that worker executes — plus the
//! persistent [`WorkerPool`] those workers run on, so a reused
//! `ParallelScratch` makes repeated parallel searches spawn-free as
//! well as allocation-free (worker `w`'s scratch always lands on pool
//! thread `w`, keeping the arenas cache-warm per thread).

use crate::ecf::Frame;
use crate::pool::WorkerPool;
use netgraph::{NodeBitSet, NodeId};
use rustc_hash::FxHashMap;

/// Reusable buffers for one sequential search (ECF, RWB, or LNS).
///
/// Create once with [`SearchScratch::new`], then pass to the
/// `*_with_scratch` entry points (`ecf::search_with_scratch`,
/// `ecf::search_prebuilt_with_scratch`, `rwb::search_prebuilt`,
/// `lns::search_with_scratch`, or `Engine::run_with_scratch`). The scratch
/// adapts itself to each problem's dimensions; nothing about a previous
/// search leaks into the next one (the LNS memo cache is cleared, masks
/// and assignments reset), only the allocations survive.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Per-depth DFS frames (candidate vec + cursor).
    pub(crate) frames: Vec<Frame>,
    /// Query-node → host-node assignment (u32::MAX = unassigned).
    pub(crate) assign: Vec<NodeId>,
    /// Host nodes currently used by the partial mapping.
    pub(crate) used: NodeBitSet,
    /// Shared intersection mask (expression (2)'s accumulator). One per
    /// scratch, not per frame: it is consumed before the DFS descends.
    pub(crate) mask: NodeBitSet,
    /// Shared staging mask for sparse cells without a bitset mirror.
    pub(crate) stage: NodeBitSet,
    /// LNS: per-depth candidate buffers.
    pub(crate) lns_cand_bufs: Vec<Vec<NodeId>>,
    /// LNS: covered-anchor list, taken/restored around candidate fills.
    pub(crate) lns_anchors: Vec<(NodeId, NodeId)>,
    /// LNS: dedup mask for the anchor-adjacency scan.
    pub(crate) lns_seen: NodeBitSet,
    /// LNS: memo cache `(query edge, host src, host dst)` → ok/fail.
    /// Cleared per search (it is problem-specific); the map's capacity is
    /// what gets amortized.
    pub(crate) lns_memo: FxHashMap<(u32, u32, u32), u8>,
    /// LNS: covered flags per query node.
    pub(crate) lns_covered: Vec<bool>,
    /// LNS: covered-neighbor counts per query node.
    pub(crate) lns_covered_links: Vec<u32>,
    /// Host capacity the bitsets were last sized for.
    nr: usize,
}

impl SearchScratch {
    /// An empty scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size (or re-size) for a `(nq, nr)` problem and reset all transient
    /// DFS state. Called by every search entry point before the first
    /// descent; idempotent and cheap when the dimensions are unchanged
    /// (no allocation, just clears). The LNS-only buffers are *not*
    /// touched here — LNS calls [`SearchScratch::ensure_lns`] on top —
    /// so a cold ECF/RWB/parallel search never pays for them.
    pub(crate) fn ensure(&mut self, nq: usize, nr: usize) {
        if self.nr != nr {
            self.nr = nr;
            self.used = NodeBitSet::new(nr);
            self.mask = NodeBitSet::new(nr);
            self.stage = NodeBitSet::new(nr);
        } else {
            self.used.clear();
        }
        if self.frames.len() < nq {
            self.frames.resize_with(nq, Frame::new);
        }
        // `assign` is cloned into `Mapping`s at every leaf, so it must be
        // exactly `nq` long (resize both ways; capacity is retained).
        self.assign.resize(nq, NodeId(u32::MAX));
        for a in &mut self.assign {
            *a = NodeId(u32::MAX);
        }
    }

    /// The LNS extension of [`SearchScratch::ensure`]: size and reset the
    /// buffers only the lazy neighborhood search uses (per-depth
    /// candidate buffers, anchors, dedup mask, memo cache, covered
    /// flags). Kept separate so the DFS-based searches stay free of this
    /// setup on the cold path.
    pub(crate) fn ensure_lns(&mut self, nq: usize, nr: usize) {
        if self.lns_seen.capacity() != nr {
            self.lns_seen = NodeBitSet::new(nr);
        } else {
            self.lns_seen.clear();
        }
        if self.lns_cand_bufs.len() < nq {
            self.lns_cand_bufs.resize_with(nq, Vec::new);
        }
        if self.lns_covered.len() < nq {
            self.lns_covered.resize(nq, false);
        }
        if self.lns_covered_links.len() < nq {
            self.lns_covered_links.resize(nq, 0);
        }
        for c in &mut self.lns_covered[..nq] {
            *c = false;
        }
        for l in &mut self.lns_covered_links[..nq] {
            *l = 0;
        }
        self.lns_anchors.clear();
        self.lns_memo.clear();
    }
}

/// Per-worker scratches for `parallel::search` plus the persistent
/// [`WorkerPool`] they run on: worker `w` reuses `self.workers[w]` (on
/// pool thread `w`) across calls, so a long-lived caller pays the
/// per-depth arena setup *and* the thread spawns once instead of once
/// per request.
#[derive(Debug, Default)]
pub struct ParallelScratch {
    workers: Vec<SearchScratch>,
    pool: WorkerPool,
}

impl ParallelScratch {
    /// An empty scratch pool; worker scratches and pool threads grow on
    /// demand (a scratch that never runs a parallel search spawns
    /// nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pool over a caller-constructed [`WorkerPool`] — e.g.
    /// one pre-spawned with [`WorkerPool::with_threads`] so the first
    /// search is already warm.
    pub fn with_pool(pool: WorkerPool) -> Self {
        ParallelScratch {
            workers: Vec::new(),
            pool,
        }
    }

    /// The persistent worker pool (thread/spawn counters live here).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Mutable access to the pool — the filter build borrows it
    /// separately from the worker scratches.
    pub fn pool_mut(&mut self) -> &mut WorkerPool {
        &mut self.pool
    }

    /// Split borrow: the pool plus at least `n` worker scratches.
    pub(crate) fn pool_and_workers(&mut self, n: usize) -> (&mut WorkerPool, &mut [SearchScratch]) {
        if self.workers.len() < n {
            self.workers.resize_with(n, SearchScratch::new);
        }
        (&mut self.pool, &mut self.workers[..n])
    }
}

/// Scratch bundle for [`Engine`](crate::Engine): one sequential scratch
/// (ECF/RWB/LNS) plus a per-worker pool for the parallel algorithm, so a
/// single bundle serves any sequence of engine runs.
#[derive(Debug, Default)]
pub struct EmbedScratch {
    /// Sequential search scratch.
    pub search: SearchScratch,
    /// Per-worker scratches for [`Algorithm::ParallelEcf`](crate::Algorithm).
    pub parallel: ParallelScratch,
}

impl EmbedScratch {
    /// An empty bundle; everything grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_and_resets() {
        let mut s = SearchScratch::new();
        s.ensure(3, 100);
        s.ensure_lns(3, 100);
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.assign.len(), 3);
        assert_eq!(s.used.capacity(), 100);
        // Dirty the transient state, then ensure with the same dims.
        s.assign[1] = NodeId(7);
        s.used.insert(NodeId(9));
        s.lns_memo.insert((0, 0, 0), 1);
        s.lns_covered[0] = true;
        s.lns_covered_links[2] = 4;
        s.ensure(3, 100);
        s.ensure_lns(3, 100);
        assert_eq!(s.assign[1], NodeId(u32::MAX));
        assert!(s.used.is_empty());
        assert!(s.lns_memo.is_empty());
        assert!(!s.lns_covered[0]);
        assert_eq!(s.lns_covered_links[2], 0);
    }

    #[test]
    fn ensure_resizes_bitsets_on_new_host() {
        let mut s = SearchScratch::new();
        s.ensure(2, 10);
        s.ensure(4, 500);
        assert_eq!(s.used.capacity(), 500);
        assert_eq!(s.frames.len(), 4);
        assert_eq!(s.mask.capacity(), 500);
        assert_eq!(s.stage.capacity(), 500);
    }

    #[test]
    fn lns_buffers_are_lazy() {
        // A DFS-only ensure never touches the LNS arena; ensure_lns sizes
        // it on demand and tracks later host growth.
        let mut s = SearchScratch::new();
        s.ensure(3, 100);
        assert_eq!(s.lns_seen.capacity(), 0);
        assert!(s.lns_cand_bufs.is_empty());
        assert!(s.lns_covered.is_empty());
        s.ensure_lns(3, 100);
        assert_eq!(s.lns_seen.capacity(), 100);
        assert_eq!(s.lns_cand_bufs.len(), 3);
        s.ensure(3, 200);
        s.ensure_lns(3, 200);
        assert_eq!(s.lns_seen.capacity(), 200);
    }

    #[test]
    fn parallel_scratch_grows_on_demand() {
        let mut p = ParallelScratch::new();
        assert_eq!(p.pool_and_workers(3).1.len(), 3);
        assert_eq!(p.pool_and_workers(2).1.len(), 2);
        assert_eq!(p.pool_and_workers(5).1.len(), 5);
        // Asking for scratches spawns no threads; only running does.
        assert_eq!(p.pool().thread_count(), 0);
    }

    #[test]
    fn parallel_scratch_adopts_prewarmed_pool() {
        let mut p = ParallelScratch::with_pool(crate::pool::WorkerPool::with_threads(2));
        assert_eq!(p.pool().thread_count(), 2);
        assert_eq!(p.pool_and_workers(2).0.thread_count(), 2);
    }
}

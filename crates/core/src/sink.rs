//! Solution sinks: the searches stream feasible embeddings through a
//! [`SolutionSink`] instead of buffering them, so all-matches runs over
//! under-constrained queries (thousands of embeddings, §VII-D) do not pay
//! for storage they may not need, and first-match runs can stop the search
//! the moment the first solution arrives.

use crate::mapping::Mapping;

/// What the search should do after a solution was reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkControl {
    /// Keep searching.
    Continue,
    /// Stop the search; the caller has everything it wants.
    Stop,
}

/// Receiver of feasible embeddings.
pub trait SolutionSink {
    /// Called once per feasible embedding found.
    fn report(&mut self, mapping: &Mapping) -> SinkControl;
}

/// Collects every solution.
#[derive(Debug, Default)]
pub struct CollectAll {
    /// Solutions collected so far.
    pub solutions: Vec<Mapping>,
}

impl SolutionSink for CollectAll {
    fn report(&mut self, mapping: &Mapping) -> SinkControl {
        self.solutions.push(mapping.clone());
        SinkControl::Continue
    }
}

/// Collects up to `limit` solutions, then stops the search.
#[derive(Debug)]
pub struct CollectUpTo {
    /// Solutions collected so far.
    pub solutions: Vec<Mapping>,
    limit: usize,
}

impl CollectUpTo {
    /// Stop after `limit` solutions (`limit = 1` is first-match mode).
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "limit must be positive");
        CollectUpTo {
            solutions: Vec::new(),
            limit,
        }
    }
}

impl SolutionSink for CollectUpTo {
    fn report(&mut self, mapping: &Mapping) -> SinkControl {
        self.solutions.push(mapping.clone());
        if self.solutions.len() >= self.limit {
            SinkControl::Stop
        } else {
            SinkControl::Continue
        }
    }
}

/// Counts solutions without storing them (used when enumerating complete
/// solution sets that would not fit in memory).
#[derive(Debug, Default)]
pub struct CountOnly {
    /// Number of solutions seen.
    pub count: u64,
}

impl SolutionSink for CountOnly {
    fn report(&mut self, _mapping: &Mapping) -> SinkControl {
        self.count += 1;
        SinkControl::Continue
    }
}

/// Adapter invoking a closure per solution.
pub struct FnSink<F: FnMut(&Mapping) -> SinkControl>(pub F);

impl<F: FnMut(&Mapping) -> SinkControl> SolutionSink for FnSink<F> {
    fn report(&mut self, mapping: &Mapping) -> SinkControl {
        (self.0)(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeId;

    fn m(i: u32) -> Mapping {
        Mapping::new(vec![NodeId(i)])
    }

    #[test]
    fn collect_all_never_stops() {
        let mut s = CollectAll::default();
        for i in 0..5 {
            assert_eq!(s.report(&m(i)), SinkControl::Continue);
        }
        assert_eq!(s.solutions.len(), 5);
    }

    #[test]
    fn collect_up_to_stops_at_limit() {
        let mut s = CollectUpTo::new(2);
        assert_eq!(s.report(&m(0)), SinkControl::Continue);
        assert_eq!(s.report(&m(1)), SinkControl::Stop);
        assert_eq!(s.solutions.len(), 2);
    }

    #[test]
    fn count_only_counts() {
        let mut s = CountOnly::default();
        for i in 0..7 {
            s.report(&m(i));
        }
        assert_eq!(s.count, 7);
    }

    #[test]
    fn fn_sink_delegates() {
        let mut seen = 0;
        {
            let mut s = FnSink(|_: &Mapping| {
                seen += 1;
                if seen >= 3 {
                    SinkControl::Stop
                } else {
                    SinkControl::Continue
                }
            });
            assert_eq!(s.report(&m(0)), SinkControl::Continue);
            assert_eq!(s.report(&m(1)), SinkControl::Continue);
            assert_eq!(s.report(&m(2)), SinkControl::Stop);
        }
        assert_eq!(seen, 3);
    }
}

//! Search statistics: the instrumentation behind every figure in the
//! paper's evaluation (visited nodes, constraint evaluations, prunes,
//! elapsed time, timeout status) — plus [`BuildCharge`], the shared
//! accounting helper for runs that perform a filter build as a distinct
//! phase before their search, and [`LatencyHistogram`], the fixed-bucket
//! concurrent histogram behind the service layer's queue-wait and
//! dispatch-latency telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counters collected by one search run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Permutation-tree nodes visited (ECF/RWB) or covered-set extensions
    /// attempted (LNS).
    pub nodes_visited: u64,
    /// Constraint-expression evaluations (filter construction + lazy
    /// checks).
    pub constraint_evals: u64,
    /// Branches pruned because the candidate set became empty.
    pub prunes: u64,
    /// Feasible embeddings reported to the sink.
    pub solutions: u64,
    /// Filter cells materialized (0 for LNS — that is its point).
    pub filter_cells: u64,
    /// Subtree tasks published by the work-stealing parallel search's
    /// depth-bounded splitting (0 for sequential runs; the per-worker
    /// seed tasks are not counted — only dynamic re-splits).
    pub tasks_spawned: u64,
    /// Subtree tasks a worker executed that a *different* worker
    /// published (taken from the shared injector or a sibling's deque).
    /// `> 0` proves load actually moved between workers.
    pub tasks_stolen: u64,
    /// Filter builds this run avoided because a service-layer filter
    /// cache (the `service` crate's `FilterCache`, keyed by model
    /// epoch) already held the matrix. 0 for engine-level runs; the
    /// service's prepared-query path sets it to 1 per cache hit, so a
    /// repeated-submit loop proves "exactly one build" by summing this
    /// across responses.
    pub filter_cache_hits: u64,
    /// Worker-pool threads that were already alive *before this run
    /// began* (parked from an earlier run) and served this parallel
    /// search. Equals the worker count on a fully warm
    /// [`WorkerPool`](crate::WorkerPool) — i.e. the run spawned zero
    /// new threads — and 0 on a cold pool or a sequential run; threads
    /// spawned by the run's own filter-build fan-out count as new, not
    /// warm.
    pub pool_reuse: u64,
    /// 1 when this run rode along in a cross-request planner group led
    /// by another request: it reused the group's pinned filter without
    /// ever touching the shared cache (the `service` crate's planner
    /// sets it; engine-level runs report 0). A planner burst of N
    /// equivalent requests therefore proves "exactly one build" by
    /// `Σ filter_cache_hits + Σ coalesced_requests == N - 1`.
    pub coalesced_requests: u64,
    /// 1 when this run's filter came from *waiting on another thread's
    /// in-flight build* of the same key (the service filter cache's
    /// concurrent-miss deduplication) instead of building its own copy.
    /// Such a run also reports `filter_cache_hits = 1` — the wait is
    /// how the hit was delivered.
    pub dedup_waits: u64,
    /// How many registry deltas behind the feed head the serving model
    /// snapshot was when this run was admitted — 0 for a fresh model
    /// (or any engine-level run). Set by the service layer when a
    /// degraded model feed serves under a bounded-staleness policy; a
    /// non-zero value means the result is correct against a known-old
    /// epoch, not necessarily against the live world.
    pub staleness_lag: u64,
    /// Coarsening levels of the substrate hierarchy a hierarchical run
    /// refined through (0 for flat runs, or when the host was already
    /// below the coarsening floor).
    pub hier_levels: u64,
    /// Super-node candidates a hierarchical run pruned across all
    /// levels (degree gate, abstract node verdicts and arc-consistency
    /// combined) — each pruned super-node removed its whole subtree
    /// from the exact search.
    pub hier_pruned: u64,
    /// Filter cells the hierarchical run actually expanded at the host
    /// level: the sum of the per-query-node restricted candidate sets.
    /// Compare against [`SearchStats::hier_full_cells`] for the
    /// pruning ratio.
    pub hier_expanded_cells: u64,
    /// The full `|VQ|·|VR|` cell count a flat run would have scanned.
    pub hier_full_cells: u64,
    /// 1 when the service's `HierarchyCache` already held the coarsened
    /// substrate for this `(host, epoch)` and the run skipped
    /// hierarchy construction entirely (0 for engine-level runs and
    /// cache misses).
    pub hierarchy_cache_hits: u64,
    /// 1 when a superseded cached filter was repaired **in place** to
    /// this run's epoch ([`FilterMatrix::patch`](crate::FilterMatrix)):
    /// only the dirty-set rows were re-evaluated and the run then hit
    /// the patched entry instead of rebuilding. 0 for engine-level
    /// runs; the service's prepared-query path sets it.
    pub patches: u64,
    /// 1 when an in-place patch was *attempted* but had to fall back to
    /// a full rebuild — the delta admitted a new candidate (an addition
    /// a subtractive patch cannot express) or the patch budget expired.
    /// Such a run pays a normal cache miss.
    pub patch_rebuilds: u64,
    /// Wall-clock time of the whole run (filter construction + search).
    ///
    /// This is always the *caller-observed* duration: the parallel search
    /// sets it from its own `start.elapsed()` after joining the workers,
    /// never by accumulating per-worker durations (those go to
    /// [`SearchStats::cpu_time`]).
    pub elapsed: Duration,
    /// Aggregate time spent inside search workers. For a sequential run
    /// this equals [`SearchStats::elapsed`]; for a parallel run it is the
    /// *sum* of the workers' individual search durations and can exceed
    /// `elapsed` by up to the worker count.
    pub cpu_time: Duration,
    /// True when the deadline expired before the search space was
    /// exhausted.
    pub timed_out: bool,
}

impl SearchStats {
    /// Merge counters from a worker (parallel search).
    ///
    /// Work counters sum; `filter_cells` takes the max (workers share one
    /// filter); `staleness_lag` takes the max (workers share one model
    /// snapshot, so the values are equal anyway); `cpu_time` sums (it is
    /// per-worker search time by definition). `elapsed` is deliberately
    /// **not** summed — per-worker
    /// durations overlap in wall time, so the merged value keeps the max
    /// as a lower bound and the parallel driver overwrites it with the
    /// authoritative caller-side `start.elapsed()` afterwards.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.constraint_evals += other.constraint_evals;
        self.prunes += other.prunes;
        self.solutions += other.solutions;
        self.filter_cells = self.filter_cells.max(other.filter_cells);
        self.tasks_spawned += other.tasks_spawned;
        self.tasks_stolen += other.tasks_stolen;
        self.filter_cache_hits += other.filter_cache_hits;
        self.coalesced_requests += other.coalesced_requests;
        self.dedup_waits += other.dedup_waits;
        self.pool_reuse += other.pool_reuse;
        self.staleness_lag = self.staleness_lag.max(other.staleness_lag);
        self.hier_levels = self.hier_levels.max(other.hier_levels);
        self.hier_pruned = self.hier_pruned.max(other.hier_pruned);
        self.hier_expanded_cells = self.hier_expanded_cells.max(other.hier_expanded_cells);
        self.hier_full_cells = self.hier_full_cells.max(other.hier_full_cells);
        self.hierarchy_cache_hits += other.hierarchy_cache_hits;
        self.patches += other.patches;
        self.patch_rebuilds += other.patch_rebuilds;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.cpu_time += other.cpu_time;
        self.timed_out |= other.timed_out;
    }
}

/// The shared accounting contract for runs that perform a filter build
/// as a separate phase before their search — the idiom that used to be
/// copy-pasted across `Engine::run_with_scratch`'s parallel branch,
/// `parallel::search_with_scratch` and the service's cached-run path,
/// now stated once:
///
/// 1. snapshot the worker pool's lifetime spawn count **before** the
///    build ([`BuildCharge::begin`]);
/// 2. build, then record the build phase's end
///    ([`BuildCharge::finish_build`]) — everything the pool spawned in
///    between is *build fan-out*, not warm capacity;
/// 3. run the search, charging it only the budget the build left over
///    ([`BuildCharge::remaining`]);
/// 4. fold the build phase into the run's stats: evals and wall/cpu
///    time via [`BuildCharge::charge_build`] (for callers that kept the
///    build's counters separate), and **always** the `pool_reuse`
///    correction via [`BuildCharge::settle_pool_reuse`] — the search
///    stage credits every pre-existing pool thread as warm, so exactly
///    the build-phase spawns must be deducted (a cold run reports 0,
///    a partially warm pool keeps credit for its genuinely warm
///    threads, and search-stage spawns are never deducted because they
///    were never credited).
#[derive(Debug)]
pub struct BuildCharge {
    start: Instant,
    /// Set by [`BuildCharge::mark_build_start`] when real build work
    /// begins later than `begin()` — e.g. a run that first blocked on
    /// another thread's in-flight build. Wall time before this mark is
    /// charged to `elapsed` but never to `cpu_time` (a parked thread
    /// does no work).
    build_start: Option<Instant>,
    spawned_before: u64,
    build_spawned: u64,
    spent: Duration,
    build_spent: Duration,
}

impl BuildCharge {
    /// Start the build phase: `spawned_before` is the pool's
    /// [`spawned_total`](crate::WorkerPool::spawned_total) right now
    /// (pass 0 for builds that cannot fan out).
    pub fn begin(spawned_before: u64) -> Self {
        BuildCharge {
            start: Instant::now(),
            build_start: None,
            spawned_before,
            build_spawned: 0,
            spent: Duration::ZERO,
            build_spent: Duration::ZERO,
        }
    }

    /// Record that actual build *work* starts now — everything since
    /// `begin()` was waiting (blocked on someone else's build), which
    /// consumes the budget and the caller's wall clock but no CPU.
    /// Without this mark the whole phase counts as build work.
    pub fn mark_build_start(&mut self) {
        self.build_start = Some(Instant::now());
    }

    /// End the build phase: `spawned_after` is the pool's spawn count
    /// now. Records the phase's wall time (and the build-work portion
    /// of it) and its thread fan-out.
    pub fn finish_build(&mut self, spawned_after: u64) {
        self.build_spawned = spawned_after.saturating_sub(self.spawned_before);
        self.spent = self.start.elapsed();
        self.build_spent = match self.build_start {
            Some(build_start) => build_start.elapsed(),
            None => self.spent,
        };
    }

    /// Wall time the build phase consumed (valid after
    /// [`BuildCharge::finish_build`]).
    pub fn spent(&self) -> Duration {
        self.spent
    }

    /// Threads the build fan-out spawned (valid after
    /// [`BuildCharge::finish_build`]).
    pub fn build_spawned(&self) -> u64 {
        self.build_spawned
    }

    /// The budget the build left for the search stage: `timeout` minus
    /// the build's wall time, saturating at zero (`None` stays
    /// unlimited). Later cache hitters never pay this — only the run
    /// that actually built.
    pub fn remaining(&self, timeout: Option<Duration>) -> Option<Duration> {
        timeout.map(|t| t.saturating_sub(self.spent))
    }

    /// The budget left *right now*: `timeout` minus everything elapsed
    /// since [`BuildCharge::begin`], saturating at zero. For callers
    /// that burned wall time **before** starting their build — e.g. a
    /// run that waited on another thread's in-flight build, saw it
    /// abandoned, and took over as the new builder — so the build phase
    /// itself runs on what the wait left over, never on a fresh copy of
    /// the original budget.
    pub fn remaining_now(&self, timeout: Option<Duration>) -> Option<Duration> {
        timeout.map(|t| t.saturating_sub(self.start.elapsed()))
    }

    /// Fold separately-collected build counters into the run's stats:
    /// the build's constraint evaluations, the whole phase's wall time
    /// into `elapsed`, and only the build-*work* portion into
    /// `cpu_time` — time spent blocked before
    /// [`BuildCharge::mark_build_start`] (waiting on someone else's
    /// build) is wall time, not CPU. The build work itself is
    /// single-stream from the run's point of view (its internal
    /// fan-out already summed into `build_stats` by the builder).
    pub fn charge_build(&self, stats: &mut SearchStats, build_stats: &SearchStats) {
        stats.constraint_evals += build_stats.constraint_evals;
        stats.elapsed += self.spent;
        stats.cpu_time += self.build_spent;
    }

    /// Deduct exactly the build-phase spawns from the run's
    /// `pool_reuse` credit. See the type docs for why this is the whole
    /// correction: the search stage credits pre-existing threads only,
    /// so build fan-out is the one source of wrongly-counted "warmth".
    pub fn settle_pool_reuse(&self, stats: &mut SearchStats) {
        stats.pool_reuse = stats.pool_reuse.saturating_sub(self.build_spawned);
    }
}

/// Number of buckets in a [`LatencyHistogram`]: bucket 0 is `< 1µs`,
/// bucket `i ≥ 1` covers `[2^(i−1) µs, 2^i µs)`, and the last bucket is
/// the overflow catch-all (everything ≥ ~2.1 s).
pub const LATENCY_BUCKETS: usize = 23;

fn latency_bucket(d: Duration) -> usize {
    let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    let idx = (u64::BITS - micros.leading_zeros()) as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

/// Upper bound (exclusive) of bucket `i`, in microseconds; the overflow
/// bucket reports `u64::MAX`.
fn bucket_upper_micros(i: usize) -> u64 {
    if i >= LATENCY_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A concurrent fixed-bucket latency histogram: power-of-two microsecond
/// buckets, lock-free recording (one relaxed atomic increment per
/// sample), bounded memory regardless of traffic. This is the overload-
/// observability primitive behind the service's queue-wait and
/// dispatch-latency telemetry: under a shedding burst the *distribution*
/// is the signal (is the queue wait collapsing or fanning out into the
/// tail?), which counters and EWMAs cannot show.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (relaxed; safe from any thread).
    pub fn record(&self, sample: Duration) {
        self.buckets[latency_bucket(sample)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Racy by nature (a
    /// concurrent `record` may or may not be included), which is fine
    /// for telemetry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A frozen copy of a [`LatencyHistogram`]: plain counts, `Copy`, safe
/// to embed in telemetry structs and compare in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`LATENCY_BUCKETS`] for the bucket
    /// boundaries).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`), or `None` for an empty histogram. Bucketed, so
    /// an upper *bound*, not an exact order statistic: `quantile(0.5)`
    /// of samples all in `[2, 4) µs` reports 4 µs.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(bucket_upper_micros(i)));
            }
        }
        None
    }

    /// Accumulate another snapshot into this one (bucket-wise sum).
    /// This is the roll-up primitive for per-shard telemetry: merging
    /// every shard's snapshot yields exactly the histogram one shared
    /// recorder would have produced, since the buckets are aligned.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// One-line human summary (`count, p50, p90, p99, max-bucket`) for
    /// CLI/diagnostic output. Quantiles are bucket upper bounds.
    pub fn summary(&self) -> String {
        let fmt = |d: Option<Duration>| match d {
            None => "-".to_string(),
            Some(d) if d == Duration::from_micros(u64::MAX) => ">2s".to_string(),
            Some(d) => format!("{d:?}"),
        };
        format!(
            "n={} p50<{} p90<{} p99<{}",
            self.count(),
            fmt(self.quantile(0.5)),
            fmt(self.quantile(0.9)),
            fmt(self.quantile(0.99)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes_visited: 10,
            constraint_evals: 100,
            prunes: 5,
            solutions: 1,
            filter_cells: 50,
            tasks_spawned: 3,
            tasks_stolen: 1,
            filter_cache_hits: 1,
            coalesced_requests: 1,
            dedup_waits: 0,
            pool_reuse: 2,
            staleness_lag: 3,
            hier_levels: 4,
            hier_pruned: 90,
            hier_expanded_cells: 12,
            hier_full_cells: 120,
            hierarchy_cache_hits: 1,
            patches: 1,
            patch_rebuilds: 0,
            elapsed: Duration::from_millis(20),
            cpu_time: Duration::from_millis(20),
            timed_out: false,
        };
        let b = SearchStats {
            nodes_visited: 7,
            constraint_evals: 30,
            prunes: 2,
            solutions: 0,
            filter_cells: 60,
            tasks_spawned: 2,
            tasks_stolen: 2,
            filter_cache_hits: 0,
            coalesced_requests: 1,
            dedup_waits: 1,
            pool_reuse: 4,
            staleness_lag: 1,
            hier_levels: 0,
            hier_pruned: 0,
            hier_expanded_cells: 0,
            hier_full_cells: 0,
            hierarchy_cache_hits: 1,
            patches: 1,
            patch_rebuilds: 1,
            elapsed: Duration::from_millis(35),
            cpu_time: Duration::from_millis(35),
            timed_out: true,
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 17);
        assert_eq!(a.constraint_evals, 130);
        assert_eq!(a.prunes, 7);
        assert_eq!(a.solutions, 1);
        assert_eq!(a.filter_cells, 60); // max, filters are shared
        assert_eq!(a.tasks_spawned, 5); // sum, per-worker publishes
        assert_eq!(a.tasks_stolen, 3); // sum, per-worker steals
        assert_eq!(a.filter_cache_hits, 1); // sum, per-run hits
        assert_eq!(a.coalesced_requests, 2); // sum, per-run rides
        assert_eq!(a.dedup_waits, 1); // sum, per-run build waits
        assert_eq!(a.pool_reuse, 6); // sum, per-run warm threads
        assert_eq!(a.staleness_lag, 3); // max, one shared model snapshot
        assert_eq!(a.hier_levels, 4); // max, one driver-side refinement
        assert_eq!(a.hier_pruned, 90); // max, driver-side value survives
        assert_eq!(a.hier_expanded_cells, 12); // max, shared restriction
        assert_eq!(a.hier_full_cells, 120); // max, one shared matrix size
        assert_eq!(a.hierarchy_cache_hits, 2); // sum, per-run hits
        assert_eq!(a.patches, 2); // sum, per-run in-place repairs
        assert_eq!(a.patch_rebuilds, 1); // sum, per-run patch fallbacks
        assert_eq!(a.elapsed, Duration::from_millis(35)); // max, wall-clock
        assert_eq!(a.cpu_time, Duration::from_millis(55)); // sum, cpu-time
        assert!(a.timed_out);
    }

    #[test]
    fn build_charge_contract() {
        // Cold pool: the build fans out from 0 to 4 threads; the search
        // stage then credits those same 4 as "already alive" — settle
        // must zero the credit out.
        let mut charge = BuildCharge::begin(0);
        charge.finish_build(4);
        assert_eq!(charge.build_spawned(), 4);
        let mut stats = SearchStats {
            pool_reuse: 4,
            ..SearchStats::default()
        };
        charge.settle_pool_reuse(&mut stats);
        assert_eq!(stats.pool_reuse, 0, "cold run must report no reuse");

        // Partially warm: 2 threads predate the run, the build spawns 2
        // more; only the build's 2 are deducted.
        let mut charge = BuildCharge::begin(2);
        charge.finish_build(4);
        assert_eq!(charge.build_spawned(), 2);
        let mut stats = SearchStats {
            pool_reuse: 4,
            ..SearchStats::default()
        };
        charge.settle_pool_reuse(&mut stats);
        assert_eq!(stats.pool_reuse, 2, "warm threads keep their credit");

        // No fan-out at all (sequential build, fully warm pool): the
        // settle is a no-op, never an over-deduction.
        let mut charge = BuildCharge::begin(4);
        charge.finish_build(4);
        let mut stats = SearchStats {
            pool_reuse: 4,
            ..SearchStats::default()
        };
        charge.settle_pool_reuse(&mut stats);
        assert_eq!(stats.pool_reuse, 4);
    }

    #[test]
    fn build_charge_budget_and_counters() {
        let mut charge = BuildCharge::begin(0);
        std::thread::sleep(Duration::from_millis(5));
        charge.finish_build(0);
        assert!(charge.spent() >= Duration::from_millis(5));

        // The search budget is what the build left over, floored at 0;
        // unlimited stays unlimited.
        assert_eq!(charge.remaining(None), None);
        let rem = charge.remaining(Some(Duration::from_secs(1))).unwrap();
        assert!(rem < Duration::from_secs(1));
        assert_eq!(
            charge.remaining(Some(Duration::from_nanos(1))),
            Some(Duration::ZERO),
            "an overspent budget floors at zero, never underflows"
        );

        // charge_build folds the build's evals and wall time into a
        // separately-collected run.
        let build_stats = SearchStats {
            constraint_evals: 12,
            ..SearchStats::default()
        };
        let mut run_stats = SearchStats {
            constraint_evals: 3,
            elapsed: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
            ..SearchStats::default()
        };
        charge.charge_build(&mut run_stats, &build_stats);
        assert_eq!(run_stats.constraint_evals, 15);
        assert_eq!(run_stats.elapsed, Duration::from_millis(1) + charge.spent());
        assert_eq!(
            run_stats.cpu_time,
            Duration::from_millis(1) + charge.spent(),
            "without a build-start mark the whole phase is build work"
        );
    }

    #[test]
    fn build_charge_splits_wait_from_build_work() {
        // A takeover builder: blocked on someone else's build first,
        // then built itself. The wait charges the wall clock (elapsed,
        // budget) but never cpu_time.
        let mut charge = BuildCharge::begin(0);
        std::thread::sleep(Duration::from_millis(8)); // "waiting"
        charge.mark_build_start();
        std::thread::sleep(Duration::from_millis(2)); // "building"
        charge.finish_build(0);

        let mut stats = SearchStats::default();
        charge.charge_build(&mut stats, &SearchStats::default());
        assert!(stats.elapsed >= Duration::from_millis(10), "wait + build");
        assert!(stats.cpu_time >= Duration::from_millis(2));
        assert!(
            stats.elapsed >= stats.cpu_time + Duration::from_millis(6),
            "the wait portion must be missing from cpu_time (elapsed {:?}, cpu {:?})",
            stats.elapsed,
            stats.cpu_time
        );
        // The budget, in contrast, is charged for the *whole* phase.
        assert_eq!(
            charge.remaining(Some(Duration::from_millis(5))),
            Some(Duration::ZERO),
            "waiting consumes the budget even though it is not CPU time"
        );
    }

    #[test]
    fn merge_never_sums_elapsed() {
        // Regression: merging N workers each reporting `elapsed = t` must
        // not produce `N * t` — overlapping wall time is not additive.
        let worker = SearchStats {
            elapsed: Duration::from_millis(10),
            cpu_time: Duration::from_millis(10),
            ..SearchStats::default()
        };
        let mut merged = SearchStats::default();
        for _ in 0..4 {
            merged.merge(&worker);
        }
        assert_eq!(merged.elapsed, Duration::from_millis(10));
        assert_eq!(merged.cpu_time, Duration::from_millis(40));
    }

    #[test]
    fn latency_buckets_partition_the_range() {
        // Sub-microsecond → bucket 0; exact powers of two open a new
        // bucket; the overflow bucket swallows everything huge.
        assert_eq!(latency_bucket(Duration::ZERO), 0);
        assert_eq!(latency_bucket(Duration::from_nanos(999)), 0);
        assert_eq!(latency_bucket(Duration::from_micros(1)), 1);
        assert_eq!(latency_bucket(Duration::from_micros(2)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(3)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(4)), 3);
        assert_eq!(
            latency_bucket(Duration::from_secs(3600)),
            LATENCY_BUCKETS - 1
        );
        // Every bucket's samples sit strictly below its upper bound.
        for i in 0..LATENCY_BUCKETS - 1 {
            let upper = bucket_upper_micros(i);
            assert!(latency_bucket(Duration::from_micros(upper.saturating_sub(1))) <= i);
            assert_eq!(latency_bucket(Duration::from_micros(upper)), i + 1);
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile(0.5), None);
        // 90 fast samples, 10 slow ones: p50 is fast, p99 is slow.
        for _ in 0..90 {
            h.record(Duration::from_micros(3));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(40));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.quantile(0.5), Some(Duration::from_micros(4)));
        assert_eq!(snap.quantile(0.9), Some(Duration::from_micros(4)));
        // 40 ms lands in the [32768, 65536) µs bucket.
        assert_eq!(snap.quantile(0.99), Some(Duration::from_micros(65536)));
        assert!(snap.summary().starts_with("n=100 "));
        // Snapshots are plain values: equality and copy semantics.
        let again = snap;
        assert_eq!(again, h.snapshot());
    }

    #[test]
    fn histogram_merge_equals_shared_recorder() {
        // Two disjoint recorders merged bucket-wise must equal one
        // recorder that saw all the traffic — the per-shard roll-up
        // contract.
        let (a, b, shared) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..50u64 {
            let d = Duration::from_micros(1 << (i % 12));
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            shared.record(d);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, shared.snapshot());
        assert_eq!(merged.count(), 50);
        // Merging an empty snapshot is the identity.
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, shared.snapshot());
    }
}

//! Search statistics: the instrumentation behind every figure in the
//! paper's evaluation (visited nodes, constraint evaluations, prunes,
//! elapsed time, timeout status).

use std::time::Duration;

/// Counters collected by one search run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Permutation-tree nodes visited (ECF/RWB) or covered-set extensions
    /// attempted (LNS).
    pub nodes_visited: u64,
    /// Constraint-expression evaluations (filter construction + lazy
    /// checks).
    pub constraint_evals: u64,
    /// Branches pruned because the candidate set became empty.
    pub prunes: u64,
    /// Feasible embeddings reported to the sink.
    pub solutions: u64,
    /// Filter cells materialized (0 for LNS — that is its point).
    pub filter_cells: u64,
    /// Subtree tasks published by the work-stealing parallel search's
    /// depth-bounded splitting (0 for sequential runs; the per-worker
    /// seed tasks are not counted — only dynamic re-splits).
    pub tasks_spawned: u64,
    /// Subtree tasks a worker executed that a *different* worker
    /// published (taken from the shared injector or a sibling's deque).
    /// `> 0` proves load actually moved between workers.
    pub tasks_stolen: u64,
    /// Filter builds this run avoided because a service-layer filter
    /// cache (the `service` crate's `FilterCache`, keyed by model
    /// epoch) already held the matrix. 0 for engine-level runs; the
    /// service's prepared-query path sets it to 1 per cache hit, so a
    /// repeated-submit loop proves "exactly one build" by summing this
    /// across responses.
    pub filter_cache_hits: u64,
    /// Worker-pool threads that were already alive *before this run
    /// began* (parked from an earlier run) and served this parallel
    /// search. Equals the worker count on a fully warm
    /// [`WorkerPool`](crate::WorkerPool) — i.e. the run spawned zero
    /// new threads — and 0 on a cold pool or a sequential run; threads
    /// spawned by the run's own filter-build fan-out count as new, not
    /// warm.
    pub pool_reuse: u64,
    /// Wall-clock time of the whole run (filter construction + search).
    ///
    /// This is always the *caller-observed* duration: the parallel search
    /// sets it from its own `start.elapsed()` after joining the workers,
    /// never by accumulating per-worker durations (those go to
    /// [`SearchStats::cpu_time`]).
    pub elapsed: Duration,
    /// Aggregate time spent inside search workers. For a sequential run
    /// this equals [`SearchStats::elapsed`]; for a parallel run it is the
    /// *sum* of the workers' individual search durations and can exceed
    /// `elapsed` by up to the worker count.
    pub cpu_time: Duration,
    /// True when the deadline expired before the search space was
    /// exhausted.
    pub timed_out: bool,
}

impl SearchStats {
    /// Merge counters from a worker (parallel search).
    ///
    /// Work counters sum; `filter_cells` takes the max (workers share one
    /// filter); `cpu_time` sums (it is per-worker search time by
    /// definition). `elapsed` is deliberately **not** summed — per-worker
    /// durations overlap in wall time, so the merged value keeps the max
    /// as a lower bound and the parallel driver overwrites it with the
    /// authoritative caller-side `start.elapsed()` afterwards.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.constraint_evals += other.constraint_evals;
        self.prunes += other.prunes;
        self.solutions += other.solutions;
        self.filter_cells = self.filter_cells.max(other.filter_cells);
        self.tasks_spawned += other.tasks_spawned;
        self.tasks_stolen += other.tasks_stolen;
        self.filter_cache_hits += other.filter_cache_hits;
        self.pool_reuse += other.pool_reuse;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.cpu_time += other.cpu_time;
        self.timed_out |= other.timed_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes_visited: 10,
            constraint_evals: 100,
            prunes: 5,
            solutions: 1,
            filter_cells: 50,
            tasks_spawned: 3,
            tasks_stolen: 1,
            filter_cache_hits: 1,
            pool_reuse: 2,
            elapsed: Duration::from_millis(20),
            cpu_time: Duration::from_millis(20),
            timed_out: false,
        };
        let b = SearchStats {
            nodes_visited: 7,
            constraint_evals: 30,
            prunes: 2,
            solutions: 0,
            filter_cells: 60,
            tasks_spawned: 2,
            tasks_stolen: 2,
            filter_cache_hits: 0,
            pool_reuse: 4,
            elapsed: Duration::from_millis(35),
            cpu_time: Duration::from_millis(35),
            timed_out: true,
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 17);
        assert_eq!(a.constraint_evals, 130);
        assert_eq!(a.prunes, 7);
        assert_eq!(a.solutions, 1);
        assert_eq!(a.filter_cells, 60); // max, filters are shared
        assert_eq!(a.tasks_spawned, 5); // sum, per-worker publishes
        assert_eq!(a.tasks_stolen, 3); // sum, per-worker steals
        assert_eq!(a.filter_cache_hits, 1); // sum, per-run hits
        assert_eq!(a.pool_reuse, 6); // sum, per-run warm threads
        assert_eq!(a.elapsed, Duration::from_millis(35)); // max, wall-clock
        assert_eq!(a.cpu_time, Duration::from_millis(55)); // sum, cpu-time
        assert!(a.timed_out);
    }

    #[test]
    fn merge_never_sums_elapsed() {
        // Regression: merging N workers each reporting `elapsed = t` must
        // not produce `N * t` — overlapping wall time is not additive.
        let worker = SearchStats {
            elapsed: Duration::from_millis(10),
            cpu_time: Duration::from_millis(10),
            ..SearchStats::default()
        };
        let mut merged = SearchStats::default();
        for _ in 0..4 {
            merged.merge(&worker);
        }
        assert_eq!(merged.elapsed, Duration::from_millis(10));
        assert_eq!(merged.cpu_time, Duration::from_millis(40));
    }
}

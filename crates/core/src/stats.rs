//! Search statistics: the instrumentation behind every figure in the
//! paper's evaluation (visited nodes, constraint evaluations, prunes,
//! elapsed time, timeout status).

use std::time::Duration;

/// Counters collected by one search run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Permutation-tree nodes visited (ECF/RWB) or covered-set extensions
    /// attempted (LNS).
    pub nodes_visited: u64,
    /// Constraint-expression evaluations (filter construction + lazy
    /// checks).
    pub constraint_evals: u64,
    /// Branches pruned because the candidate set became empty.
    pub prunes: u64,
    /// Feasible embeddings reported to the sink.
    pub solutions: u64,
    /// Filter cells materialized (0 for LNS — that is its point).
    pub filter_cells: u64,
    /// Wall-clock time of the whole run (filter construction + search).
    pub elapsed: Duration,
    /// True when the deadline expired before the search space was
    /// exhausted.
    pub timed_out: bool,
}

impl SearchStats {
    /// Merge counters from a worker (parallel search).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.constraint_evals += other.constraint_evals;
        self.prunes += other.prunes;
        self.solutions += other.solutions;
        self.filter_cells = self.filter_cells.max(other.filter_cells);
        self.elapsed = self.elapsed.max(other.elapsed);
        self.timed_out |= other.timed_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes_visited: 10,
            constraint_evals: 100,
            prunes: 5,
            solutions: 1,
            filter_cells: 50,
            elapsed: Duration::from_millis(20),
            timed_out: false,
        };
        let b = SearchStats {
            nodes_visited: 7,
            constraint_evals: 30,
            prunes: 2,
            solutions: 0,
            filter_cells: 60,
            elapsed: Duration::from_millis(35),
            timed_out: true,
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 17);
        assert_eq!(a.constraint_evals, 130);
        assert_eq!(a.prunes, 7);
        assert_eq!(a.solutions, 1);
        assert_eq!(a.filter_cells, 60); // max, filters are shared
        assert_eq!(a.elapsed, Duration::from_millis(35)); // max, wall-clock
        assert!(a.timed_out);
    }
}

//! Independent mapping verification — the correctness oracle.
//!
//! The searches are supposed to return only feasible embeddings (§IV);
//! this module re-checks a mapping against the raw networks and the
//! constraint expression without using any search data structure, so a
//! bug in the filter matrices or the DFS cannot hide itself. The service
//! layer verifies every mapping before handing it to a client, and the
//! test suite verifies every solution produced in every test.

use crate::mapping::Mapping;
use crate::problem::Problem;
use cexpr::EvalError;
use netgraph::NodeId;
use std::fmt;

/// Why a mapping failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Mapping length differs from the query node count.
    WrongLength {
        /// Mapping length.
        got: usize,
        /// Query node count.
        want: usize,
    },
    /// A host node is out of range.
    BadHostNode(NodeId),
    /// Two query nodes map to the same host node.
    NotInjective {
        /// First query node.
        a: NodeId,
        /// Second query node.
        b: NodeId,
        /// The shared host node.
        host: NodeId,
    },
    /// A query edge has no corresponding host edge.
    MissingHostEdge {
        /// Query edge source.
        v_src: NodeId,
        /// Query edge target.
        v_dst: NodeId,
    },
    /// The edge constraint rejected a query-edge image.
    EdgeConstraint {
        /// Query edge source.
        v_src: NodeId,
        /// Query edge target.
        v_dst: NodeId,
    },
    /// The node constraint rejected a node image.
    NodeConstraint {
        /// Query node.
        v: NodeId,
    },
    /// The constraint expression raised a type error.
    Eval(EvalError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WrongLength { got, want } => {
                write!(f, "mapping has {got} entries, query has {want} nodes")
            }
            VerifyError::BadHostNode(r) => write!(f, "host node {r} out of range"),
            VerifyError::NotInjective { a, b, host } => {
                write!(f, "query nodes {a} and {b} both map to host node {host}")
            }
            VerifyError::MissingHostEdge { v_src, v_dst } => {
                write!(f, "no host edge for query edge ({v_src}, {v_dst})")
            }
            VerifyError::EdgeConstraint { v_src, v_dst } => {
                write!(f, "edge constraint fails on query edge ({v_src}, {v_dst})")
            }
            VerifyError::NodeConstraint { v } => {
                write!(f, "node constraint fails on query node {v}")
            }
            VerifyError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<EvalError> for VerifyError {
    fn from(e: EvalError) -> Self {
        VerifyError::Eval(e)
    }
}

/// Verify that `mapping` is a feasible embedding for `problem`.
pub fn check_mapping(problem: &Problem<'_>, mapping: &Mapping) -> Result<(), VerifyError> {
    let nq = problem.nq();
    let nr = problem.nr();
    if mapping.len() != nq {
        return Err(VerifyError::WrongLength {
            got: mapping.len(),
            want: nq,
        });
    }
    // Injectivity + range.
    let mut owner: Vec<Option<NodeId>> = vec![None; nr];
    for (q, r) in mapping.iter() {
        if r.index() >= nr {
            return Err(VerifyError::BadHostNode(r));
        }
        if let Some(prev) = owner[r.index()] {
            return Err(VerifyError::NotInjective {
                a: prev,
                b: q,
                host: r,
            });
        }
        owner[r.index()] = Some(q);
    }
    // Node constraints.
    for q in problem.query.node_ids() {
        if !problem.node_ok(q, mapping.get(q))? {
            return Err(VerifyError::NodeConstraint { v: q });
        }
    }
    // Topology + edge constraints, in the stored edge orientation.
    for qe in problem.query.edge_refs() {
        let rs = mapping.get(qe.src);
        let rd = mapping.get(qe.dst);
        let Some(re) = problem.host.find_edge(rs, rd) else {
            return Err(VerifyError::MissingHostEdge {
                v_src: qe.src,
                v_dst: qe.dst,
            });
        };
        if !problem.edge_ok(qe.id, qe.src, qe.dst, re, rs, rd)? {
            return Err(VerifyError::EdgeConstraint {
                v_src: qe.src,
                v_dst: qe.dst,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, Network};

    fn nets() -> (Network, Network) {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let mut h = Network::new(Direction::Undirected);
        let u = h.add_node("u");
        let v = h.add_node("v");
        let w = h.add_node("w");
        let e = h.add_edge(u, v);
        h.set_edge_attr(e, "d", 5.0);
        let e = h.add_edge(v, w);
        h.set_edge_attr(e, "d", 50.0);
        (q, h)
    }

    #[test]
    fn accepts_valid_mapping() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "rEdge.d < 10.0").unwrap();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        assert_eq!(check_mapping(&p, &m), Ok(()));
    }

    #[test]
    fn rejects_constraint_violation() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "rEdge.d < 10.0").unwrap();
        let m = Mapping::new(vec![NodeId(1), NodeId(2)]); // d = 50
        assert!(matches!(
            check_mapping(&p, &m),
            Err(VerifyError::EdgeConstraint { .. })
        ));
    }

    #[test]
    fn rejects_missing_edge() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "true").unwrap();
        let m = Mapping::new(vec![NodeId(0), NodeId(2)]); // u-w not an edge
        assert!(matches!(
            check_mapping(&p, &m),
            Err(VerifyError::MissingHostEdge { .. })
        ));
    }

    #[test]
    fn rejects_non_injective() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "true").unwrap();
        let m = Mapping::new(vec![NodeId(0), NodeId(0)]);
        assert!(matches!(
            check_mapping(&p, &m),
            Err(VerifyError::NotInjective { .. })
        ));
    }

    #[test]
    fn rejects_wrong_length_and_range() {
        let (q, h) = nets();
        let p = Problem::new(&q, &h, "true").unwrap();
        assert!(matches!(
            check_mapping(&p, &Mapping::new(vec![NodeId(0)])),
            Err(VerifyError::WrongLength { got: 1, want: 2 })
        ));
        assert!(matches!(
            check_mapping(&p, &Mapping::new(vec![NodeId(0), NodeId(99)])),
            Err(VerifyError::BadHostNode(_))
        ));
    }

    #[test]
    fn rejects_node_constraint_violation() {
        let (q, mut h) = nets();
        h.set_node_attr(NodeId(0), "cpu", 1.0);
        h.set_node_attr(NodeId(1), "cpu", 8.0);
        let p = Problem::new(&q, &h, "rNode.cpu >= 4.0").unwrap();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        assert!(matches!(
            check_mapping(&p, &m),
            Err(VerifyError::NodeConstraint { v }) if v == NodeId(0)
        ));
    }
}

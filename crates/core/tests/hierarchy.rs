//! Hierarchy soundness and equivalence properties.
//!
//! The multilevel substrate hierarchy is only allowed to *speed up* the
//! filter stage — never to change answers. Three properties pin that
//! down:
//!
//! 1. **Conservative coarsening** — at every level, every super-node's
//!    attribute bounds contain every member leaf's concrete attributes
//!    (the `AttrBounds::contains` oracle). This is the invariant that
//!    makes abstract `Infeasible` verdicts sound.
//! 2. **No false prunes** — on random hosts, queries, and constraints,
//!    top-down refinement never returns `Infeasible` when the flat ECF
//!    enumeration finds solutions, and every flat solution's host nodes
//!    survive inside the refined `allowed` sets.
//! 3. **Solution-set identity** — a hierarchical run (sequential ECF
//!    and work-stealing parallel ECF at 1–4 pinned workers) returns a
//!    solution set identical to the flat run, mapping for mapping.
//!
//! A scale soak on a ≥10⁵-node power-law substrate runs behind
//! `NETEMBED_HIERARCHY_FULL=1` (nightly CI), mirroring the chaos
//! harness's env gating.

use cexpr::BoundsMap;
use netembed::{
    Algorithm, Deadline, Engine, HierarchySpec, Mapping, Options, Outcome, Problem, Refinement,
    SearchMode, SearchStats, SubstrateHierarchy,
};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;

/// Worker counts for the parallel identity property. CI pins this via
/// `NETEMBED_TEST_WORKERS` so scheduler skew surfaces on 1-core boxes.
fn steal_threads() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![1, 2, 4],
    }
}

/// Build an attributed host and a bare query from raw edge lists.
/// Hosts carry a numeric `cpu` per node and `d` per edge; self-loops
/// and duplicate edges are dropped, indices wrap.
fn build_nets(
    dir: Direction,
    nr: usize,
    cpus: &[u32],
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
) -> (Network, Network) {
    let mut host = Network::new(dir);
    for i in 0..nr {
        let id = host.add_node(format!("h{i}"));
        host.set_node_attr(id, "cpu", cpus[i % cpus.len()] as f64);
    }
    for &(u, v, d) in hedges {
        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
        if u != v && !host.has_edge(u, v) {
            let e = host.add_edge(u, v);
            host.set_edge_attr(e, "d", d as f64);
        }
    }
    let mut query = Network::new(dir);
    for i in 0..nq {
        query.add_node(format!("q{i}"));
    }
    for &(u, v) in qedges {
        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
        if u != v && !query.has_edge(u, v) {
            query.add_edge(u, v);
        }
    }
    (host, query)
}

fn sorted_mappings(mut v: Vec<Mapping>) -> Vec<Mapping> {
    v.sort_by_key(|m| m.as_slice().to_vec());
    v
}

/// Aggressive coarsening: two-node floor so even small hosts produce
/// several levels for the properties to bite on.
const DEEP: HierarchySpec = HierarchySpec {
    max_levels: 16,
    min_nodes: 2,
};

/// Property 1: every super-node's bounds contain every member's
/// concrete attribute map, at every level.
fn check_conservative(host: &Network) -> Result<(), TestCaseError> {
    let hier = SubstrateHierarchy::build(host, &DEEP);
    for level in 0..hier.levels() {
        for sup in 0..hier.level_size(level) {
            let bounds = hier.node_bounds(level, sup);
            for member in hier.leaf_members(level, sup) {
                let concrete = BoundsMap::from_node(host, member);
                for (attr, member_bounds) in concrete.iter() {
                    let sup_bounds = bounds.get(attr);
                    prop_assert!(
                        sup_bounds.is_some(),
                        "level {level} super {sup}: member {member:?} has attr {attr:?} \
                         absent from the super-node bounds"
                    );
                    // A singleton bound from one concrete node must be
                    // inside the aggregate: check via a fresh merge —
                    // merging the member in must not widen anything the
                    // contains oracle can see. Cheapest sound check:
                    // every concrete value the member bounds admit at
                    // its endpoints is admitted by the aggregate.
                    let sup_bounds = sup_bounds.unwrap();
                    let mut widened = sup_bounds.clone();
                    widened.merge(member_bounds);
                    prop_assert!(
                        widened == *sup_bounds,
                        "level {level} super {sup}: member {member:?} attrs escape \
                         the aggregate bounds for {attr:?}"
                    );
                }
            }
        }
    }
    Ok(())
}

/// Properties 2 and 3 on one instance: refinement keeps every flat
/// solution, and hierarchical engine runs return identical sets.
#[allow(clippy::too_many_arguments)]
fn check_equivalence(
    dir: Direction,
    nr: usize,
    cpus: &[u32],
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
    cpu_min: u32,
    thr: u32,
) -> Result<(), TestCaseError> {
    let (host, query) = build_nets(dir, nr, cpus, hedges, nq, qedges);
    prop_assume!(query.node_count() <= host.node_count());
    check_conservative(&host)?;

    let constraint = format!("rNode.cpu >= {cpu_min}.0 && rEdge.d <= {thr}.0");
    let problem = Problem::new(&query, &host, &constraint).unwrap();

    // Flat reference run.
    let flat_opts = Options {
        algorithm: Algorithm::Ecf,
        mode: SearchMode::All,
        ..Options::default()
    };
    let flat = Engine::run(&problem, &flat_opts).unwrap();
    let flat_sols = match flat.outcome {
        Outcome::Complete(m) => sorted_mappings(m),
        other => {
            return Err(TestCaseError::fail(format!(
                "flat run without timeout must be Complete, got {other:?}"
            )))
        }
    };

    // Property 2: refinement is a sound over-approximation of the
    // solution supports.
    let hier = SubstrateHierarchy::build(&host, &DEEP);
    let mut dl = Deadline::unlimited();
    let mut rstats = SearchStats::default();
    match hier.refine(&problem, &mut dl, &mut rstats) {
        Refinement::TimedOut => return Err(TestCaseError::fail("unlimited refine timed out")),
        Refinement::Infeasible => {
            prop_assert!(
                flat_sols.is_empty(),
                "refinement pruned a feasible instance ({} solutions)",
                flat_sols.len()
            );
        }
        Refinement::Restricted(allowed) => {
            prop_assert_eq!(allowed.len(), query.node_count());
            for m in &flat_sols {
                for v in query.node_ids() {
                    prop_assert!(
                        allowed[v.index()].contains(m.get(v)),
                        "refinement dropped host {:?} from query {:?}'s domain \
                         although a flat solution uses it",
                        m.get(v),
                        v
                    );
                }
            }
        }
    }

    // Property 3: hierarchical runs return the identical solution set.
    let mut algos = vec![Algorithm::Ecf];
    for threads in steal_threads() {
        algos.push(Algorithm::ParallelEcf { threads });
    }
    for algorithm in algos {
        let opts = Options {
            algorithm,
            mode: SearchMode::All,
            hierarchy: Some(DEEP),
            ..Options::default()
        };
        let hres = Engine::run(&problem, &opts).unwrap();
        let hier_sols = match hres.outcome {
            Outcome::Complete(m) => sorted_mappings(m),
            other => {
                return Err(TestCaseError::fail(format!(
                    "hierarchical {algorithm:?} must be Complete, got {other:?}"
                )))
            }
        };
        prop_assert_eq!(
            &hier_sols,
            &flat_sols,
            "hierarchical {:?} diverges from flat ECF",
            algorithm
        );
        // The hierarchical run must report its refinement telemetry.
        prop_assert!(hres.stats.hier_levels >= 1);
        prop_assert!(hres.stats.hier_expanded_cells <= hres.stats.hier_full_cells);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Undirected instances: conservative bounds, no false prunes, and
    /// flat/hierarchical solution-set identity.
    #[test]
    fn hierarchy_equivalent_undirected(
        nr in 4usize..12,
        cpus in proptest::collection::vec(1u32..8, 1..6),
        hedges in proptest::collection::vec((0u32..12, 0u32..12, 0u32..50), 2..28),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        cpu_min in 0u32..6,
        thr in 5u32..45,
    ) {
        check_equivalence(Direction::Undirected, nr, &cpus, &hedges, nq, &qedges, cpu_min, thr)?;
    }

    /// Directed instances exercise the in/out-arc sides of the
    /// refinement's arc-consistency loop.
    #[test]
    fn hierarchy_equivalent_directed(
        nr in 4usize..12,
        cpus in proptest::collection::vec(1u32..8, 1..6),
        hedges in proptest::collection::vec((0u32..12, 0u32..12, 0u32..50), 2..28),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        cpu_min in 0u32..6,
        thr in 5u32..45,
    ) {
        check_equivalence(Direction::Directed, nr, &cpus, &hedges, nq, &qedges, cpu_min, thr)?;
    }
}

/// An always-infeasible node constraint must be recognized at the
/// coarsest level: the refinement prunes every domain without ever
/// touching the concrete filter, and the engine classifies the run as
/// definitively infeasible (`Complete([])`), not `Inconclusive`.
#[test]
fn impossible_constraint_pruned_at_coarsest_level() {
    let host = topogen::power_law(
        &topogen::PowerLawParams::paper_default(256),
        &mut topogen::rng(9),
    );
    let mut query = Network::new(Direction::Undirected);
    let a = query.add_node("q0");
    let b = query.add_node("q1");
    query.add_edge(a, b);
    let problem = Problem::new(&query, &host, "rNode.cpu >= 1000.0").unwrap();

    let opts = Options {
        algorithm: Algorithm::Ecf,
        mode: SearchMode::All,
        hierarchy: Some(HierarchySpec::default()),
        ..Options::default()
    };
    let res = Engine::run(&problem, &opts).unwrap();
    assert_eq!(res.outcome, Outcome::Complete(vec![]));
    // Nothing expanded: the prune happened in the abstract.
    assert_eq!(res.stats.hier_expanded_cells, 0);
    assert!(res.stats.hier_pruned > 0);
    assert_eq!(res.stats.filter_cells, 0);
}

/// Scale soak (nightly): on a ≥10⁵-node power-law substrate with a
/// planted hot region, the hierarchical run answers a region-pinned
/// query while expanding only a sliver of the full filter matrix.
/// Gated behind `NETEMBED_HIERARCHY_FULL=1` like the chaos soak.
#[test]
fn hierarchy_soak_100k_power_law() {
    if std::env::var("NETEMBED_HIERARCHY_FULL").is_err() {
        eprintln!("skipping 100k soak; set NETEMBED_HIERARCHY_FULL=1 to run");
        return;
    }
    let params = topogen::PowerLawParams {
        n: 100_000,
        m: 2,
        hot_nodes: 48,
    };
    let host = topogen::power_law(&params, &mut topogen::rng(42));
    assert!(host.node_count() >= 100_000);

    // A 3-node path pinned to the hot region.
    let mut query = Network::new(Direction::Undirected);
    let a = query.add_node("q0");
    let b = query.add_node("q1");
    let c = query.add_node("q2");
    query.add_edge(a, b);
    query.add_edge(b, c);
    let problem = Problem::new(&query, &host, "rNode.region == \"hot\"").unwrap();

    let opts = Options {
        algorithm: Algorithm::Ecf,
        mode: SearchMode::First,
        timeout: Some(std::time::Duration::from_secs(60)),
        hierarchy: Some(HierarchySpec::default()),
        ..Options::default()
    };
    let res = Engine::run(&problem, &opts).unwrap();
    assert!(
        res.outcome.found_any(),
        "hierarchical run must embed the hot-region path, got {:?}",
        res.outcome
    );
    // Every mapped host node really is hot (first `hot_nodes` ids).
    let m = &res.outcome.mappings()[0];
    for v in query.node_ids() {
        assert!(m.get(v).index() < params.hot_nodes);
    }
    // Scale acceptance: expanded cells are a sliver of the full matrix.
    assert!(res.stats.hier_full_cells >= 300_000);
    assert!(
        res.stats.hier_expanded_cells * 10 <= res.stats.hier_full_cells,
        "expanded {} of {} cells — more than 10%",
        res.stats.hier_expanded_cells,
        res.stats.hier_full_cells
    );
}

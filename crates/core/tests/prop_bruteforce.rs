//! Brute-force oracle: on tiny random instances, enumerate *every*
//! injective assignment, keep those that pass the independent verifier,
//! and demand that ECF / LNS / parallel ECF return exactly that set.
//! This pins the algorithms to the problem definition (§IV) with no
//! shared code between oracle and search beyond the verifier.

use netembed::{check_mapping, Algorithm, Engine, Mapping, Options, Problem, SearchMode};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;

/// Random undirected host with delay attributes.
fn arb_instance() -> impl Strategy<Value = (Network, Network, String)> {
    (3usize..7)
        .prop_flat_map(|nr| (Just(nr), 2..nr.min(5)))
        .prop_flat_map(|(nr, nq)| {
            let host_edges = proptest::collection::vec(
                ((0..nr as u32), (0..nr as u32), 0u32..100),
                0..nr * (nr - 1) / 2 + 3,
            );
            let query_edges =
                proptest::collection::vec(((0..nq as u32), (0..nq as u32)), 0..nq * 2);
            let threshold = 10u32..90;
            (Just(nr), Just(nq), host_edges, query_edges, threshold).prop_map(
                |(nr, nq, hedges, qedges, thr)| {
                    let mut host = Network::new(Direction::Undirected);
                    for i in 0..nr {
                        host.add_node(format!("h{i}"));
                    }
                    for (u, v, d) in hedges {
                        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
                        if u != v && !host.has_edge(u, v) {
                            let e = host.add_edge(u, v);
                            host.set_edge_attr(e, "d", d as f64);
                        }
                    }
                    let mut query = Network::new(Direction::Undirected);
                    for i in 0..nq {
                        query.add_node(format!("q{i}"));
                    }
                    for (u, v) in qedges {
                        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
                        if u != v && !query.has_edge(u, v) {
                            query.add_edge(u, v);
                        }
                    }
                    let constraint = format!("rEdge.d <= {thr}.0");
                    (host, query, constraint)
                },
            )
        })
}

/// All injective assignments of `nq` query nodes to `nr` host nodes.
fn all_injective(nq: usize, nr: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(nq);
    let mut used = vec![false; nr];
    fn rec(
        nq: usize,
        nr: usize,
        current: &mut Vec<NodeId>,
        used: &mut [bool],
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if current.len() == nq {
            out.push(current.clone());
            return;
        }
        for r in 0..nr {
            if !used[r] {
                used[r] = true;
                current.push(NodeId(r as u32));
                rec(nq, nr, current, used, out);
                current.pop();
                used[r] = false;
            }
        }
    }
    rec(nq, nr, &mut current, &mut used, &mut out);
    out
}

fn sorted(mut v: Vec<Mapping>) -> Vec<Mapping> {
    v.sort_by_key(|m| m.as_slice().to_vec());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_equals_bruteforce((host, query, constraint) in arb_instance()) {
        let problem = Problem::new(&query, &host, &constraint).unwrap();

        // Oracle: filter all injective assignments through the verifier.
        let oracle: Vec<Mapping> = all_injective(query.node_count(), host.node_count())
            .into_iter()
            .map(Mapping::new)
            .filter(|m| check_mapping(&problem, m).is_ok())
            .collect();
        let oracle = sorted(oracle);

        let engine = Engine::new(&host);
        for algorithm in [Algorithm::Ecf, Algorithm::Lns, Algorithm::ParallelEcf { threads: 2 }] {
            let got = engine
                .embed(&query, &constraint, &Options {
                    algorithm,
                    mode: SearchMode::All,
                    ..Options::default()
                })
                .unwrap();
            let got = sorted(got.mappings);
            prop_assert_eq!(
                &got, &oracle,
                "{:?} disagrees with brute force on nq={} nr={} constraint={}",
                algorithm, query.node_count(), host.node_count(), constraint
            );
        }

        // RWB: feasibility agreement + membership.
        let rwb = engine
            .embed(&query, &constraint, &Options {
                algorithm: Algorithm::Rwb,
                mode: SearchMode::First,
                ..Options::default()
            })
            .unwrap();
        prop_assert_eq!(rwb.mappings.is_empty(), oracle.is_empty());
        if let Some(m) = rwb.mappings.first() {
            prop_assert!(oracle.contains(m));
        }
    }

    #[test]
    fn directed_search_equals_bruteforce(
        nr in 3usize..6,
        nq in 2usize..4,
        hedges in proptest::collection::vec(((0u32..6), (0u32..6)), 1..14),
        qedges in proptest::collection::vec(((0u32..4), (0u32..4)), 1..5),
    ) {
        let mut host = Network::new(Direction::Directed);
        for i in 0..nr {
            host.add_node(format!("h{i}"));
        }
        for (u, v) in hedges {
            let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
            if u != v && !host.has_edge(u, v) {
                host.add_edge(u, v);
            }
        }
        let mut query = Network::new(Direction::Directed);
        for i in 0..nq {
            query.add_node(format!("q{i}"));
        }
        for (u, v) in qedges {
            let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
            if u != v && !query.has_edge(u, v) {
                query.add_edge(u, v);
            }
        }
        let problem = Problem::new(&query, &host, "true").unwrap();
        let oracle: Vec<Mapping> = all_injective(nq, nr)
            .into_iter()
            .map(Mapping::new)
            .filter(|m| check_mapping(&problem, m).is_ok())
            .collect();
        let oracle = sorted(oracle);

        let engine = Engine::new(&host);
        for algorithm in [Algorithm::Ecf, Algorithm::Lns] {
            let got = sorted(
                engine
                    .embed(&query, "true", &Options {
                        algorithm,
                        mode: SearchMode::All,
                        ..Options::default()
                    })
                    .unwrap()
                    .mappings,
            );
            prop_assert_eq!(&got, &oracle, "{:?} differs on a directed instance", algorithm);
        }
    }
}

//! Property tests for the ECF filter matrix (§V-A): symmetry of cell
//! contents, consistency of the base candidate sets, and the exactness of
//! the filter against direct constraint evaluation.

use netembed::{Deadline, FilterMatrix, Problem, SearchStats};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;

fn build_nets(
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
) -> (Network, Network) {
    let mut host = Network::new(Direction::Undirected);
    for i in 0..nr {
        host.add_node(format!("h{i}"));
    }
    for &(u, v, d) in hedges {
        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
        if u != v && !host.has_edge(u, v) {
            let e = host.add_edge(u, v);
            host.set_edge_attr(e, "d", d as f64);
        }
    }
    let mut query = Network::new(Direction::Undirected);
    for i in 0..nq {
        query.add_node(format!("q{i}"));
    }
    for &(u, v) in qedges {
        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
        if u != v && !query.has_edge(u, v) {
            query.add_edge(u, v);
        }
    }
    (host, query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Undirected symmetry: r′ ∈ F[(v, r, v′)] ⇔ r ∈ F[(v′, r′, v)].
    #[test]
    fn undirected_cells_are_symmetric(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        let (host, query) = build_nets(nr, &hedges, nq, &qedges);
        prop_assume!(query.node_count() <= host.node_count());
        let constraint = format!("rEdge.d <= {thr}.0");
        let problem = Problem::new(&query, &host, &constraint).unwrap();
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let filter = FilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();

        for qe in query.edge_refs() {
            let (a, b) = (qe.src, qe.dst);
            for r in host.node_ids() {
                for rp in filter.fwd_cell(a, r, b) {
                    let back = filter.fwd_cell(b, *rp, a);
                    prop_assert!(
                        back.binary_search(&r).is_ok(),
                        "cell symmetry broken: {r} in F[({b},{rp},{a})] missing"
                    );
                }
            }
        }
    }

    /// Exactness: r′ ∈ F[(v, r, v′)] exactly when the host edge (r, r′)
    /// exists and the constraint accepts the oriented pair.
    #[test]
    fn cells_match_direct_evaluation(
        nr in 3usize..7,
        hedges in proptest::collection::vec((0u32..7, 0u32..7, 0u32..50), 1..16),
        thr in 5u32..45,
    ) {
        let (host, query) = build_nets(nr, &hedges, 2, &[(0, 1)]);
        let constraint = format!("rEdge.d <= {thr}.0");
        let problem = Problem::new(&query, &host, &constraint).unwrap();
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let filter = FilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();
        let (a, b) = (NodeId(0), NodeId(1));
        let qe = netgraph::EdgeId(0);
        for r in host.node_ids() {
            for rp in host.node_ids() {
                if r == rp {
                    continue;
                }
                let in_cell = filter.fwd_cell(a, r, b).binary_search(&rp).is_ok();
                let direct = problem
                    .pair_ok(qe, a, b, r, rp)
                    .unwrap();
                prop_assert_eq!(
                    in_cell, direct,
                    "cell/direct disagree for ({}, {})", r, rp
                );
            }
        }
    }

    /// Base candidate sets: a host node is a base candidate for a query
    /// node iff it appears in some cell anchored at that node — and the
    /// Lemma-1 count matches the set size.
    #[test]
    fn base_sets_consistent_with_cells(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..4,
        qedges in proptest::collection::vec((0u32..4, 0u32..4), 1..6),
        thr in 5u32..45,
    ) {
        let (host, query) = build_nets(nr, &hedges, nq, &qedges);
        prop_assume!(query.node_count() <= host.node_count());
        let constraint = format!("rEdge.d <= {thr}.0");
        let problem = Problem::new(&query, &host, &constraint).unwrap();
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        let filter = FilterMatrix::build(&problem, &mut dl, &mut stats).unwrap();

        for v in query.node_ids() {
            prop_assert_eq!(filter.candidate_count(v), filter.base(v).len());
            if query.total_degree(v) == 0 {
                // Isolated node: everything is a candidate under an
                // edge-only constraint.
                prop_assert_eq!(filter.candidate_count(v), host.node_count());
                continue;
            }
            for r in host.node_ids() {
                let in_base = filter.base(v).contains(r);
                // In some cell anchored at (v, r)?
                let mut in_cell = false;
                for &(nb, _) in query.neighbors(v) {
                    if !filter.fwd_cell(v, r, nb).is_empty() {
                        in_cell = true;
                        break;
                    }
                }
                prop_assert_eq!(in_base, in_cell, "base/cell disagree at ({}, {})", v, r);
            }
        }
    }
}

//! Layout-equivalence property tests: the CSR-arena [`FilterMatrix`] and
//! the seed's hash-map reference (`filter::reference::HashFilterMatrix`)
//! must agree cell-for-cell on random problems, and the allocation-free
//! DFS over the CSR filter must enumerate exactly the solution set of the
//! reference search — the two layouts are interchangeable up to speed.
//!
//! The parallel build (`FilterMatrix::build_par`) is additionally proven
//! *bitwise-identical* to the sequential build on random problems and
//! thread counts: `FilterMatrix`'s `PartialEq` compares the raw CSR
//! storage (pair slots, offset rows, candidate arena, bitset mirrors,
//! base sets), so equality means the layouts match word for word, and a
//! search over either filter takes exactly the same path.

use netembed::filter::reference::{self, HashFilterMatrix};
use netembed::order::{compute_order, predecessors};
use netembed::{CollectAll, Deadline, FilterMatrix, Mapping, NodeOrder, Problem, SearchStats};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;

/// Build a host/query pair from raw edge lists (self-loops and duplicate
/// edges are dropped; node indices wrap).
fn build_nets(
    dir: Direction,
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
) -> (Network, Network) {
    let mut host = Network::new(dir);
    for i in 0..nr {
        host.add_node(format!("h{i}"));
    }
    for &(u, v, d) in hedges {
        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
        if u != v && !host.has_edge(u, v) {
            let e = host.add_edge(u, v);
            host.set_edge_attr(e, "d", d as f64);
        }
    }
    let mut query = Network::new(dir);
    for i in 0..nq {
        query.add_node(format!("q{i}"));
    }
    for &(u, v) in qedges {
        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
        if u != v && !query.has_edge(u, v) {
            query.add_edge(u, v);
        }
    }
    (host, query)
}

/// Assert both layouts agree on every observable of the filter stage.
fn assert_filters_equal(
    query: &Network,
    host: &Network,
    csr: &FilterMatrix,
    href: &HashFilterMatrix,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(csr.cell_count(), href.cell_count());
    prop_assert_eq!(csr.entry_count(), href.entry_count());
    for v in query.node_ids() {
        prop_assert_eq!(csr.candidate_count(v), href.candidate_count(v));
        prop_assert_eq!(csr.base(v), href.base(v), "base set mismatch at {}", v);
    }
    for vj in query.node_ids() {
        for vi in query.node_ids() {
            for rj in host.node_ids() {
                prop_assert_eq!(
                    csr.fwd_cell(vj, rj, vi),
                    href.fwd_cell(vj, rj, vi),
                    "fwd cell ({}, {}, {})",
                    vj,
                    rj,
                    vi
                );
                prop_assert_eq!(
                    csr.rev_cell(vj, rj, vi),
                    href.rev_cell(vj, rj, vi),
                    "rev cell ({}, {}, {})",
                    vj,
                    rj,
                    vi
                );
                // The bitset mirror, when present, must agree with the
                // slice it mirrors.
                let view = csr.fwd_view(vj, rj, vi);
                if let Some(bits) = view.bits {
                    prop_assert_eq!(&bits.iter().collect::<Vec<_>>(), &view.slice);
                }
            }
        }
    }
    Ok(())
}

fn sorted_mappings(mut v: Vec<Mapping>) -> Vec<Mapping> {
    v.sort_by_key(|m| m.as_slice().to_vec());
    v
}

fn check_case(
    dir: Direction,
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
    thr: u32,
) -> Result<(), TestCaseError> {
    let (host, query) = build_nets(dir, nr, hedges, nq, qedges);
    prop_assume!(query.node_count() <= host.node_count());
    let constraint = format!("rEdge.d <= {thr}.0");
    let problem = Problem::new(&query, &host, &constraint).unwrap();

    let mut dl = Deadline::unlimited();
    let mut s_csr = SearchStats::default();
    let mut s_ref = SearchStats::default();
    let csr = FilterMatrix::build(&problem, &mut dl, &mut s_csr).unwrap();
    let href = HashFilterMatrix::build(&problem, &mut dl, &mut s_ref).unwrap();

    // Identical candidate sets and identical eval accounting.
    prop_assert_eq!(s_csr.constraint_evals, s_ref.constraint_evals);
    prop_assert_eq!(s_csr.filter_cells, s_ref.filter_cells);
    assert_filters_equal(&query, &host, &csr, &href)?;

    // The parallel build must reproduce the sequential CSR layout
    // *bitwise* (PartialEq compares the raw arena storage), along with
    // the eval accounting, at every thread count.
    for threads in [2usize, 3, 4] {
        let mut dl_par = Deadline::unlimited();
        let mut s_par = SearchStats::default();
        let par = FilterMatrix::build_par(&problem, threads, &mut dl_par, &mut s_par).unwrap();
        prop_assert!(
            par == csr,
            "parallel build diverges from sequential at {} threads",
            threads
        );
        prop_assert_eq!(s_par.constraint_evals, s_csr.constraint_evals);
        prop_assert_eq!(s_par.filter_cells, s_csr.filter_cells);
    }

    // Identical ECF solution sets, traversing in the same Lemma-1 order.
    let order = compute_order(&query, &csr, NodeOrder::AscendingCandidates);
    let preds = predecessors(&query, &order);
    let ref_sols = reference::search_all(&problem, &href, &order, &preds);

    let mut sink = CollectAll::default();
    let mut stats = SearchStats::default();
    let mut dl2 = Deadline::unlimited();
    netembed::ecf::search(
        &problem,
        NodeOrder::AscendingCandidates,
        &mut dl2,
        &mut sink,
        &mut stats,
    )
    .unwrap();

    prop_assert_eq!(
        sorted_mappings(sink.solutions),
        sorted_mappings(ref_sols),
        "solution sets diverge"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Undirected problems: cells, bases, stats, and full solution sets
    /// agree between the CSR and hash-map layouts.
    #[test]
    fn csr_equals_reference_undirected(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        check_case(Direction::Undirected, nr, &hedges, nq, &qedges, thr)?;
    }

    /// Directed problems exercise the reverse-cell table as well.
    #[test]
    fn csr_equals_reference_directed(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        check_case(Direction::Directed, nr, &hedges, nq, &qedges, thr)?;
    }

    /// Dense unconstrained problems push cells past the bitset-mirror
    /// threshold, exercising the word-level intersection path end to end.
    #[test]
    fn csr_equals_reference_dense(
        nr in 17usize..24,
        nq in 2usize..4,
        qedges in proptest::collection::vec((0u32..4, 0u32..4), 1..5),
    ) {
        // Complete host graph: every cell anchored anywhere is dense.
        let hedges: Vec<(u32, u32, u32)> = (0..nr as u32)
            .flat_map(|u| ((u + 1)..nr as u32).map(move |v| (u, v, 10)))
            .collect();
        check_case(Direction::Undirected, nr, &hedges, nq, &qedges, 45)?;
    }
}

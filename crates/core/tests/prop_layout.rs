//! Layout-equivalence property tests: the CSR-arena [`FilterMatrix`] and
//! the seed's hash-map reference (`filter::reference::HashFilterMatrix`)
//! must agree cell-for-cell on random problems, and the allocation-free
//! DFS over the CSR filter must enumerate exactly the solution set of the
//! reference search — the two layouts are interchangeable up to speed.
//!
//! The parallel build (`FilterMatrix::build_par`) is additionally proven
//! *bitwise-identical* to the sequential build on random problems and
//! thread counts: `FilterMatrix`'s `PartialEq` compares the raw CSR
//! storage (pair slots, offset rows, candidate arena, bitset mirrors,
//! base sets), so equality means the layouts match word for word, and a
//! search over either filter takes exactly the same path.
//!
//! The work-stealing parallel DFS is held to the same standard: at every
//! tested thread count (env-overridable via `NETEMBED_TEST_WORKERS`, so
//! CI can force a skewed 4-worker pool on a 1-core box) and under an
//! aggressive split policy it must enumerate exactly the sequential
//! solution multiset with identical `nodes_visited`/`prunes` totals, and
//! a mid-search cancel must stop it without inventing solutions.

use netembed::filter::reference::{self, HashFilterMatrix};
use netembed::order::{compute_order, predecessors};
use netembed::{
    parallel, CollectAll, Deadline, FilterMatrix, Mapping, NodeOrder, ParallelScratch, Problem,
    SearchStats, StealPolicy,
};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;

/// Thread counts exercised by the stealing properties. CI pins this to a
/// forced worker count (`NETEMBED_TEST_WORKERS=4`) so scheduler-skew
/// bugs surface even on single-core runners.
fn steal_threads() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![2, 3, 4],
    }
}

/// Build a host/query pair from raw edge lists (self-loops and duplicate
/// edges are dropped; node indices wrap).
fn build_nets(
    dir: Direction,
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
) -> (Network, Network) {
    let mut host = Network::new(dir);
    for i in 0..nr {
        host.add_node(format!("h{i}"));
    }
    for &(u, v, d) in hedges {
        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
        if u != v && !host.has_edge(u, v) {
            let e = host.add_edge(u, v);
            host.set_edge_attr(e, "d", d as f64);
        }
    }
    let mut query = Network::new(dir);
    for i in 0..nq {
        query.add_node(format!("q{i}"));
    }
    for &(u, v) in qedges {
        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
        if u != v && !query.has_edge(u, v) {
            query.add_edge(u, v);
        }
    }
    (host, query)
}

/// Assert both layouts agree on every observable of the filter stage.
fn assert_filters_equal(
    query: &Network,
    host: &Network,
    csr: &FilterMatrix,
    href: &HashFilterMatrix,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(csr.cell_count(), href.cell_count());
    prop_assert_eq!(csr.entry_count(), href.entry_count());
    for v in query.node_ids() {
        prop_assert_eq!(csr.candidate_count(v), href.candidate_count(v));
        prop_assert_eq!(csr.base(v), href.base(v), "base set mismatch at {}", v);
    }
    for vj in query.node_ids() {
        for vi in query.node_ids() {
            for rj in host.node_ids() {
                prop_assert_eq!(
                    csr.fwd_cell(vj, rj, vi),
                    href.fwd_cell(vj, rj, vi),
                    "fwd cell ({}, {}, {})",
                    vj,
                    rj,
                    vi
                );
                prop_assert_eq!(
                    csr.rev_cell(vj, rj, vi),
                    href.rev_cell(vj, rj, vi),
                    "rev cell ({}, {}, {})",
                    vj,
                    rj,
                    vi
                );
                // The bitset mirror, when present, must agree with the
                // slice it mirrors.
                let view = csr.fwd_view(vj, rj, vi);
                if let Some(bits) = view.bits {
                    prop_assert_eq!(&bits.iter().collect::<Vec<_>>(), &view.slice);
                }
            }
        }
    }
    Ok(())
}

fn sorted_mappings(mut v: Vec<Mapping>) -> Vec<Mapping> {
    v.sort_by_key(|m| m.as_slice().to_vec());
    v
}

fn check_case(
    dir: Direction,
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
    thr: u32,
) -> Result<(), TestCaseError> {
    let (host, query) = build_nets(dir, nr, hedges, nq, qedges);
    prop_assume!(query.node_count() <= host.node_count());
    let constraint = format!("rEdge.d <= {thr}.0");
    let problem = Problem::new(&query, &host, &constraint).unwrap();

    let mut dl = Deadline::unlimited();
    let mut s_csr = SearchStats::default();
    let mut s_ref = SearchStats::default();
    let csr = FilterMatrix::build(&problem, &mut dl, &mut s_csr).unwrap();
    let href = HashFilterMatrix::build(&problem, &mut dl, &mut s_ref).unwrap();

    // Identical candidate sets and identical eval accounting.
    prop_assert_eq!(s_csr.constraint_evals, s_ref.constraint_evals);
    prop_assert_eq!(s_csr.filter_cells, s_ref.filter_cells);
    assert_filters_equal(&query, &host, &csr, &href)?;

    // The parallel build must reproduce the sequential CSR layout
    // *bitwise* (PartialEq compares the raw arena storage), along with
    // the eval accounting, at every thread count.
    for threads in [2usize, 3, 4] {
        let mut dl_par = Deadline::unlimited();
        let mut s_par = SearchStats::default();
        let par = FilterMatrix::build_par(&problem, threads, &mut dl_par, &mut s_par).unwrap();
        prop_assert!(
            par == csr,
            "parallel build diverges from sequential at {} threads",
            threads
        );
        prop_assert_eq!(s_par.constraint_evals, s_csr.constraint_evals);
        prop_assert_eq!(s_par.filter_cells, s_csr.filter_cells);
    }

    // Identical ECF solution sets, traversing in the same Lemma-1 order.
    let order = compute_order(&query, &csr, NodeOrder::AscendingCandidates);
    let preds = predecessors(&query, &order);
    let ref_sols = reference::search_all(&problem, &href, &order, &preds);

    let mut sink = CollectAll::default();
    let mut stats = SearchStats::default();
    let mut dl2 = Deadline::unlimited();
    netembed::ecf::search(
        &problem,
        NodeOrder::AscendingCandidates,
        &mut dl2,
        &mut sink,
        &mut stats,
    )
    .unwrap();

    prop_assert_eq!(
        sorted_mappings(sink.solutions),
        sorted_mappings(ref_sols),
        "solution sets diverge"
    );
    Ok(())
}

/// Work-stealing determinism: the parallel DFS under maximal task churn
/// must reproduce the sequential ECF run exactly — same solution
/// multiset, same visited/prune totals, same build counters.
fn check_steal_case(
    dir: Direction,
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
    thr: u32,
) -> Result<(), TestCaseError> {
    let (host, query) = build_nets(dir, nr, hedges, nq, qedges);
    prop_assume!(query.node_count() <= host.node_count());
    let constraint = format!("rEdge.d <= {thr}.0");
    let problem = Problem::new(&query, &host, &constraint).unwrap();

    let mut dl = Deadline::unlimited();
    let mut bstats = SearchStats::default();
    let filter = FilterMatrix::build(&problem, &mut dl, &mut bstats).unwrap();

    let mut sink = CollectAll::default();
    let mut seq_stats = SearchStats::default();
    let mut dl_seq = Deadline::unlimited();
    netembed::ecf::search_prebuilt(
        &problem,
        &filter,
        NodeOrder::AscendingCandidates,
        &mut dl_seq,
        &mut sink,
        &mut seq_stats,
    );
    let seq = sorted_mappings(sink.solutions);

    for threads in steal_threads() {
        let mut scratch = ParallelScratch::new();
        let mut stats = SearchStats::default();
        let mut dl_par = Deadline::unlimited();
        let (sols, end) = parallel::search_prebuilt_with_policy(
            &problem,
            &filter,
            threads,
            None,
            NodeOrder::AscendingCandidates,
            &mut dl_par,
            &mut stats,
            &mut scratch,
            StealPolicy::aggressive(),
        );
        prop_assert_eq!(
            end,
            netembed::ecf::SearchEnd::Exhausted,
            "threads {}",
            threads
        );
        prop_assert_eq!(
            sorted_mappings(sols),
            seq.clone(),
            "stealing solution set diverges at {} threads",
            threads
        );
        // Splitting moves subtrees between workers; it must never
        // duplicate or drop one.
        prop_assert_eq!(stats.nodes_visited, seq_stats.nodes_visited);
        prop_assert_eq!(stats.prunes, seq_stats.prunes);
        prop_assert_eq!(stats.filter_cells, seq_stats.filter_cells);

        // Mid-search deadline cancel, deterministically triggered: a
        // solution limit below the full count makes the first worker to
        // reach it cancel the (scoped) pool deadline while siblings are
        // still searching — possibly with stolen tasks queued. The pool
        // must drain and stop: exactly `limit` solutions, every one a
        // member of the true set, and no timeout reported (the limit,
        // not the clock, stopped it).
        if seq.len() >= 2 {
            let k = 1 + seq.len() / 2;
            let mut limit_dl = Deadline::unlimited();
            let mut lstats = SearchStats::default();
            let (lsols, lend) = parallel::search_prebuilt_with_policy(
                &problem,
                &filter,
                threads,
                Some(k),
                NodeOrder::AscendingCandidates,
                &mut limit_dl,
                &mut lstats,
                &mut scratch,
                StealPolicy::aggressive(),
            );
            prop_assert_eq!(lend, netembed::ecf::SearchEnd::SinkStop);
            prop_assert_eq!(lsols.len(), k);
            prop_assert!(!lstats.timed_out, "limit stop misreported as timeout");
            prop_assert!(!limit_dl.check_now(), "pool cancel leaked to caller");
            for m in &lsols {
                prop_assert!(seq.contains(m), "limit run invented a solution");
            }
        }

        // Pre-cancelled caller deadline: the pool must refuse to start
        // (drain-at-entry) and report an honest timeout.
        let mut cancel_dl = Deadline::unlimited();
        cancel_dl.cancel();
        let mut cstats = SearchStats::default();
        let (csols, cend) = parallel::search_prebuilt_with_policy(
            &problem,
            &filter,
            threads,
            None,
            NodeOrder::AscendingCandidates,
            &mut cancel_dl,
            &mut cstats,
            &mut scratch,
            StealPolicy::aggressive(),
        );
        prop_assert_eq!(cend, netembed::ecf::SearchEnd::Timeout);
        prop_assert!(cstats.timed_out);
        prop_assert!(csols.is_empty());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Undirected problems: cells, bases, stats, and full solution sets
    /// agree between the CSR and hash-map layouts.
    #[test]
    fn csr_equals_reference_undirected(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        check_case(Direction::Undirected, nr, &hedges, nq, &qedges, thr)?;
    }

    /// Directed problems exercise the reverse-cell table as well.
    #[test]
    fn csr_equals_reference_directed(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        check_case(Direction::Directed, nr, &hedges, nq, &qedges, thr)?;
    }

    /// Dense unconstrained problems push cells past the bitset-mirror
    /// threshold, exercising the word-level intersection path end to end.
    #[test]
    fn csr_equals_reference_dense(
        nr in 17usize..24,
        nq in 2usize..4,
        qedges in proptest::collection::vec((0u32..4, 0u32..4), 1..5),
    ) {
        // Complete host graph: every cell anchored anywhere is dense.
        let hedges: Vec<(u32, u32, u32)> = (0..nr as u32)
            .flat_map(|u| ((u + 1)..nr as u32).map(move |v| (u, v, 10)))
            .collect();
        check_case(Direction::Undirected, nr, &hedges, nq, &qedges, 45)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work-stealing determinism on random undirected problems: the
    /// solution multiset and visit/prune totals match sequential ECF at
    /// every tested thread count, including under a mid-search cancel.
    #[test]
    fn stealing_matches_sequential_undirected(
        nr in 4usize..9,
        hedges in proptest::collection::vec((0u32..9, 0u32..9, 0u32..50), 4..24),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 10u32..45,
    ) {
        check_steal_case(Direction::Undirected, nr, &hedges, nq, &qedges, thr)?;
    }

    /// Directed problems route through the reverse-cell table under
    /// stealing as well.
    #[test]
    fn stealing_matches_sequential_directed(
        nr in 4usize..9,
        hedges in proptest::collection::vec((0u32..9, 0u32..9, 0u32..50), 4..24),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 10u32..45,
    ) {
        check_steal_case(Direction::Directed, nr, &hedges, nq, &qedges, thr)?;
    }
}

//! # graphml — network (de)serialization for NETEMBED
//!
//! The paper (§VI-A) adopts GraphML as the network description format for
//! both hosting and query networks, because it carries arbitrary typed
//! attributes on nodes and edges. This crate implements a reader and writer
//! for the subset of GraphML that NETEMBED uses:
//!
//! * `<key>` declarations with `for` ∈ {`node`, `edge`, `all`} and
//!   `attr.type` ∈ {`boolean`, `int`, `long`, `float`, `double`, `string`};
//! * one `<graph>` per document with `edgedefault` ∈ {`directed`,
//!   `undirected`};
//! * `<node>`/`<edge>` elements with `<data>` children and optional
//!   `<default>` values on keys.
//!
//! The XML layer is the built-in [`xml`] module — no external XML
//! dependency, as required by the reproduction's from-scratch policy.

pub mod xml;

use netgraph::{AttrValue, Direction, Network, NetworkBuilder, NodeId};
use rustc_hash_shim::FxHashMap;
use std::fmt;
use xml::{escape_attr, escape_text, XmlEvent, XmlParser};

// Tiny shim so this crate only depends on netgraph; netgraph re-exports its
// hasher through the std HashMap API surface we need.
mod rustc_hash_shim {
    pub type FxHashMap<K, V> = std::collections::HashMap<K, V>;
}

/// GraphML attribute types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmlType {
    /// `boolean`.
    Bool,
    /// `int`, `long`, `float`, or `double` — all carried as `f64`.
    Num,
    /// `string`.
    Str,
}

impl GmlType {
    fn parse(s: &str) -> Option<GmlType> {
        match s {
            "boolean" => Some(GmlType::Bool),
            "int" | "long" | "float" | "double" => Some(GmlType::Num),
            "string" => Some(GmlType::Str),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            GmlType::Bool => "boolean",
            GmlType::Num => "double",
            GmlType::Str => "string",
        }
    }
}

/// Which elements a key applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmlDomain {
    /// Nodes only.
    Node,
    /// Edges only.
    Edge,
    /// Both.
    All,
}

/// Errors from GraphML parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphmlError {
    /// Underlying XML was malformed.
    Xml(xml::XmlError),
    /// Structural violation of the GraphML schema subset.
    Schema(String),
    /// A `<data>` value failed to parse under its declared type.
    BadValue {
        /// Key id whose value failed.
        key: String,
        /// The raw text.
        value: String,
    },
    /// Graph-level error (duplicate node ids, bad endpoints, …).
    Graph(String),
}

impl fmt::Display for GraphmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphmlError::Xml(e) => write!(f, "{e}"),
            GraphmlError::Schema(m) => write!(f, "GraphML schema error: {m}"),
            GraphmlError::BadValue { key, value } => {
                write!(f, "bad value for key `{key}`: `{value}`")
            }
            GraphmlError::Graph(m) => write!(f, "graph error: {m}"),
        }
    }
}

impl std::error::Error for GraphmlError {}

impl From<xml::XmlError> for GraphmlError {
    fn from(e: xml::XmlError) -> Self {
        GraphmlError::Xml(e)
    }
}

#[derive(Debug, Clone)]
struct KeyDecl {
    name: String,
    domain: GmlDomain,
    ty: GmlType,
    default: Option<AttrValue>,
}

fn parse_value(ty: GmlType, text: &str, key: &str) -> Result<AttrValue, GraphmlError> {
    let text = text.trim();
    match ty {
        GmlType::Bool => match text {
            "true" | "1" => Ok(AttrValue::Bool(true)),
            "false" | "0" => Ok(AttrValue::Bool(false)),
            _ => Err(GraphmlError::BadValue {
                key: key.to_string(),
                value: text.to_string(),
            }),
        },
        GmlType::Num => {
            text.parse::<f64>()
                .map(AttrValue::Num)
                .map_err(|_| GraphmlError::BadValue {
                    key: key.to_string(),
                    value: text.to_string(),
                })
        }
        GmlType::Str => Ok(AttrValue::str(text)),
    }
}

/// Parse a GraphML document into a [`Network`].
///
/// The first `<graph>` element is read; any further graphs are rejected
/// (NETEMBED models exactly one network per document).
pub fn from_str(doc: &str) -> Result<Network, GraphmlError> {
    let mut parser = XmlParser::new(doc);
    let mut keys: FxHashMap<String, KeyDecl> = FxHashMap::default();
    let mut builder: Option<NetworkBuilder> = None;
    let mut node_ids: FxHashMap<String, NodeId> = FxHashMap::default();
    let mut graphs_seen = 0usize;

    // Element stack for structural validation.
    let mut stack: Vec<String> = Vec::new();
    // Pending <data> context: (element kind, element id).
    enum Target {
        Node(NodeId),
        Edge(netgraph::EdgeId),
    }
    let mut current: Option<Target> = None;
    let mut pending_data_key: Option<String> = None;
    let mut data_had_text = false;
    let mut pending_default_key: Option<String> = None;
    let mut last_key_id: Option<String> = None;

    while let Some(ev) = parser.next_event()? {
        match ev {
            XmlEvent::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let local = local_name(&name);
                match local {
                    "graphml" => {}
                    "key" => {
                        let id = get_attr(&attrs, "id")
                            .ok_or_else(|| GraphmlError::Schema("<key> missing id".into()))?;
                        let attr_name = get_attr(&attrs, "attr.name").unwrap_or_else(|| id.clone());
                        let domain = match get_attr(&attrs, "for").as_deref() {
                            Some("node") => GmlDomain::Node,
                            Some("edge") => GmlDomain::Edge,
                            Some("all") | None => GmlDomain::All,
                            Some(other) => {
                                return Err(GraphmlError::Schema(format!(
                                    "unsupported key domain `{other}`"
                                )))
                            }
                        };
                        let ty = match get_attr(&attrs, "attr.type") {
                            Some(t) => GmlType::parse(&t).ok_or_else(|| {
                                GraphmlError::Schema(format!("unsupported attr.type `{t}`"))
                            })?,
                            None => GmlType::Str,
                        };
                        keys.insert(
                            id.clone(),
                            KeyDecl {
                                name: attr_name,
                                domain,
                                ty,
                                default: None,
                            },
                        );
                        last_key_id = Some(id);
                    }
                    "default" => {
                        pending_default_key = last_key_id.clone();
                        if pending_default_key.is_none() {
                            return Err(GraphmlError::Schema("<default> outside of <key>".into()));
                        }
                    }
                    "graph" => {
                        graphs_seen += 1;
                        if graphs_seen > 1 {
                            return Err(GraphmlError::Schema(
                                "multiple <graph> elements are not supported".into(),
                            ));
                        }
                        let dir = match get_attr(&attrs, "edgedefault").as_deref() {
                            Some("directed") => Direction::Directed,
                            Some("undirected") | None => Direction::Undirected,
                            Some(other) => {
                                return Err(GraphmlError::Schema(format!(
                                    "unsupported edgedefault `{other}`"
                                )))
                            }
                        };
                        let mut b = NetworkBuilder::new(dir);
                        if let Some(id) = get_attr(&attrs, "id") {
                            b = b.name(id);
                        }
                        builder = Some(b);
                    }
                    "node" => {
                        let b = builder
                            .as_mut()
                            .ok_or_else(|| GraphmlError::Schema("<node> outside <graph>".into()))?;
                        let id = get_attr(&attrs, "id")
                            .ok_or_else(|| GraphmlError::Schema("<node> missing id".into()))?;
                        let nid = b
                            .add_node(id.clone())
                            .map_err(|e| GraphmlError::Graph(e.to_string()))?;
                        node_ids.insert(id, nid);
                        // Apply node-domain defaults.
                        for decl in keys.values() {
                            if matches!(decl.domain, GmlDomain::Node | GmlDomain::All) {
                                if let Some(d) = &decl.default {
                                    b.set_node_attr(nid, &decl.name, d.clone());
                                }
                            }
                        }
                        current = Some(Target::Node(nid));
                    }
                    "edge" => {
                        let b = builder
                            .as_mut()
                            .ok_or_else(|| GraphmlError::Schema("<edge> outside <graph>".into()))?;
                        let s = get_attr(&attrs, "source")
                            .ok_or_else(|| GraphmlError::Schema("<edge> missing source".into()))?;
                        let t = get_attr(&attrs, "target")
                            .ok_or_else(|| GraphmlError::Schema("<edge> missing target".into()))?;
                        let &sid = node_ids.get(&s).ok_or_else(|| {
                            GraphmlError::Graph(format!("edge source `{s}` not declared"))
                        })?;
                        let &tid = node_ids.get(&t).ok_or_else(|| {
                            GraphmlError::Graph(format!("edge target `{t}` not declared"))
                        })?;
                        let eid = b
                            .add_edge(sid, tid)
                            .map_err(|e| GraphmlError::Graph(e.to_string()))?;
                        for decl in keys.values() {
                            if matches!(decl.domain, GmlDomain::Edge | GmlDomain::All) {
                                if let Some(d) = &decl.default {
                                    b.set_edge_attr(eid, &decl.name, d.clone());
                                }
                            }
                        }
                        current = Some(Target::Edge(eid));
                    }
                    "data" => {
                        let key = get_attr(&attrs, "key")
                            .ok_or_else(|| GraphmlError::Schema("<data> missing key".into()))?;
                        if current.is_none() {
                            return Err(GraphmlError::Schema(
                                "<data> outside <node>/<edge>".into(),
                            ));
                        }
                        pending_data_key = Some(key);
                        data_had_text = false;
                    }
                    other => {
                        return Err(GraphmlError::Schema(format!(
                            "unexpected element <{other}>"
                        )))
                    }
                }
                if !self_closing {
                    stack.push(local.to_string());
                } else {
                    // Self-closing <node/> / <edge/> still terminate scope.
                    if local == "node" || local == "edge" {
                        current = None;
                    }
                    if local == "data" {
                        pending_data_key = None;
                    }
                }
            }
            XmlEvent::EndTag { name } => {
                let local = local_name(&name).to_string();
                match stack.pop() {
                    Some(open) if open == local => {}
                    Some(open) => {
                        return Err(GraphmlError::Schema(format!(
                            "mismatched tags: <{open}> closed by </{local}>"
                        )))
                    }
                    None => {
                        return Err(GraphmlError::Schema(format!(
                            "stray closing tag </{local}>"
                        )))
                    }
                }
                match local.as_str() {
                    "node" | "edge" => current = None,
                    "data" => {
                        // `<data key="k"></data>` carries an empty value.
                        if let (Some(kid), false) = (pending_data_key.take(), data_had_text) {
                            let decl = keys.get(&kid).ok_or_else(|| {
                                GraphmlError::Schema(format!(
                                    "<data> references undeclared key `{kid}`"
                                ))
                            })?;
                            let value = parse_value(decl.ty, "", &kid)?;
                            let b = builder.as_mut().expect("data implies graph");
                            match &current {
                                Some(Target::Node(n)) => b.set_node_attr(*n, &decl.name, value),
                                Some(Target::Edge(e)) => b.set_edge_attr(*e, &decl.name, value),
                                None => {}
                            }
                        }
                        pending_data_key = None;
                    }
                    "default" => pending_default_key = None,
                    "key" => last_key_id = None,
                    _ => {}
                }
            }
            XmlEvent::Text(text) => {
                if let Some(kid) = &pending_default_key {
                    let decl = keys.get_mut(kid).expect("validated above");
                    decl.default = Some(parse_value(decl.ty, &text, kid)?);
                } else if let Some(kid) = pending_data_key.clone() {
                    data_had_text = true;
                    let decl = keys.get(&kid).ok_or_else(|| {
                        GraphmlError::Schema(format!("<data> references undeclared key `{kid}`"))
                    })?;
                    let value = parse_value(decl.ty, &text, &kid)?;
                    let b = builder.as_mut().expect("data implies graph");
                    match &current {
                        Some(Target::Node(n)) => {
                            if decl.domain == GmlDomain::Edge {
                                return Err(GraphmlError::Schema(format!(
                                    "edge key `{kid}` used on a node"
                                )));
                            }
                            b.set_node_attr(*n, &decl.name, value);
                        }
                        Some(Target::Edge(e)) => {
                            if decl.domain == GmlDomain::Node {
                                return Err(GraphmlError::Schema(format!(
                                    "node key `{kid}` used on an edge"
                                )));
                            }
                            b.set_edge_attr(*e, &decl.name, value);
                        }
                        None => unreachable!("pending_data_key implies a target"),
                    }
                }
                // Other stray text (inside <graphml> etc.) is ignored.
            }
        }
    }
    if !stack.is_empty() {
        return Err(GraphmlError::Schema(format!(
            "unclosed element <{}>",
            stack.last().unwrap()
        )));
    }
    let builder = builder.ok_or_else(|| GraphmlError::Schema("no <graph> element".into()))?;
    Ok(builder.build())
}

fn get_attr(attrs: &[(String, String)], name: &str) -> Option<String> {
    attrs
        .iter()
        .find(|(k, _)| local_name(k) == name || k == name)
        .map(|(_, v)| v.clone())
}

fn local_name(name: &str) -> &str {
    match name.rfind(':') {
        Some(i) => &name[i + 1..],
        None => name,
    }
}

/// Serialize a [`Network`] to a GraphML document.
///
/// Keys are synthesized from the attribute usage in the network: for every
/// attribute name used on nodes a node-domain key is emitted, and likewise
/// for edges. The attribute *type* is taken from the first value observed;
/// if later values disagree the key is promoted to `string` and every value
/// is written in display form.
pub fn to_string(net: &Network) -> String {
    // Gather (name, domain) → type.
    let mut node_keys: Vec<(String, GmlType)> = Vec::new();
    let mut edge_keys: Vec<(String, GmlType)> = Vec::new();

    let record = |keys: &mut Vec<(String, GmlType)>, name: &str, v: &AttrValue| {
        let ty = match v {
            AttrValue::Bool(_) => GmlType::Bool,
            AttrValue::Num(_) => GmlType::Num,
            AttrValue::Str(_) => GmlType::Str,
        };
        match keys.iter_mut().find(|(n, _)| n == name) {
            Some((_, t)) => {
                if *t != ty {
                    *t = GmlType::Str;
                }
            }
            None => keys.push((name.to_string(), ty)),
        }
    };

    for n in net.node_ids() {
        for (aid, v) in net.node_attrs(n) {
            record(&mut node_keys, net.schema().name(aid), v);
        }
    }
    for e in net.edge_refs() {
        for (aid, v) in net.edge_attrs(e.id) {
            record(&mut edge_keys, net.schema().name(aid), v);
        }
    }

    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    for (i, (name, ty)) in node_keys.iter().enumerate() {
        out.push_str(&format!(
            "  <key id=\"dn{i}\" for=\"node\" attr.name=\"{}\" attr.type=\"{}\"/>\n",
            escape_attr(name),
            ty.name()
        ));
    }
    for (i, (name, ty)) in edge_keys.iter().enumerate() {
        out.push_str(&format!(
            "  <key id=\"de{i}\" for=\"edge\" attr.name=\"{}\" attr.type=\"{}\"/>\n",
            escape_attr(name),
            ty.name()
        ));
    }
    let edgedefault = if net.is_undirected() {
        "undirected"
    } else {
        "directed"
    };
    let gname = if net.name().is_empty() {
        "G"
    } else {
        net.name()
    };
    out.push_str(&format!(
        "  <graph id=\"{}\" edgedefault=\"{edgedefault}\">\n",
        escape_attr(gname)
    ));

    let key_idx = |keys: &[(String, GmlType)], name: &str| -> usize {
        keys.iter().position(|(n, _)| n == name).expect("recorded")
    };

    for n in net.node_ids() {
        let attrs: Vec<_> = net.node_attrs(n).collect();
        if attrs.is_empty() {
            out.push_str(&format!(
                "    <node id=\"{}\"/>\n",
                escape_attr(net.node_name(n))
            ));
        } else {
            out.push_str(&format!(
                "    <node id=\"{}\">\n",
                escape_attr(net.node_name(n))
            ));
            for (aid, v) in attrs {
                let name = net.schema().name(aid);
                let i = key_idx(&node_keys, name);
                out.push_str(&format!(
                    "      <data key=\"dn{i}\">{}</data>\n",
                    escape_text(&format_value(v, node_keys[i].1))
                ));
            }
            out.push_str("    </node>\n");
        }
    }
    for e in net.edge_refs() {
        let s = escape_attr(net.node_name(e.src));
        let t = escape_attr(net.node_name(e.dst));
        let attrs: Vec<_> = net.edge_attrs(e.id).collect();
        if attrs.is_empty() {
            out.push_str(&format!("    <edge source=\"{s}\" target=\"{t}\"/>\n"));
        } else {
            out.push_str(&format!("    <edge source=\"{s}\" target=\"{t}\">\n"));
            for (aid, v) in attrs {
                let name = net.schema().name(aid);
                let i = key_idx(&edge_keys, name);
                out.push_str(&format!(
                    "      <data key=\"de{i}\">{}</data>\n",
                    escape_text(&format_value(v, edge_keys[i].1))
                ));
            }
            out.push_str("    </edge>\n");
        }
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

fn format_value(v: &AttrValue, declared: GmlType) -> String {
    match (v, declared) {
        // Promoted-to-string keys write every value in display form.
        (_, GmlType::Str) => v.to_string(),
        (AttrValue::Num(x), _) => {
            // Use enough precision for f64 round-trip.
            format!("{x:?}")
        }
        (other, _) => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<?xml version="1.0"?>
<graphml>
  <key id="d0" for="node" attr.name="osType" attr.type="string"/>
  <key id="d1" for="edge" attr.name="avgDelay" attr.type="double"/>
  <key id="d2" for="node" attr.name="up" attr.type="boolean">
    <default>true</default>
  </key>
  <graph id="plab" edgedefault="undirected">
    <node id="n0"><data key="d0">linux-2.6</data></node>
    <node id="n1"/>
    <edge source="n0" target="n1"><data key="d1">42.5</data></edge>
  </graph>
</graphml>"#;

    #[test]
    fn parse_basic_document() {
        let net = from_str(DOC).unwrap();
        assert_eq!(net.name(), "plab");
        assert!(net.is_undirected());
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.edge_count(), 1);
        let n0 = net.node_by_name("n0").unwrap();
        assert_eq!(
            net.node_attr_by_name(n0, "osType")
                .and_then(AttrValue::as_str),
            Some("linux-2.6")
        );
        // Default applied to both nodes.
        let n1 = net.node_by_name("n1").unwrap();
        assert_eq!(
            net.node_attr_by_name(n1, "up").and_then(AttrValue::as_bool),
            Some(true)
        );
        let e = net.find_edge(n0, n1).unwrap();
        assert_eq!(
            net.edge_attr_by_name(e, "avgDelay")
                .and_then(AttrValue::as_num),
            Some(42.5)
        );
    }

    #[test]
    fn directed_graph() {
        let doc = r#"<graphml><graph edgedefault="directed">
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"/>
        </graph></graphml>"#;
        let net = from_str(doc).unwrap();
        assert!(!net.is_undirected());
        let (a, b) = (
            net.node_by_name("a").unwrap(),
            net.node_by_name("b").unwrap(),
        );
        assert!(net.has_edge(a, b));
        assert!(!net.has_edge(b, a));
    }

    #[test]
    fn round_trip_preserves_structure_and_attrs() {
        let net = from_str(DOC).unwrap();
        let doc2 = to_string(&net);
        let net2 = from_str(&doc2).unwrap();
        assert_eq!(net.node_count(), net2.node_count());
        assert_eq!(net.edge_count(), net2.edge_count());
        for n in net.node_ids() {
            let name = net.node_name(n);
            let m = net2.node_by_name(name).unwrap();
            for (aid, v) in net.node_attrs(n) {
                let aname = net.schema().name(aid);
                assert_eq!(net2.node_attr_by_name(m, aname), Some(v), "attr {aname}");
            }
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(matches!(
            from_str("<graphml></graphml>"),
            Err(GraphmlError::Schema(_))
        ));
        assert!(matches!(
            from_str("<graphml><graph><node id=\"a\"/><node id=\"a\"/></graph></graphml>"),
            Err(GraphmlError::Graph(_))
        ));
        assert!(matches!(
            from_str("<graphml><graph><edge source=\"x\" target=\"y\"/></graph></graphml>"),
            Err(GraphmlError::Graph(_))
        ));
        assert!(matches!(
            from_str(
                r#"<graphml><key id="k" for="edge" attr.name="d" attr.type="double"/>
                   <graph><node id="a"><data key="k">1.0</data></node></graph></graphml>"#
            ),
            Err(GraphmlError::Schema(_))
        ));
        assert!(matches!(
            from_str(
                r#"<graphml><key id="k" for="node" attr.name="d" attr.type="double"/>
                   <graph><node id="a"><data key="k">oops</data></node></graph></graphml>"#
            ),
            Err(GraphmlError::BadValue { .. })
        ));
        // Mismatched tags.
        assert!(from_str("<graphml><graph><node id=\"a\"></graph></graphml>").is_err());
        // Two graphs.
        assert!(from_str("<graphml><graph></graph><graph></graph></graphml>").is_err());
    }

    #[test]
    fn undeclared_data_key_rejected() {
        let doc = r#"<graphml><graph>
            <node id="a"><data key="nope">1</data></node>
        </graph></graphml>"#;
        assert!(matches!(from_str(doc), Err(GraphmlError::Schema(_))));
    }

    #[test]
    fn namespaced_document_accepted() {
        let doc = r#"<g:graphml xmlns:g="http://graphml.graphdrawing.org/xmlns">
            <g:graph g:id="x" edgedefault="undirected">
              <g:node g:id="a"/><g:node g:id="b"/>
              <g:edge source="a" target="b"/>
            </g:graph></g:graphml>"#;
        let net = from_str(doc).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.edge_count(), 1);
    }

    #[test]
    fn float_precision_round_trips() {
        let mut b = NetworkBuilder::new(Direction::Undirected);
        let a = b.add_node("a").unwrap();
        let c = b.add_node("b").unwrap();
        b.add_edge_with(a, c, &[("d", AttrValue::Num(0.1 + 0.2))])
            .unwrap();
        let net = b.build();
        let net2 = from_str(&to_string(&net)).unwrap();
        let e = net2.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            net2.edge_attr_by_name(e, "d").and_then(AttrValue::as_num),
            Some(0.1 + 0.2)
        );
    }
}

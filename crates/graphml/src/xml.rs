//! A minimal, dependency-free XML pull parser.
//!
//! GraphML documents (§VI-A of the paper) use a small, regular subset of
//! XML: declarations, comments, elements with attributes, and character
//! data. This tokenizer supports exactly that subset plus CDATA sections and
//! the five predefined entities. It does not support DTDs, processing
//! instructions beyond the XML declaration, or namespaces (namespace
//! prefixes are preserved verbatim in names).

use std::fmt;

/// One XML event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" …>`; `self_closing` is true for `<name … />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// True for self-closing tags.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
    },
    /// Character data between tags (entity-decoded, never empty).
    Text(String),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the document where the error was detected.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Pull parser over a complete document string.
pub struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlParser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), XmlError> {
        let hay = &self.input[self.pos..];
        match find_sub(hay, pat.as_bytes()) {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{pat}`"))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = &self.input[start..self.pos];
                self.pos += 1;
                return decode_entities(raw).map_err(|m| XmlError {
                    offset: start,
                    message: m,
                });
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Next event, or `None` at end of document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<!--") {
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<?") {
                    self.skip_until("?>")?;
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    let start = self.pos + "<![CDATA[".len();
                    let hay = &self.input[start..];
                    let end = find_sub(hay, b"]]>")
                        .ok_or_else(|| self.err("unterminated CDATA section"))?;
                    let text = String::from_utf8_lossy(&hay[..end]).into_owned();
                    self.pos = start + end + 3;
                    if text.is_empty() {
                        continue;
                    }
                    return Ok(Some(XmlEvent::Text(text)));
                }
                if self.starts_with("<!") {
                    // DOCTYPE or similar declaration — skip to closing '>'.
                    self.skip_until(">")?;
                    continue;
                }
                if self.starts_with("</") {
                    self.pos += 2;
                    self.skip_ws();
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after closing tag name"));
                    }
                    self.pos += 1;
                    return Ok(Some(XmlEvent::EndTag { name }));
                }
                // Start tag.
                self.pos += 1;
                let name = self.read_name()?;
                let mut attrs = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.pos += 1;
                            return Ok(Some(XmlEvent::StartTag {
                                name,
                                attrs,
                                self_closing: false,
                            }));
                        }
                        Some(b'/') => {
                            self.pos += 1;
                            if self.peek() != Some(b'>') {
                                return Err(self.err("expected `>` after `/`"));
                            }
                            self.pos += 1;
                            return Ok(Some(XmlEvent::StartTag {
                                name,
                                attrs,
                                self_closing: true,
                            }));
                        }
                        Some(_) => {
                            let aname = self.read_name()?;
                            self.skip_ws();
                            if self.peek() != Some(b'=') {
                                return Err(self.err("expected `=` in attribute"));
                            }
                            self.pos += 1;
                            self.skip_ws();
                            let value = self.read_attr_value()?;
                            attrs.push((aname, value));
                        }
                        None => return Err(self.err("unterminated start tag")),
                    }
                }
            }
            // Character data up to the next '<'.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            let text = decode_entities(raw).map_err(|m| XmlError {
                offset: start,
                message: m,
            })?;
            if text.trim().is_empty() {
                continue;
            }
            return Ok(Some(XmlEvent::Text(text)));
        }
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (0..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

/// Decode the five predefined entities plus numeric character references.
fn decode_entities(raw: &[u8]) -> Result<String, String> {
    let s = String::from_utf8_lossy(raw);
    if !s.contains('&') {
        return Ok(s.into_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s.as_ref();
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        let ent = &rest[1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad numeric entity `&{ent};`"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..]
                    .parse()
                    .map_err(|_| format!("bad numeric entity `&{ent};`"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ => return Err(format!("unknown entity `&{ent};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape text for use inside an XML text node.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape text for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(doc: &str) -> Vec<XmlEvent> {
        let mut p = XmlParser::new(doc);
        let mut out = Vec::new();
        while let Some(e) = p.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn basic_document() {
        let evs = events(r#"<?xml version="1.0"?><a x="1"><b/>hi</a>"#);
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartTag {
                    name: "a".into(),
                    attrs: vec![("x".into(), "1".into())],
                    self_closing: false
                },
                XmlEvent::StartTag {
                    name: "b".into(),
                    attrs: vec![],
                    self_closing: true
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndTag { name: "a".into() },
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let evs = events("<a>\n  <!-- note -->\n  <b></b>\n</a>");
        assert_eq!(evs.len(), 4);
    }

    #[test]
    fn entity_decoding() {
        let evs = events(r#"<a k="&lt;&amp;&quot;">x &gt; y &#65;&#x42;</a>"#);
        match &evs[0] {
            XmlEvent::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "<&\""),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("x > y AB".into()));
    }

    #[test]
    fn cdata_passthrough() {
        let evs = events("<a><![CDATA[1 < 2 && 3]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("1 < 2 && 3".into()));
    }

    #[test]
    fn single_quoted_attrs_and_doctype() {
        let evs = events("<!DOCTYPE graphml><g id='q'/>");
        assert_eq!(
            evs[0],
            XmlEvent::StartTag {
                name: "g".into(),
                attrs: vec![("id".into(), "q".into())],
                self_closing: true
            }
        );
    }

    #[test]
    fn errors_reported() {
        let mut p = XmlParser::new("<a x=>");
        assert!(p.next_event().is_err());
        let mut p = XmlParser::new("<a>&bogus;</a>");
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
        let mut p = XmlParser::new("<!-- never closed");
        assert!(p.next_event().is_err());
    }

    #[test]
    fn escape_round_trip() {
        let nasty = r#"a<b&c>"d'"#;
        let doc = format!("<t k=\"{}\">{}</t>", escape_attr(nasty), escape_text(nasty));
        let evs = events(&doc);
        match &evs[0] {
            XmlEvent::StartTag { attrs, .. } => assert_eq!(attrs[0].1, nasty),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text(nasty.into()));
    }

    #[test]
    fn namespace_prefix_preserved() {
        let evs = events("<g:node g:id=\"n0\"/>");
        match &evs[0] {
            XmlEvent::StartTag { name, attrs, .. } => {
                assert_eq!(name, "g:node");
                assert_eq!(attrs[0].0, "g:id");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

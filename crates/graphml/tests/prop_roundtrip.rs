//! Property test: GraphML serialization round-trips arbitrary networks.

use graphml::{from_str, to_string};
use netgraph::{AttrValue, Direction, Network, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum V {
    N(f64),
    B(bool),
    S(String),
}

fn arb_value() -> impl Strategy<Value = V> {
    prop_oneof![
        // Finite floats only: NaN does not round-trip by equality, and the
        // embedding service never produces NaN measurements.
        (-1e9f64..1e9f64).prop_map(V::N),
        any::<bool>().prop_map(V::B),
        "[a-zA-Z0-9 <>&\"_.-]{0,12}".prop_map(V::S),
    ]
}

fn to_attr(v: &V) -> AttrValue {
    match v {
        V::N(x) => AttrValue::Num(*x),
        V::B(b) => AttrValue::Bool(*b),
        V::S(s) => AttrValue::str(s.trim()), // data values are trimmed on parse
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn round_trip(
        n in 2usize..20,
        directed in any::<bool>(),
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..40),
        node_attrs in proptest::collection::vec((0u32..20, 0usize..3, arb_value()), 0..20),
        edge_attrs in proptest::collection::vec((any::<prop::sample::Index>(), 0usize..3, arb_value()), 0..20),
    ) {
        let dir = if directed { Direction::Directed } else { Direction::Undirected };
        let mut g = Network::new(dir);
        g.set_name("t");
        for i in 0..n {
            g.add_node(format!("n{i}"));
        }
        for (u, v) in edges {
            let (u, v) = (NodeId(u % n as u32), NodeId(v % n as u32));
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
        // Attribute names: a0, a1, a2 per kind. Using the same small name
        // pool across elements keeps types consistent per (name, domain)
        // only when values agree — so constrain each name to one value kind
        // by deriving the name from the kind.
        for (node, slot, v) in node_attrs {
            let node = NodeId(node % n as u32);
            let name = format!("n{}{}", slot, kind_tag(&v));
            g.set_node_attr(node, &name, to_attr(&v));
        }
        let ecount = g.edge_count();
        if ecount > 0 {
            for (ix, slot, v) in edge_attrs {
                let e = netgraph::EdgeId(ix.index(ecount) as u32);
                let name = format!("e{}{}", slot, kind_tag(&v));
                g.set_edge_attr(e, &name, to_attr(&v));
            }
        }

        let doc = to_string(&g);
        let g2 = from_str(&doc).unwrap();

        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        prop_assert_eq!(g.is_undirected(), g2.is_undirected());

        for node in g.node_ids() {
            let name = g.node_name(node);
            let m = g2.node_by_name(name).unwrap();
            for (aid, v) in g.node_attrs(node) {
                let aname = g.schema().name(aid);
                prop_assert_eq!(g2.node_attr_by_name(m, aname), Some(v), "node attr {}", aname);
            }
        }
        for e in g.edge_refs() {
            let s2 = g2.node_by_name(g.node_name(e.src)).unwrap();
            let t2 = g2.node_by_name(g.node_name(e.dst)).unwrap();
            let e2 = g2.find_edge(s2, t2).unwrap();
            for (aid, v) in g.edge_attrs(e.id) {
                let aname = g.schema().name(aid);
                prop_assert_eq!(g2.edge_attr_by_name(e2, aname), Some(v), "edge attr {}", aname);
            }
        }
    }
}

fn kind_tag(v: &V) -> &'static str {
    match v {
        V::N(_) => "num",
        V::B(_) => "bool",
        V::S(_) => "str",
    }
}

//! Ablation experiments for the design choices DESIGN.md calls out:
//! Lemma-1 ordering, the LNS memo cache (F̄ analogue), the parallel ECF
//! fan-out, and the two LNS heuristics.

use crate::common::{mean_ci, run_once, Config, Sample};
use netembed::lns::LnsConfig;
use netembed::{Algorithm, Engine, NodeOrder, Options, SearchMode};
use topogen::{
    assign_composite_windows, clique_query, composite_query, subgraph_query, CompositeSpec, Level,
    SubgraphParams, CLIQUE_CONSTRAINT,
};

/// `abl-order`: empirical Lemma 1 — ECF all-matches under four node
/// orderings. Ascending should visit the fewest permutation-tree nodes.
pub fn abl_order(cfg: &Config) {
    println!("# abl-order: ECF node-ordering ablation (Lemma 1)");
    println!("experiment,series,x,mean_ms,ci95_ms,n,nodes_visited_mean");
    let host = cfg.planetlab();
    let orders: [(&str, NodeOrder); 4] = [
        ("ascending", NodeOrder::AscendingCandidates),
        ("descending", NodeOrder::DescendingCandidates),
        ("input", NodeOrder::InputOrder),
        ("random", NodeOrder::Random(cfg.seed)),
    ];
    for n in [8usize, 16, 24, 32] {
        let queries: Vec<_> = (0..cfg.reps)
            .map(|r| {
                subgraph_query(
                    &host,
                    &SubgraphParams {
                        n,
                        edge_keep: 0.3,
                        slack: 0.05,
                    },
                    &mut topogen::rng(cfg.seed + 31 * n as u64 + r as u64),
                )
            })
            .collect();
        for (label, order) in orders {
            let mut samples = Vec::new();
            let mut visited = Vec::new();
            for wl in &queries {
                let engine = Engine::new(&host);
                let options = Options {
                    algorithm: Algorithm::Ecf,
                    mode: SearchMode::All,
                    timeout: Some(cfg.timeout),
                    order,
                    ..Options::default()
                };
                match engine.embed(&wl.query, &wl.constraint, &options) {
                    Ok(r) => {
                        samples.push(Sample {
                            ms: r.stats.elapsed.as_secs_f64() * 1e3,
                            timed_out: r.stats.timed_out,
                            solutions: r.stats.solutions,
                        });
                        visited.push(r.stats.nodes_visited as f64);
                    }
                    Err(e) => eprintln!("# error: {e}"),
                }
            }
            let (mean, ci) = mean_ci(&samples);
            let visited_mean = visited.iter().sum::<f64>() / visited.len().max(1) as f64;
            println!(
                "abl-order,{label},{n},{mean:.2},{ci:.2},{},{visited_mean:.0}",
                samples.len()
            );
        }
    }
}

/// `abl-negcache`: LNS with and without the constraint-evaluation memo
/// cache (the lazily-built analogue of the paper's F/F̄ matrices).
pub fn abl_negcache(cfg: &Config) {
    println!("# abl-negcache: LNS memo cache on/off (clique queries)");
    println!("experiment,series,x,mean_ms,ci95_ms,n,evals_mean");
    let host = cfg.planetlab();
    let max_k = cfg.scaled(10, 5);
    for k in 3..=max_k {
        let wl = clique_query(k, 10.0, 100.0);
        for (label, memo) in [("memo-on", true), ("memo-off", false)] {
            let mut samples = Vec::new();
            let mut evals = Vec::new();
            for _r in 0..cfg.reps {
                let engine = Engine::new(&host);
                let options = Options {
                    algorithm: Algorithm::Lns,
                    mode: SearchMode::First,
                    timeout: Some(cfg.timeout),
                    lns: LnsConfig {
                        memo_cache: memo,
                        ..LnsConfig::default()
                    },
                    ..Options::default()
                };
                match engine.embed(&wl.query, &wl.constraint, &options) {
                    Ok(r) => {
                        samples.push(Sample {
                            ms: r.stats.elapsed.as_secs_f64() * 1e3,
                            timed_out: r.stats.timed_out,
                            solutions: r.stats.solutions,
                        });
                        evals.push(r.stats.constraint_evals as f64);
                    }
                    Err(e) => eprintln!("# error: {e}"),
                }
            }
            let (mean, ci) = mean_ci(&samples);
            let evals_mean = evals.iter().sum::<f64>() / evals.len().max(1) as f64;
            println!(
                "abl-negcache,{label},{k},{mean:.2},{ci:.2},{},{evals_mean:.0}",
                samples.len()
            );
        }
    }
}

/// `abl-par`: parallel ECF speedup versus thread count.
pub fn abl_par(cfg: &Config) {
    println!("# abl-par: parallel ECF scaling (all-matches, subgraph query)");
    println!("experiment,series,x,mean_ms,ci95_ms,n,speedup_vs_1");
    let host = cfg.planetlab();
    let n = (host.node_count() as f64 * 0.25) as usize;
    let queries: Vec<_> = (0..cfg.reps)
        .map(|r| {
            subgraph_query(
                &host,
                &SubgraphParams {
                    n: n.max(6),
                    edge_keep: 0.3,
                    slack: 0.05,
                },
                &mut topogen::rng(cfg.seed + 77 + r as u64),
            )
        })
        .collect();
    let mut base_ms = None;
    for threads in [1usize, 2, 4, 8] {
        let samples: Vec<Sample> = queries
            .iter()
            .map(|wl| {
                run_once(
                    &host,
                    &wl.query,
                    &wl.constraint,
                    Algorithm::ParallelEcf { threads },
                    SearchMode::All,
                    cfg.timeout,
                    cfg.seed,
                )
            })
            .collect();
        let (mean, ci) = mean_ci(&samples);
        if threads == 1 {
            base_ms = Some(mean);
        }
        let speedup = base_ms.map(|b| b / mean).unwrap_or(1.0);
        println!(
            "abl-par,threads,{threads},{mean:.2},{ci:.2},{},{speedup:.2}",
            samples.len()
        );
    }
}

/// `abl-lns`: the two LNS heuristics (max-degree seed, most-constrained
/// neighbor) toggled independently on composite queries.
pub fn abl_lns(cfg: &Config) {
    println!("# abl-lns: LNS heuristic ablation (composite queries, first match)");
    println!("experiment,series,x,mean_ms,ci95_ms,n,timeouts");
    let host = cfg.planetlab();
    let variants: [(&str, LnsConfig); 4] = [
        ("both-on", LnsConfig::default()),
        (
            "no-max-degree-seed",
            LnsConfig {
                max_degree_seed: false,
                ..LnsConfig::default()
            },
        ),
        (
            "no-most-constrained",
            LnsConfig {
                most_constrained_neighbor: false,
                ..LnsConfig::default()
            },
        ),
        (
            "both-off",
            LnsConfig {
                max_degree_seed: false,
                most_constrained_neighbor: false,
                ..LnsConfig::default()
            },
        ),
    ];
    for groups in [3usize, 4, 5, 6] {
        let spec = CompositeSpec {
            root: Level::Ring,
            groups,
            leaf: Level::Star,
            group_size: 4,
        };
        let mut q = composite_query(&spec);
        assign_composite_windows(&mut q, (75.0, 350.0), (1.0, 75.0));
        for (label, lns) in &variants {
            let samples: Vec<Sample> = (0..cfg.reps)
                .map(|_| {
                    let engine = Engine::new(&host);
                    let options = Options {
                        algorithm: Algorithm::Lns,
                        mode: SearchMode::First,
                        timeout: Some(cfg.timeout),
                        lns: *lns,
                        ..Options::default()
                    };
                    match engine.embed(&q, CLIQUE_CONSTRAINT, &options) {
                        Ok(r) => Sample {
                            ms: r.stats.elapsed.as_secs_f64() * 1e3,
                            timed_out: r.stats.timed_out,
                            solutions: r.stats.solutions,
                        },
                        Err(e) => {
                            eprintln!("# error: {e}");
                            Sample {
                                ms: f64::NAN,
                                timed_out: false,
                                solutions: 0,
                            }
                        }
                    }
                })
                .collect();
            let (mean, ci) = mean_ci(&samples);
            let timeouts = samples.iter().filter(|s| s.timed_out).count();
            println!(
                "abl-lns,{label},{},{mean:.2},{ci:.2},{},{timeouts}",
                spec.node_count(),
                samples.len()
            );
        }
    }
}

//! Shared experiment machinery: scaled workload construction, timing
//! aggregation, and row output.
//!
//! Every experiment emits CSV rows on stdout:
//!
//! ```text
//! # <free-text header>
//! experiment,series,x,mean_ms,ci95_ms,n
//! fig8a,ECF-all,20,132.4,11.2,5
//! ```
//!
//! `--scale` shrinks the hosting networks and sweep ranges proportionally
//! so the full suite runs in minutes on a laptop; the shapes (who wins,
//! linearity, crossovers) are scale-invariant, which is what the paper's
//! qualitative claims rest on.

use netembed::{Algorithm, EmbedResult, Engine, Options, SearchMode};
use netgraph::Network;
use std::time::Duration;
use topogen::{BriteParams, PlanetlabParams};

/// Global experiment configuration from the CLI.
#[derive(Debug, Clone)]
pub struct Config {
    /// Size multiplier for hosts and sweeps (1.0 = paper scale).
    pub scale: f64,
    /// Per-query timeout.
    pub timeout: Duration,
    /// Base RNG seed.
    pub seed: u64,
    /// Repetitions per data point (paper: 5 queries per (N,E)).
    pub reps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 0.5,
            timeout: Duration::from_secs(10),
            seed: 42,
            reps: 5,
        }
    }
}

impl Config {
    /// Scale an integer dimension, with a floor.
    pub fn scaled(&self, full: usize, floor: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(floor)
    }

    /// The PlanetLab-like host at this scale.
    pub fn planetlab(&self) -> Network {
        let sites = self.scaled(296, 24);
        topogen::planetlab_like(
            &PlanetlabParams {
                sites,
                ..PlanetlabParams::default()
            },
            &mut topogen::rng(self.seed),
        )
    }

    /// A BRITE-like host of (scaled) `full_n` nodes.
    pub fn brite(&self, full_n: usize) -> Network {
        let n = self.scaled(full_n, 50);
        topogen::brite_like(
            &BriteParams::paper_default(n),
            &mut topogen::rng(self.seed ^ 0xB17E),
        )
    }
}

/// One measured sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Elapsed time in milliseconds.
    pub ms: f64,
    /// Whether the run timed out.
    pub timed_out: bool,
    /// Solutions found.
    pub solutions: u64,
}

/// Mean and 95% confidence half-interval of the samples' times.
pub fn mean_ci(samples: &[Sample]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|s| s.ms).sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s.ms - mean).powi(2)).sum::<f64>() / (n - 1.0);
    // Normal approximation; fine for reporting shape.
    let ci = 1.96 * (var / n).sqrt();
    (mean, ci)
}

/// Print the standard CSV header.
pub fn print_header(title: &str) {
    println!("# {title}");
    println!("experiment,series,x,mean_ms,ci95_ms,n,timeouts,solutions_mean");
}

/// Emit one aggregated row.
pub fn emit(exp: &str, series: &str, x: impl std::fmt::Display, samples: &[Sample]) {
    let (mean, ci) = mean_ci(samples);
    let timeouts = samples.iter().filter(|s| s.timed_out).count();
    let sols = if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|s| s.solutions as f64).sum::<f64>() / samples.len() as f64
    };
    println!(
        "{exp},{series},{x},{mean:.2},{ci:.2},{n},{timeouts},{sols:.1}",
        n = samples.len()
    );
}

/// Run one (algorithm, mode) combination and sample it.
///
/// All-matches runs go through a counting sink so enumerating millions of
/// embeddings (under-constrained queries, §VII-D) measures search time
/// without materializing the solution set.
pub fn run_once(
    host: &Network,
    query: &Network,
    constraint: &str,
    algorithm: Algorithm,
    mode: SearchMode,
    timeout: Duration,
    seed: u64,
) -> Sample {
    if mode == SearchMode::All {
        return run_counting(host, query, constraint, algorithm, timeout, seed);
    }
    let engine = Engine::new(host);
    let options = Options {
        algorithm,
        mode,
        timeout: Some(timeout),
        seed,
        ..Options::default()
    };
    match engine.embed(query, constraint, &options) {
        Ok(EmbedResult { stats, .. }) => Sample {
            ms: stats.elapsed.as_secs_f64() * 1e3,
            timed_out: stats.timed_out,
            solutions: stats.solutions,
        },
        Err(e) => {
            eprintln!("# error: {e}");
            Sample {
                ms: f64::NAN,
                timed_out: false,
                solutions: 0,
            }
        }
    }
}

/// All-matches run that streams solutions through a counting sink.
pub fn run_counting(
    host: &Network,
    query: &Network,
    constraint: &str,
    algorithm: Algorithm,
    timeout: Duration,
    seed: u64,
) -> Sample {
    use netembed::sink::CountOnly;
    use netembed::{Deadline, NodeOrder, Problem, SearchStats};
    let problem = match Problem::new(query, host, constraint) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("# error: {e}");
            return Sample {
                ms: f64::NAN,
                timed_out: false,
                solutions: 0,
            };
        }
    };
    let mut sink = CountOnly::default();
    let mut stats = SearchStats::default();
    let mut deadline = Deadline::new(Some(timeout));
    let res = match algorithm {
        Algorithm::Ecf | Algorithm::ParallelEcf { .. } => netembed::ecf::search(
            &problem,
            NodeOrder::default(),
            &mut deadline,
            &mut sink,
            &mut stats,
        ),
        Algorithm::Rwb => netembed::rwb::search_into(
            &problem,
            seed,
            NodeOrder::default(),
            &mut deadline,
            &mut sink,
            &mut stats,
        ),
        Algorithm::Lns => netembed::lns::search(
            &problem,
            &netembed::lns::LnsConfig::default(),
            &mut deadline,
            &mut sink,
            &mut stats,
        ),
    };
    if let Err(e) = res {
        eprintln!("# error: {e}");
    }
    Sample {
        ms: stats.elapsed.as_secs_f64() * 1e3,
        timed_out: stats.timed_out,
        solutions: sink.count,
    }
}

/// The (algorithm, label) series used by the comparison figures.
pub fn algo_series() -> Vec<(Algorithm, &'static str)> {
    vec![
        (Algorithm::Ecf, "ECF"),
        (Algorithm::Rwb, "RWB"),
        (Algorithm::Lns, "LNS"),
    ]
}

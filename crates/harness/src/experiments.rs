//! The per-figure experiments (§VII of the paper).
//!
//! Each function regenerates one table/figure as CSV rows (see
//! [`crate::common`] for the schema). EXPERIMENTS.md records how the output
//! maps onto the paper's plots.

use crate::common::{algo_series, emit, print_header, run_once, Config, Sample};
use netembed::{Algorithm, Engine, Options, Outcome, Problem, SearchMode};
use netgraph::Network;
use topogen::{
    assign_composite_windows, assign_random_windows, clique_query, composite_query,
    make_infeasible, subgraph_query, CompositeSpec, Level, QueryWorkload, SubgraphParams,
    CLIQUE_CONSTRAINT,
};

/// Query sizes as fractions of the host, matching the paper's 20..220 of
/// 296 sweep.
const SIZE_FRACTIONS: [f64; 8] = [0.07, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.74];

fn subgraph_sizes(host: &Network) -> Vec<usize> {
    SIZE_FRACTIONS
        .iter()
        .map(|f| ((host.node_count() as f64 * f) as usize).max(3))
        .collect()
}

fn planted_queries(host: &Network, n: usize, cfg: &Config) -> Vec<QueryWorkload> {
    (0..cfg.reps)
        .map(|r| {
            subgraph_query(
                host,
                &SubgraphParams {
                    n,
                    edge_keep: 0.3,
                    slack: 0.02,
                },
                &mut topogen::rng(cfg.seed.wrapping_add(1000 * n as u64 + r as u64)),
            )
        })
        .collect()
}

/// Figures 8 and 9: PlanetLab subgraph queries — per-algorithm time (all
/// matches and first match) versus query size.
///
/// `which` selects the emitted series: "fig8a" (ECF), "fig8b" (RWB),
/// "fig8c" (LNS), "fig9a" (all-matches comparison), "fig9b" (first-match
/// comparison).
pub fn fig08_09(which: &str, cfg: &Config) {
    let host = cfg.planetlab();
    print_header(&format!(
        "{which}: PlanetLab-like host N={} E={} (paper: N=296 E=28996)",
        host.node_count(),
        host.edge_count()
    ));
    for n in subgraph_sizes(&host) {
        let queries = planted_queries(&host, n, cfg);
        let collect = |algorithm: Algorithm, mode: SearchMode, series: &str| {
            let samples: Vec<Sample> = queries
                .iter()
                .map(|wl| {
                    run_once(
                        &host,
                        &wl.query,
                        &wl.constraint,
                        algorithm,
                        mode,
                        cfg.timeout,
                        cfg.seed,
                    )
                })
                .collect();
            emit(which, series, n, &samples);
        };
        match which {
            "fig8a" => {
                collect(Algorithm::Ecf, SearchMode::All, "ECF-all");
                collect(Algorithm::Ecf, SearchMode::First, "ECF-first");
            }
            "fig8b" => {
                collect(Algorithm::Rwb, SearchMode::First, "RWB-first");
            }
            "fig8c" => {
                collect(Algorithm::Lns, SearchMode::All, "LNS-all");
                collect(Algorithm::Lns, SearchMode::First, "LNS-first");
            }
            "fig9a" => {
                for (alg, label) in algo_series() {
                    // Paper Fig 9(a): mean time until all matches found.
                    // RWB stops at the first match by design; the paper
                    // plots it alongside, which we reproduce.
                    let mode = if alg == Algorithm::Rwb {
                        SearchMode::First
                    } else {
                        SearchMode::All
                    };
                    collect(alg, mode, label);
                }
            }
            "fig9b" => {
                for (alg, label) in algo_series() {
                    collect(alg, SearchMode::First, label);
                }
            }
            other => panic!("unknown sub-experiment {other}"),
        }
    }
}

/// Figure 10: feasible vs infeasible queries (same topology, poisoned
/// delay windows) for each algorithm.
pub fn fig10(cfg: &Config) {
    let host = cfg.planetlab();
    print_header(&format!(
        "fig10: match vs no-match on PlanetLab-like host N={}",
        host.node_count()
    ));
    for n in subgraph_sizes(&host) {
        let queries = planted_queries(&host, n, cfg);
        for (alg, label) in algo_series() {
            let mode = if alg == Algorithm::Rwb {
                SearchMode::First
            } else {
                SearchMode::All
            };
            let match_samples: Vec<Sample> = queries
                .iter()
                .map(|wl| {
                    run_once(
                        &host,
                        &wl.query,
                        &wl.constraint,
                        alg,
                        mode,
                        cfg.timeout,
                        cfg.seed,
                    )
                })
                .collect();
            emit("fig10", &format!("{label}-match"), n, &match_samples);
            let nomatch_samples: Vec<Sample> = queries
                .iter()
                .enumerate()
                .map(|(i, wl)| {
                    let bad = make_infeasible(wl, 0.15, &mut topogen::rng(cfg.seed + i as u64));
                    run_once(
                        &host,
                        &bad.query,
                        &bad.constraint,
                        alg,
                        mode,
                        cfg.timeout,
                        cfg.seed,
                    )
                })
                .collect();
            emit("fig10", &format!("{label}-nomatch"), n, &nomatch_samples);
        }
    }
}

/// Figures 11 and 12: BRITE hosts (paper: N = 1500 / 2000 / 2500, E≈2N).
/// `first_match` selects Fig 12 (time to first) vs Fig 11 (all matches).
pub fn fig11_12(first_match: bool, cfg: &Config) {
    let exp = if first_match { "fig12" } else { "fig11" };
    for full_n in [1500usize, 2000, 2500] {
        let host = cfg.brite(full_n);
        print_header(&format!(
            "{exp}: BRITE-like host N={} E={} (paper: N={full_n} E≈{})",
            host.node_count(),
            host.edge_count(),
            2 * full_n
        ));
        let sizes: Vec<usize> = [0.1, 0.2, 0.35, 0.5, 0.65, 0.8]
            .iter()
            .map(|f| ((host.node_count() as f64 * f) as usize).max(3))
            .collect();
        for n in sizes {
            let queries = planted_queries(&host, n, cfg);
            for (alg, label) in algo_series() {
                let mode = if first_match || alg == Algorithm::Rwb {
                    SearchMode::First
                } else {
                    SearchMode::All
                };
                let samples: Vec<Sample> = queries
                    .iter()
                    .map(|wl| {
                        run_once(
                            &host,
                            &wl.query,
                            &wl.constraint,
                            alg,
                            mode,
                            cfg.timeout,
                            cfg.seed,
                        )
                    })
                    .collect();
                emit(exp, &format!("{label}-N{full_n}"), n, &samples);
            }
        }
    }
}

/// Figure 13: embedding cliques with a 10–100 ms delay window into the
/// PlanetLab-like host. `first_match` selects Fig 13(b).
pub fn fig13(first_match: bool, cfg: &Config) {
    let exp = if first_match { "fig13b" } else { "fig13a" };
    let host = cfg.planetlab();
    print_header(&format!(
        "{exp}: clique queries (delay 10..100ms) on PlanetLab-like host N={}",
        host.node_count()
    ));
    let max_k = cfg.scaled(20, 6);
    for k in 2..=max_k {
        let wl = clique_query(k, 10.0, 100.0);
        for (alg, label) in algo_series() {
            let samples: Vec<Sample> = (0..cfg.reps)
                .map(|r| {
                    let seed = cfg.seed + r as u64;
                    if first_match {
                        run_once(
                            &host,
                            &wl.query,
                            &wl.constraint,
                            alg,
                            SearchMode::First,
                            cfg.timeout,
                            seed,
                        )
                    } else {
                        crate::common::run_counting(
                            &host,
                            &wl.query,
                            &wl.constraint,
                            alg,
                            cfg.timeout,
                            seed,
                        )
                    }
                })
                .collect();
            emit(exp, label, k, &samples);
        }
    }
}

/// The composite-query workloads of Figure 14.
fn composite_workloads(cfg: &Config, irregular: bool) -> Vec<(usize, QueryWorkload)> {
    let mut out = Vec::new();
    let specs = [
        (Level::Ring, 3, Level::Star, 3),
        (Level::Ring, 4, Level::Star, 4),
        (Level::Star, 4, Level::Ring, 4),
        (Level::Ring, 5, Level::Star, 5),
        (Level::Clique, 4, Level::Star, 6),
        (Level::Ring, 6, Level::Star, 6),
        (Level::Star, 6, Level::Clique, 6),
        (Level::Ring, 8, Level::Star, 8),
    ];
    for (i, (root, groups, leaf, group_size)) in specs.iter().enumerate() {
        let spec = CompositeSpec {
            root: *root,
            groups: *groups,
            leaf: *leaf,
            group_size: *group_size,
        };
        if spec.node_count() > cfg.scaled(70, 12) {
            continue;
        }
        let mut q = composite_query(&spec);
        if irregular {
            assign_random_windows(
                &mut q,
                25.0,
                175.0,
                60.0,
                &mut topogen::rng(cfg.seed + i as u64),
            );
        } else {
            assign_composite_windows(&mut q, (75.0, 350.0), (1.0, 75.0));
        }
        out.push((
            spec.node_count(),
            QueryWorkload {
                query: q,
                ground_truth: None,
                constraint: CLIQUE_CONSTRAINT.to_string(),
            },
        ));
    }
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Figure 14: composite two-level queries, time to first match.
/// `irregular` selects Fig 14(b) (random windows from 25–175 ms).
pub fn fig14(irregular: bool, cfg: &Config) {
    let exp = if irregular { "fig14b" } else { "fig14a" };
    let host = cfg.planetlab();
    print_header(&format!(
        "{exp}: composite queries ({}) on PlanetLab-like host N={}",
        if irregular {
            "random 25-175ms windows"
        } else {
            "75-350ms root / 1-75ms leaf"
        },
        host.node_count()
    ));
    for (n, wl) in composite_workloads(cfg, irregular) {
        for (alg, label) in algo_series() {
            let samples: Vec<Sample> = (0..cfg.reps)
                .map(|r| {
                    run_once(
                        &host,
                        &wl.query,
                        &wl.constraint,
                        alg,
                        SearchMode::First,
                        cfg.timeout,
                        cfg.seed + r as u64,
                    )
                })
                .collect();
            emit(exp, label, n, &samples);
        }
    }
}

/// Figure 15: probability distribution of result types (§VII-E) across the
/// workload classes, under a fixed (short) timeout.
pub fn fig15(cfg: &Config) {
    println!(
        "# fig15: outcome distribution under timeout {:?}",
        cfg.timeout
    );
    println!("experiment,series,class,p_all,p_some,p_none,p_inconclusive,n");
    let host = cfg.planetlab();

    // Workload classes, each a vector of (query, constraint).
    let mut classes: Vec<(&str, Vec<QueryWorkload>)> = Vec::new();

    let n_mid = (host.node_count() as f64 * 0.3) as usize;
    classes.push(("subgraph", planted_queries(&host, n_mid.max(4), cfg)));
    let infeasible: Vec<QueryWorkload> = planted_queries(&host, n_mid.max(4), cfg)
        .iter()
        .enumerate()
        .map(|(i, wl)| make_infeasible(wl, 0.15, &mut topogen::rng(cfg.seed + 7 + i as u64)))
        .collect();
    classes.push(("subgraph-infeasible", infeasible));
    let cliques: Vec<QueryWorkload> = (3..3 + cfg.reps as usize)
        .map(|k| clique_query(k.min(cfg.scaled(12, 5)), 10.0, 100.0))
        .collect();
    classes.push(("clique", cliques));
    classes.push((
        "composite-regular",
        composite_workloads(cfg, false)
            .into_iter()
            .map(|(_, w)| w)
            .collect(),
    ));
    classes.push((
        "composite-irregular",
        composite_workloads(cfg, true)
            .into_iter()
            .map(|(_, w)| w)
            .collect(),
    ));

    for (class, workloads) in &classes {
        for (alg, label) in algo_series() {
            let mut counts = [0usize; 4]; // all, some, none, inconclusive
            for (i, wl) in workloads.iter().enumerate() {
                let engine = Engine::new(&host);
                let mode = if alg == Algorithm::Rwb {
                    SearchMode::First
                } else {
                    SearchMode::All
                };
                let options = Options {
                    algorithm: alg,
                    mode,
                    timeout: Some(cfg.timeout),
                    seed: cfg.seed + i as u64,
                    ..Options::default()
                };
                match engine.embed(&wl.query, &wl.constraint, &options) {
                    Ok(r) => {
                        let idx = match r.outcome {
                            Outcome::Complete(ref m) if !m.is_empty() => 0,
                            Outcome::Partial(_) => 1,
                            Outcome::Complete(_) => 2,
                            Outcome::Inconclusive => 3,
                        };
                        counts[idx] += 1;
                    }
                    Err(e) => eprintln!("# error: {e}"),
                }
            }
            let n = workloads.len().max(1) as f64;
            println!(
                "fig15,{label},{class},{:.2},{:.2},{:.2},{:.2},{}",
                counts[0] as f64 / n,
                counts[1] as f64 / n,
                counts[2] as f64 / n,
                counts[3] as f64 / n,
                workloads.len()
            );
        }
    }
}

/// §VII-F: NETEMBED (ECF, LNS) versus the re-implemented prior techniques
/// (simulated annealing, genetic, stress-greedy) on identical instances.
pub fn sec7f(cfg: &Config) {
    println!("# sec7f: baselines comparison (small feasible instances)");
    println!("experiment,series,x,mean_ms,ci95_ms,n,success_rate,notes");
    let host = cfg.planetlab();
    for n in [6usize, 10, 14, 18] {
        let queries = planted_queries(&host, n, cfg);
        // NETEMBED algorithms (first match).
        for (alg, label) in [(Algorithm::Ecf, "ECF"), (Algorithm::Lns, "LNS")] {
            let samples: Vec<Sample> = queries
                .iter()
                .map(|wl| {
                    run_once(
                        &host,
                        &wl.query,
                        &wl.constraint,
                        alg,
                        SearchMode::First,
                        cfg.timeout,
                        cfg.seed,
                    )
                })
                .collect();
            let success = samples.iter().filter(|s| s.solutions > 0).count() as f64
                / samples.len().max(1) as f64;
            let (mean, ci) = crate::common::mean_ci(&samples);
            println!(
                "sec7f,{label},{n},{mean:.2},{ci:.2},{},{success:.2},complete",
                samples.len()
            );
        }
        // Baselines.
        let run_baseline = |label: &str, f: &dyn Fn(&Problem<'_>) -> (f64, bool)| {
            let mut times = Vec::new();
            let mut hits = 0usize;
            for wl in &queries {
                let p = Problem::new(&wl.query, &host, &wl.constraint).expect("valid constraint");
                let (ms, ok) = f(&p);
                times.push(Sample {
                    ms,
                    timed_out: false,
                    solutions: ok as u64,
                });
                hits += ok as usize;
            }
            let (mean, ci) = crate::common::mean_ci(&times);
            println!(
                "sec7f,{label},{n},{mean:.2},{ci:.2},{},{:.2},heuristic",
                times.len(),
                hits as f64 / queries.len().max(1) as f64
            );
        };
        run_baseline("SA(assign)", &|p| {
            let r = baselines::anneal(p, &baselines::AnnealParams::default());
            (r.elapsed.as_secs_f64() * 1e3, r.feasible)
        });
        run_baseline("GA(wanassign)", &|p| {
            let r = baselines::genetic(p, &baselines::GeneticParams::default());
            (r.elapsed.as_secs_f64() * 1e3, r.feasible)
        });
        run_baseline("Stress(Zhu-Ammar)", &|p| {
            let stress = vec![0u32; p.nr()];
            let r = baselines::stress_greedy(p, &baselines::StressParams::default(), &stress);
            (r.elapsed.as_secs_f64() * 1e3, r.feasible)
        });
    }
}

//! NETEMBED experiment harness.
//!
//! Regenerates every table and figure of the paper's evaluation (§VII).
//! Run `cargo run -p harness --release -- list` for the experiment index,
//! or `-- all` for the full suite. Output is CSV on stdout; diagnostics
//! are `#`-prefixed or on stderr.

mod ablations;
mod common;
mod experiments;

use common::Config;
use std::time::Duration;

const USAGE: &str = "\
NETEMBED experiment harness

USAGE:
    harness <experiment> [--scale X] [--timeout-ms N] [--seed N] [--reps N]

EXPERIMENTS:
    fig8a fig8b fig8c   Fig 8: per-algorithm time vs query size (PlanetLab)
    fig9a fig9b         Fig 9: algorithm comparison (all / first match)
    fig10               Fig 10: feasible vs infeasible queries
    fig11               Fig 11: BRITE hosts, mean search time
    fig12               Fig 12: BRITE hosts, time to first match
    fig13a fig13b       Fig 13: clique queries (all / first)
    fig14a fig14b       Fig 14: composite queries (regular / irregular)
    fig15               Fig 15: outcome-type distribution
    sec7f               §VII-F: baselines comparison
    abl-order abl-negcache abl-par abl-lns    design ablations
    all                 every experiment above

OPTIONS:
    --scale X        host-size multiplier, 1.0 = paper scale (default 0.5)
    --timeout-ms N   per-query timeout in ms (default 10000)
    --seed N         base RNG seed (default 42)
    --reps N         repetitions per data point (default 5)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let exp = args[0].clone();
    let mut cfg = Config::default();
    let mut i = 1;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--scale"))
            }
            "--timeout-ms" => {
                let ms: u64 = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--timeout-ms"));
                cfg.timeout = Duration::from_millis(ms);
            }
            "--seed" => {
                cfg.seed = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--seed"))
            }
            "--reps" => {
                cfg.reps = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--reps"))
            }
            other => {
                eprintln!("unknown option `{other}`\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    run(&exp, &cfg);
}

fn bad_flag(flag: &str) -> ! {
    eprintln!("bad or missing value for {flag}");
    std::process::exit(2);
}

fn run(exp: &str, cfg: &Config) {
    match exp {
        "list" => print!("{USAGE}"),
        "fig8a" | "fig8b" | "fig8c" | "fig9a" | "fig9b" => experiments::fig08_09(exp, cfg),
        "fig10" => experiments::fig10(cfg),
        "fig11" => experiments::fig11_12(false, cfg),
        "fig12" => experiments::fig11_12(true, cfg),
        "fig13a" => experiments::fig13(false, cfg),
        "fig13b" => experiments::fig13(true, cfg),
        "fig14a" => experiments::fig14(false, cfg),
        "fig14b" => experiments::fig14(true, cfg),
        "fig15" => experiments::fig15(cfg),
        "sec7f" => experiments::sec7f(cfg),
        "abl-order" => ablations::abl_order(cfg),
        "abl-negcache" => ablations::abl_negcache(cfg),
        "abl-par" => ablations::abl_par(cfg),
        "abl-lns" => ablations::abl_lns(cfg),
        "all" => {
            for e in [
                "fig8a",
                "fig8b",
                "fig8c",
                "fig9a",
                "fig9b",
                "fig10",
                "fig11",
                "fig12",
                "fig13a",
                "fig13b",
                "fig14a",
                "fig14b",
                "fig15",
                "sec7f",
                "abl-order",
                "abl-negcache",
                "abl-par",
                "abl-lns",
            ] {
                run(e, cfg);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment `{other}`\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}

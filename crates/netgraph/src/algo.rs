//! Basic graph algorithms used by the generators and the embedding search:
//! BFS, connectivity, connected components, and degree orderings.

use crate::graph::{Network, NodeId};
use std::collections::VecDeque;

/// Breadth-first traversal from `start`, returning visited nodes in visit
/// order. Directed graphs follow out-edges only.
pub fn bfs_order(net: &Network, start: NodeId) -> Vec<NodeId> {
    let n = net.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in net.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS distances (hop counts) from `start`; `None` for unreachable nodes.
pub fn bfs_distances(net: &Network, start: NodeId) -> Vec<Option<u32>> {
    let n = net.node_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].unwrap();
        for &(v, _) in net.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// True when every node is reachable from node 0 following edges in both
/// directions (weak connectivity for directed graphs). Empty graphs are
/// connected by convention.
pub fn is_connected(net: &Network) -> bool {
    let n = net.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(NodeId(0));
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        for &(v, _) in net.neighbors(u).iter().chain(net.in_neighbors(u)) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == n
}

/// Weakly connected components; each inner vector lists the member nodes of
/// one component in ascending id order.
pub fn connected_components(net: &Network) -> Vec<Vec<NodeId>> {
    let n = net.node_count();
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for s in 0..n {
        if comp[s].is_some() {
            continue;
        }
        let cid = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[s] = Some(cid);
        queue.push_back(NodeId(s as u32));
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for &(v, _) in net.neighbors(u).iter().chain(net.in_neighbors(u)) {
                if comp[v.index()].is_none() {
                    comp[v.index()] = Some(cid);
                    queue.push_back(v);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components
}

/// Node ids sorted by descending total degree (ties by ascending id).
/// Used by LNS to seed the covered set with the most-connected query node.
pub fn nodes_by_degree_desc(net: &Network) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = net.node_ids().collect();
    ids.sort_by_key(|&v| (std::cmp::Reverse(net.total_degree(v)), v));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn cycle(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    #[test]
    fn bfs_visits_all_in_connected_graph() {
        let g = cycle(6);
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = cycle(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], Some(3)); // antipodal on a 6-cycle
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn connectivity_detects_split() {
        let mut g = cycle(4);
        g.add_node("island");
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1], vec![NodeId(4)]);
    }

    #[test]
    fn connectivity_of_connected_and_empty() {
        assert!(is_connected(&cycle(5)));
        let empty = Network::new(Direction::Undirected);
        assert!(is_connected(&empty));
        assert!(connected_components(&empty).is_empty());
    }

    #[test]
    fn directed_weak_connectivity() {
        let mut g = Network::new(Direction::Directed);
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(b, a); // only edge points *into* a
        assert!(is_connected(&g)); // weakly connected
        let d = bfs_distances(&g, a);
        assert_eq!(d[b.index()], None); // but b unreachable along out-edges
    }

    #[test]
    fn degree_ordering() {
        let mut g = Network::new(Direction::Undirected);
        let hub = g.add_node("hub");
        let leaves: Vec<NodeId> = (0..3).map(|i| g.add_node(format!("l{i}"))).collect();
        for &l in &leaves {
            g.add_edge(hub, l);
        }
        g.add_edge(leaves[0], leaves[1]);
        let order = nodes_by_degree_desc(&g);
        assert_eq!(order[0], hub);
        // leaves 0 and 1 have degree 2, leaf 2 degree 1.
        assert_eq!(order[3], leaves[2]);
    }
}

/// Enumerate all simple paths from `src` to `dst` with at most `max_hops`
/// edges, invoking `visit` with each path's node sequence (including both
/// endpoints). Used by the link→path embedding extension, where a virtual
/// link may map onto a short host path (§VIII of the NETEMBED paper).
///
/// The hop bound keeps enumeration tractable; callers choose `max_hops`
/// small (2–4). `visit` returning `false` aborts the enumeration early.
pub fn for_each_simple_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
    visit: &mut impl FnMut(&[NodeId]) -> bool,
) {
    if max_hops == 0 || src == dst {
        return;
    }
    let mut stack: Vec<NodeId> = vec![src];
    let mut on_path = vec![false; net.node_count()];
    on_path[src.index()] = true;
    let mut keep_going = true;
    dfs_paths(
        net,
        dst,
        max_hops,
        &mut stack,
        &mut on_path,
        visit,
        &mut keep_going,
    );
}

fn dfs_paths(
    net: &Network,
    dst: NodeId,
    max_hops: usize,
    stack: &mut Vec<NodeId>,
    on_path: &mut [bool],
    visit: &mut impl FnMut(&[NodeId]) -> bool,
    keep_going: &mut bool,
) {
    if !*keep_going {
        return;
    }
    let u = *stack.last().expect("non-empty stack");
    for &(v, _) in net.neighbors(u) {
        if !*keep_going {
            return;
        }
        if v == dst {
            stack.push(v);
            if !visit(stack) {
                *keep_going = false;
            }
            stack.pop();
            continue;
        }
        if stack.len() < max_hops && !on_path[v.index()] {
            on_path[v.index()] = true;
            stack.push(v);
            dfs_paths(net, dst, max_hops, stack, on_path, visit, keep_going);
            stack.pop();
            on_path[v.index()] = false;
        }
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::graph::Direction;

    fn diamond() -> Network {
        // a - b - d and a - c - d plus direct a - d.
        let mut g = Network::new(Direction::Undirected);
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b);
        g.add_edge(b, d);
        g.add_edge(a, c);
        g.add_edge(c, d);
        g.add_edge(a, d);
        g
    }

    fn collect_paths(net: &Network, s: NodeId, t: NodeId, hops: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        for_each_simple_path(net, s, t, hops, &mut |p| {
            out.push(p.to_vec());
            true
        });
        out.sort();
        out
    }

    #[test]
    fn finds_all_bounded_paths() {
        let g = diamond();
        let (a, d) = (NodeId(0), NodeId(3));
        let one_hop = collect_paths(&g, a, d, 1);
        assert_eq!(one_hop, vec![vec![a, d]]);
        let two_hop = collect_paths(&g, a, d, 2);
        assert_eq!(two_hop.len(), 3); // direct + via b + via c
        for p in &two_hop {
            assert_eq!(p.first(), Some(&a));
            assert_eq!(p.last(), Some(&d));
        }
    }

    #[test]
    fn paths_are_simple() {
        let g = diamond();
        let paths = collect_paths(&g, NodeId(0), NodeId(3), 4);
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            for n in p {
                assert!(seen.insert(*n), "repeated node in path {p:?}");
            }
        }
    }

    #[test]
    fn early_abort() {
        let g = diamond();
        let mut count = 0;
        for_each_simple_path(&g, NodeId(0), NodeId(3), 4, &mut |_| {
            count += 1;
            count < 2
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn zero_hops_and_self_target_yield_nothing() {
        let g = diamond();
        assert!(collect_paths(&g, NodeId(0), NodeId(3), 0).is_empty());
        assert!(collect_paths(&g, NodeId(0), NodeId(0), 3).is_empty());
    }

    #[test]
    fn directed_paths_follow_orientation() {
        let mut g = Network::new(Direction::Directed);
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a); // back edge: no a→…→c path may use it
        let paths = collect_paths(&g, a, c, 3);
        assert_eq!(paths, vec![vec![a, b, c]]);
        let none = collect_paths(&g, c, b, 1);
        assert!(none.is_empty());
    }
}

//! Typed, interned attributes for nodes and edges.
//!
//! GraphML (§VI-A of the paper) attaches arbitrary typed key/value data to
//! nodes and edges. We intern attribute *names* per network into small dense
//! [`AttrId`]s so that the constraint-expression evaluator never hashes a
//! string on the search hot path: expression compilation resolves
//! `vEdge.avgDelay` to an `AttrId` once, and evaluation scans an inline
//! vector of `(AttrId, AttrValue)` pairs.

use rustc_hash::FxHashMap;
use smallvec::SmallVec;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an attribute name within one [`AttrSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// Index into schema tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The value of a node or edge attribute.
///
/// GraphML's `int`/`long`/`float`/`double` all map to [`AttrValue::Num`]
/// (constraint expressions are evaluated in `f64`, matching the paper's
/// Java implementation); `boolean` maps to [`AttrValue::Bool`]; `string`
/// maps to [`AttrValue::Str`]. Strings are reference-counted so cloning an
/// attribute map (e.g. when sampling a subgraph query from a host network)
/// does not copy string payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Numeric value (measurements: delay, bandwidth, loss rate, …).
    Num(f64),
    /// Boolean flag.
    Bool(bool),
    /// Categorical value (OS type, link technology, node name bindings, …).
    Str(Arc<str>),
}

impl AttrValue {
    /// Construct a string attribute.
    pub fn str(s: impl AsRef<str>) -> Self {
        AttrValue::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view; `None` for non-numeric values.
    #[inline]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-boolean values.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for non-string values.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Num(_) => "num",
            AttrValue::Bool(_) => "bool",
            AttrValue::Str(_) => "string",
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Num(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Num(x)
    }
}
impl From<i64> for AttrValue {
    fn from(x: i64) -> Self {
        AttrValue::Num(x as f64)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::str(s)
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(Arc::from(s.as_str()))
    }
}

/// Per-network registry of attribute names.
///
/// Both nodes and edges share one schema: an attribute called `delay` on a
/// node and on an edge get the same [`AttrId`]. This matches GraphML, where
/// a `<key>` declaration may apply to either domain.
#[derive(Debug, Default, Clone)]
pub struct AttrSchema {
    names: Vec<Arc<str>>,
    by_name: FxHashMap<Arc<str>, AttrId>,
}

impl AttrSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let arc: Arc<str> = Arc::from(name);
        let id = AttrId(u16::try_from(self.names.len()).expect("more than 65535 attribute names"));
        self.names.push(arc.clone());
        self.by_name.insert(arc, id);
        id
    }

    /// Look up an already-interned name.
    #[inline]
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// The name for `id`.
    #[inline]
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u16), n.as_ref()))
    }
}

/// Attribute storage for one node or edge.
///
/// Stored inline for up to four attributes — the workloads in the paper use
/// one to three attributes per element (min/avg/max delay), so the common
/// case never heap-allocates. Kept sorted by [`AttrId`] so lookup is a short
/// linear scan with early exit and maps compare structurally.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct AttrMap {
    entries: SmallVec<[(AttrId, AttrValue); 4]>,
}

impl AttrMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the value for `id`.
    pub fn set(&mut self, id: AttrId, value: AttrValue) {
        match self.entries.binary_search_by_key(&id, |(k, _)| *k) {
            Ok(pos) => self.entries[pos].1 = value,
            Err(pos) => self.entries.insert(pos, (id, value)),
        }
    }

    /// Value for `id`, if present.
    #[inline]
    pub fn get(&self, id: AttrId) -> Option<&AttrValue> {
        // Attribute maps are tiny (≤ 4 in the inline case); a linear scan
        // with early exit on the sorted keys beats binary search here.
        for (k, v) in &self.entries {
            if *k == id {
                return Some(v);
            }
            if *k > id {
                return None;
            }
        }
        None
    }

    /// Remove the value for `id`, returning it if present.
    pub fn remove(&mut self, id: AttrId) -> Option<AttrValue> {
        match self.entries.binary_search_by_key(&id, |(k, _)| *k) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }

    /// Number of attributes present.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no attributes are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut s = AttrSchema::new();
        let a = s.intern("avgDelay");
        let b = s.intern("minDelay");
        assert_ne!(a, b);
        assert_eq!(s.intern("avgDelay"), a);
        assert_eq!(s.name(a), "avgDelay");
        assert_eq!(s.get("minDelay"), Some(b));
        assert_eq!(s.get("maxDelay"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn schema_iter_in_id_order() {
        let mut s = AttrSchema::new();
        let ids: Vec<AttrId> = ["a", "b", "c"].iter().map(|n| s.intern(n)).collect();
        let seen: Vec<(AttrId, String)> = s.iter().map(|(i, n)| (i, n.to_string())).collect();
        assert_eq!(
            seen,
            vec![
                (ids[0], "a".to_string()),
                (ids[1], "b".to_string()),
                (ids[2], "c".to_string())
            ]
        );
    }

    #[test]
    fn attr_map_set_get_replace() {
        let mut m = AttrMap::new();
        m.set(AttrId(3), AttrValue::Num(1.5));
        m.set(AttrId(1), AttrValue::Bool(true));
        m.set(AttrId(3), AttrValue::Num(2.5));
        assert_eq!(m.get(AttrId(3)).and_then(AttrValue::as_num), Some(2.5));
        assert_eq!(m.get(AttrId(1)).and_then(AttrValue::as_bool), Some(true));
        assert_eq!(m.get(AttrId(0)), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn attr_map_iter_sorted() {
        let mut m = AttrMap::new();
        for id in [5u16, 2, 9, 0] {
            m.set(AttrId(id), AttrValue::Num(id as f64));
        }
        let keys: Vec<u16> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![0, 2, 5, 9]);
    }

    #[test]
    fn attr_map_remove() {
        let mut m = AttrMap::new();
        m.set(AttrId(1), AttrValue::str("linux"));
        assert_eq!(
            m.remove(AttrId(1)).as_ref().and_then(AttrValue::as_str),
            Some("linux")
        );
        assert_eq!(m.remove(AttrId(1)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn value_views_and_types() {
        assert_eq!(AttrValue::Num(4.0).as_num(), Some(4.0));
        assert_eq!(AttrValue::Num(4.0).as_bool(), None);
        assert_eq!(AttrValue::Bool(false).as_bool(), Some(false));
        assert_eq!(AttrValue::str("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(3i64).as_num(), Some(3.0));
        assert_eq!(AttrValue::from("s").type_name(), "string");
        assert_eq!(AttrValue::from(true).type_name(), "bool");
        assert_eq!(format!("{}", AttrValue::Num(1.25)), "1.25");
    }
}

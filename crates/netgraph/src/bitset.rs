//! A fixed-capacity bitset over node indices.
//!
//! Candidate sets in the embedding search are subsets of the hosting
//! network's nodes. The hosting networks in the paper top out at a few
//! thousand nodes, so a flat `u64`-block bitset gives allocation-free,
//! branch-light intersection/difference — the inner loop of the ECF filter
//! evaluation (§V-A, expression (2)).

use crate::graph::NodeId;

/// Fixed-capacity set of [`NodeId`]s backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl Default for NodeBitSet {
    /// A zero-capacity set (useful as a placeholder in reusable scratch
    /// structs that are sized lazily).
    fn default() -> Self {
        Self::new(0)
    }
}

impl NodeBitSet {
    /// Empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeBitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Set holding every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// Build from an iterator of ids.
    pub fn from_iter(capacity: usize, ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::new(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Capacity this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Zero out bits beyond `capacity` in the last block.
    #[inline]
    fn trim(&mut self) {
        let rem = self.capacity % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Insert `id`. Panics if out of capacity.
    #[inline]
    pub fn insert(&mut self, id: NodeId) {
        let i = id.index();
        debug_assert!(
            i < self.capacity,
            "id {i} out of capacity {}",
            self.capacity
        );
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove `id`.
    #[inline]
    pub fn remove(&mut self, id: NodeId) {
        let i = id.index();
        if i < self.capacity {
            self.blocks[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.capacity && (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of ids present.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when the set holds no ids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Become an exact copy of `other` without reallocating (capacities
    /// must match). This is the reset step of the search's per-depth
    /// scratch masks: one `memcpy`-shaped block copy instead of
    /// `clear` + per-element inserts.
    #[inline]
    pub fn clear_and_copy_from(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Clear, then insert every id in `ids`.
    #[inline]
    pub fn clear_and_insert_all(&mut self, ids: &[NodeId]) {
        self.clear();
        for &id in ids {
            self.insert(id);
        }
    }

    /// The raw `u64` blocks, for word-at-a-time consumers.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Append the ids of every set bit to `out` in ascending order,
    /// without clearing `out`. Word-level iteration: zero blocks cost one
    /// branch each.
    #[inline]
    pub fn collect_into(&self, out: &mut Vec<NodeId>) {
        for (bi, &block) in self.blocks.iter().enumerate() {
            let mut w = block;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(NodeId((bi * 64 + bit) as u32));
                w &= w - 1;
            }
        }
    }

    /// In-place intersection with `other`.
    ///
    /// The loop is written as explicit 4-wide `u64` chunks so the
    /// compiler autovectorizes it (one 256-bit AND per chunk on AVX2,
    /// two 128-bit ANDs on SSE2/NEON) instead of relying on the
    /// unroller to find the shape; the remainder handles the last
    /// `len % 4` blocks scalar.
    #[inline]
    pub fn intersect_with(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut a = self.blocks.chunks_exact_mut(4);
        let mut b = other.blocks.chunks_exact(4);
        for (ca, cb) in a.by_ref().zip(b.by_ref()) {
            ca[0] &= cb[0];
            ca[1] &= cb[1];
            ca[2] &= cb[2];
            ca[3] &= cb[3];
        }
        for (x, y) in a.into_remainder().iter_mut().zip(b.remainder()) {
            *x &= *y;
        }
    }

    /// `|self ∩ other|` without materializing the intersection: a fused
    /// AND + popcount pass over the blocks, no writes. Lets callers
    /// rank or threshold candidate overlaps (e.g. split-policy
    /// heuristics) without a scratch set.
    ///
    /// Written as explicit 4-wide `u64` chunks like [`intersect_with`]:
    /// four independent AND+popcount lanes per iteration keep the
    /// popcounts off a single serial dependency chain (and give the
    /// autovectorizer the same 256-bit shape), with a scalar tail for
    /// the last `len % 4` blocks.
    ///
    /// [`intersect_with`]: NodeBitSet::intersect_with
    #[inline]
    pub fn intersect_count(&self, other: &NodeBitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        let a = self.blocks.chunks_exact(4);
        let b = other.blocks.chunks_exact(4);
        let tail: u32 = a
            .remainder()
            .iter()
            .zip(b.remainder())
            .map(|(x, y)| (x & y).count_ones())
            .sum();
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for (ca, cb) in a.zip(b) {
            c0 += (ca[0] & cb[0]).count_ones() as u64;
            c1 += (ca[1] & cb[1]).count_ones() as u64;
            c2 += (ca[2] & cb[2]).count_ones() as u64;
            c3 += (ca[3] & cb[3]).count_ones() as u64;
        }
        (c0 + c1 + c2 + c3) as usize + tail as usize
    }

    /// True when `self ∩ other` is non-empty. Early-exits at the first
    /// overlapping block, so a hit near the front costs one AND; the
    /// search's candidate filler uses this to reject empty cells before
    /// paying for the full-width intersection write.
    #[inline]
    pub fn intersects_any(&self, other: &NodeBitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union with `other`.
    #[inline]
    pub fn union_with(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place difference: remove every id present in `other`.
    #[inline]
    pub fn subtract(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// Intersect with a sorted candidate list, keeping only listed ids.
    pub fn retain_sorted(&mut self, keep: &[NodeId]) {
        let mut filtered = NodeBitSet::new(self.capacity);
        for &id in keep {
            if self.contains(id) {
                filtered.insert(id);
            }
        }
        *self = filtered;
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// First (smallest) id present.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }
}

/// Ascending iterator over a [`NodeBitSet`].
pub struct BitIter<'a> {
    set: &'a NodeBitSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(NodeId((self.block_idx * 64 + bit) as u32));
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a NodeBitSet {
    type Item = NodeId;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> BitIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeBitSet::new(130);
        s.insert(NodeId(0));
        s.insert(NodeId(64));
        s.insert(NodeId(129));
        assert!(s.contains(NodeId(0)));
        assert!(s.contains(NodeId(64)));
        assert!(s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.len(), 3);
        s.remove(NodeId(64));
        assert!(!s.contains(NodeId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = NodeBitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(NodeId(69)));
        assert!(!s.contains(NodeId(70)));
    }

    #[test]
    fn set_algebra() {
        let a0 = NodeBitSet::from_iter(100, ids(&[1, 5, 64, 99]));
        let b = NodeBitSet::from_iter(100, ids(&[5, 64, 70]));

        let mut inter = a0.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), ids(&[5, 64]));

        let mut uni = a0.clone();
        uni.union_with(&b);
        assert_eq!(uni.iter().collect::<Vec<_>>(), ids(&[1, 5, 64, 70, 99]));

        let mut diff = a0.clone();
        diff.subtract(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), ids(&[1, 99]));
    }

    #[test]
    fn intersect_with_matches_scalar_across_chunk_boundaries() {
        // Capacities straddling the 4-block (256-bit) chunk width: the
        // chunked loop plus scalar remainder must agree with per-bit
        // membership on every block.
        for capacity in [1usize, 63, 64, 255, 256, 257, 300, 511, 520] {
            let a = NodeBitSet::from_iter(
                capacity,
                (0..capacity as u32).filter(|i| i % 3 == 0).map(NodeId),
            );
            let b = NodeBitSet::from_iter(
                capacity,
                (0..capacity as u32).filter(|i| i % 5 != 1).map(NodeId),
            );
            let mut got = a.clone();
            got.intersect_with(&b);
            for i in 0..capacity as u32 {
                let want = a.contains(NodeId(i)) && b.contains(NodeId(i));
                assert_eq!(got.contains(NodeId(i)), want, "cap {capacity} bit {i}");
            }
            assert_eq!(a.intersect_count(&b), got.len(), "cap {capacity} count");
            assert_eq!(a.intersects_any(&b), !got.is_empty(), "cap {capacity} any");
        }
    }

    #[test]
    fn intersect_count_matches_scalar_reference() {
        // Pin the 4-wide chunked counter against a straight
        // block-by-block scalar popcount over the same words, on
        // capacities straddling the 256-bit chunk width and on dense,
        // sparse and empty patterns (LCG-style words so every chunk
        // lane sees a distinct value).
        let scalar = |a: &NodeBitSet, b: &NodeBitSet| -> usize {
            a.words()
                .iter()
                .zip(b.words())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum()
        };
        for capacity in [0usize, 1, 63, 64, 65, 255, 256, 257, 300, 511, 512, 520] {
            let mut state = capacity as u32 + 1;
            let mut next = || {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                state
            };
            let dense_a = NodeBitSet::from_iter(
                capacity,
                (0..capacity as u32).filter(|_| next() % 3 != 0).map(NodeId),
            );
            let dense_b = NodeBitSet::from_iter(
                capacity,
                (0..capacity as u32).filter(|_| next() % 3 != 0).map(NodeId),
            );
            let sparse = NodeBitSet::from_iter(
                capacity,
                (0..capacity as u32).filter(|i| i % 67 == 0).map(NodeId),
            );
            let empty = NodeBitSet::new(capacity);
            for (a, b) in [
                (&dense_a, &dense_b),
                (&dense_a, &sparse),
                (&sparse, &dense_b),
                (&dense_a, &empty),
                (&empty, &sparse),
            ] {
                assert_eq!(a.intersect_count(b), scalar(a, b), "cap {capacity}");
                assert_eq!(
                    a.intersect_count(b),
                    b.intersect_count(a),
                    "cap {capacity} commutes"
                );
            }
            assert_eq!(dense_a.intersect_count(&dense_a), dense_a.len());
        }
    }

    #[test]
    fn intersect_count_and_any_without_writes() {
        let a = NodeBitSet::from_iter(300, ids(&[0, 64, 128, 192, 256, 299]));
        let b = NodeBitSet::from_iter(300, ids(&[64, 192, 299]));
        assert_eq!(a.intersect_count(&b), 3);
        assert!(a.intersects_any(&b));
        // `a` unchanged by the read-only helpers.
        assert_eq!(a.len(), 6);

        let disjoint = NodeBitSet::from_iter(300, ids(&[1, 65, 129]));
        assert_eq!(a.intersect_count(&disjoint), 0);
        assert!(!a.intersects_any(&disjoint));
        let empty = NodeBitSet::new(300);
        assert!(!a.intersects_any(&empty));
        assert_eq!(empty.intersect_count(&a), 0);
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let s = NodeBitSet::from_iter(200, ids(&[199, 0, 63, 64, 128]));
        assert_eq!(s.iter().collect::<Vec<_>>(), ids(&[0, 63, 64, 128, 199]));
        assert_eq!(s.first(), Some(NodeId(0)));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = NodeBitSet::from_iter(10, ids(&[3]));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn retain_sorted_keeps_intersection() {
        let mut s = NodeBitSet::from_iter(32, ids(&[1, 2, 3, 8]));
        s.retain_sorted(&ids(&[2, 8, 9]));
        assert_eq!(s.iter().collect::<Vec<_>>(), ids(&[2, 8]));
    }

    #[test]
    fn clear_and_copy_from_matches_source() {
        let src = NodeBitSet::from_iter(130, ids(&[0, 64, 129]));
        let mut dst = NodeBitSet::from_iter(130, ids(&[5, 6]));
        dst.clear_and_copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn clear_and_insert_all_replaces_contents() {
        let mut s = NodeBitSet::from_iter(70, ids(&[1, 2]));
        s.clear_and_insert_all(&ids(&[64, 69]));
        assert_eq!(s.iter().collect::<Vec<_>>(), ids(&[64, 69]));
    }

    #[test]
    fn collect_into_appends_ascending() {
        let s = NodeBitSet::from_iter(200, ids(&[199, 0, 63, 64]));
        let mut out = vec![NodeId(7)];
        s.collect_into(&mut out);
        assert_eq!(out, ids(&[7, 0, 63, 64, 199]));
        assert_eq!(s.words().len(), 200usize.div_ceil(64));
    }
}

//! Checked, fluent construction of [`Network`] values.
//!
//! [`Network::add_node`]/[`Network::add_edge`] panic on misuse; the builder
//! returns [`GraphError`]s instead, which matters when the input comes from
//! a user-supplied GraphML document rather than from our own generators.

use crate::attr::AttrValue;
use crate::graph::{Direction, EdgeId, Network, NodeId};
use crate::GraphError;

/// Checked builder for [`Network`].
#[derive(Debug)]
pub struct NetworkBuilder {
    net: Network,
    allow_self_loops_rejected: bool,
}

impl NetworkBuilder {
    /// Start a builder for the given edge interpretation.
    pub fn new(direction: Direction) -> Self {
        NetworkBuilder {
            net: Network::new(direction),
            allow_self_loops_rejected: true,
        }
    }

    /// Name the network.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.net.set_name(name);
        self
    }

    /// Add a node, failing on duplicate names.
    pub fn add_node(&mut self, name: impl Into<String>) -> Result<NodeId, GraphError> {
        let name = name.into();
        if self.net.node_by_name(&name).is_some() {
            return Err(GraphError::DuplicateNodeName(name));
        }
        Ok(self.net.add_node(name))
    }

    /// Add a node and set attributes in one call.
    pub fn add_node_with(
        &mut self,
        name: impl Into<String>,
        attrs: &[(&str, AttrValue)],
    ) -> Result<NodeId, GraphError> {
        let id = self.add_node(name)?;
        for (k, v) in attrs {
            self.net.set_node_attr(id, k, v.clone());
        }
        Ok(id)
    }

    /// Add an edge, failing on bad endpoints, self-loops and duplicates.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, GraphError> {
        if src.index() >= self.net.node_count() {
            return Err(GraphError::InvalidNode(src));
        }
        if dst.index() >= self.net.node_count() {
            return Err(GraphError::InvalidNode(dst));
        }
        if src == dst && self.allow_self_loops_rejected {
            return Err(GraphError::SelfLoop(src));
        }
        if self.net.has_edge(src, dst) {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        Ok(self.net.add_edge(src, dst))
    }

    /// Add an edge and set attributes in one call.
    pub fn add_edge_with(
        &mut self,
        src: NodeId,
        dst: NodeId,
        attrs: &[(&str, AttrValue)],
    ) -> Result<EdgeId, GraphError> {
        let id = self.add_edge(src, dst)?;
        for (k, v) in attrs {
            self.net.set_edge_attr(id, k, v.clone());
        }
        Ok(id)
    }

    /// Set an attribute on an existing node.
    pub fn set_node_attr(&mut self, node: NodeId, name: &str, value: impl Into<AttrValue>) {
        self.net.set_node_attr(node, name, value);
    }

    /// Set an attribute on an existing edge.
    pub fn set_edge_attr(&mut self, edge: EdgeId, name: &str, value: impl Into<AttrValue>) {
        self.net.set_edge_attr(edge, name, value);
    }

    /// Read access to the network under construction.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Finish, returning the built network.
    pub fn build(self) -> Network {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path() {
        let mut b = NetworkBuilder::new(Direction::Undirected).name("t");
        let a = b.add_node("a").unwrap();
        let c = b
            .add_node_with("c", &[("cpu", AttrValue::Num(4.0))])
            .unwrap();
        b.add_edge_with(a, c, &[("avgDelay", AttrValue::Num(3.0))])
            .unwrap();
        let g = b.build();
        assert_eq!(g.name(), "t");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.node_attr_by_name(c, "cpu").and_then(AttrValue::as_num),
            Some(4.0)
        );
    }

    #[test]
    fn builder_rejects_duplicates_and_bad_ids() {
        let mut b = NetworkBuilder::new(Direction::Undirected);
        let a = b.add_node("a").unwrap();
        let c = b.add_node("c").unwrap();
        assert_eq!(
            b.add_node("a"),
            Err(GraphError::DuplicateNodeName("a".into()))
        );
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(c, a), Err(GraphError::DuplicateEdge(c, a)));
        assert_eq!(b.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(
            b.add_edge(a, NodeId(9)),
            Err(GraphError::InvalidNode(NodeId(9)))
        );
    }

    #[test]
    fn directed_builder_allows_reverse_edge() {
        let mut b = NetworkBuilder::new(Direction::Directed);
        let a = b.add_node("a").unwrap();
        let c = b.add_node("c").unwrap();
        b.add_edge(a, c).unwrap();
        assert!(b.add_edge(c, a).is_ok());
    }
}

//! The [`Network`] type: a directed or undirected multigraph-free graph with
//! typed attributes on nodes and edges and O(1) endpoint→edge lookup.
//!
//! Hosting networks in the paper reach a few thousand nodes and ~30k edges
//! (PlanetLab all-pairs trace: N=296, E=28,996), and the embedding search
//! touches adjacency constantly, so the representation is flat:
//! node/edge payloads live in dense `Vec`s, adjacency is a per-node sorted
//! list of `(neighbor, edge)` pairs, and `(u, v) → EdgeId` is a hash map.

use crate::attr::{AttrId, AttrMap, AttrSchema, AttrValue};
use rustc_hash::FxHashMap;
use std::fmt;

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Dense edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index into edge tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether edges are interpreted as ordered or unordered pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edges are unordered; `(u, v)` and `(v, u)` are the same edge.
    Undirected,
    /// Edges are ordered pairs.
    Directed,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub name: String,
    pub attrs: AttrMap,
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeData {
    pub src: NodeId,
    pub dst: NodeId,
    pub attrs: AttrMap,
}

/// A borrowed view of one edge: endpoints plus id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Edge id.
    pub id: EdgeId,
    /// Source endpoint (first endpoint for undirected graphs).
    pub src: NodeId,
    /// Target endpoint.
    pub dst: NodeId,
}

/// An attributed graph: the common representation of hosting (real) and
/// query (virtual) networks.
#[derive(Debug, Clone)]
pub struct Network {
    direction: Direction,
    name: String,
    schema: AttrSchema,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    /// Per-node adjacency: sorted `(neighbor, edge)` pairs. For undirected
    /// graphs each edge appears in both endpoint lists; for directed graphs
    /// `adj_out` holds successors and `adj_in` holds predecessors.
    adj_out: Vec<Vec<(NodeId, EdgeId)>>,
    adj_in: Vec<Vec<(NodeId, EdgeId)>>,
    /// `(u, v) → edge`. For undirected graphs both orientations are present.
    edge_index: FxHashMap<(NodeId, NodeId), EdgeId>,
    node_names: FxHashMap<String, NodeId>,
}

impl Network {
    /// Create an empty network.
    pub fn new(direction: Direction) -> Self {
        Network {
            direction,
            name: String::new(),
            schema: AttrSchema::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
            adj_out: Vec::new(),
            adj_in: Vec::new(),
            edge_index: FxHashMap::default(),
            node_names: FxHashMap::default(),
        }
    }

    /// Set a human-readable network name (carried through GraphML).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Edge interpretation.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// True when edges are unordered pairs.
    #[inline]
    pub fn is_undirected(&self) -> bool {
        self.direction == Direction::Undirected
    }

    /// Attribute schema (interned names).
    #[inline]
    pub fn schema(&self) -> &AttrSchema {
        &self.schema
    }

    /// Mutable attribute schema, for interning new names.
    #[inline]
    pub fn schema_mut(&mut self) -> &mut AttrSchema {
        &mut self.schema
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (each undirected edge counted once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate all edges.
    pub fn edge_refs(&self) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId(i as u32),
            src: e.src,
            dst: e.dst,
        })
    }

    /// Add a node with a unique `name`. Panics on duplicate names; use
    /// [`crate::NetworkBuilder`] for checked construction.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(
            !self.node_names.contains_key(&name),
            "duplicate node name: {name}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.node_names.insert(name.clone(), id);
        self.nodes.push(NodeData {
            name,
            attrs: AttrMap::new(),
        });
        self.adj_out.push(Vec::new());
        self.adj_in.push(Vec::new());
        id
    }

    /// Add an edge. Panics on invalid endpoints, self-loops, or duplicate
    /// edges; use [`crate::NetworkBuilder`] for checked construction.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "invalid src node");
        assert!(dst.index() < self.nodes.len(), "invalid dst node");
        assert_ne!(src, dst, "self loops are not supported");
        assert!(
            !self.edge_index.contains_key(&(src, dst)),
            "duplicate edge ({src}, {dst})"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            src,
            dst,
            attrs: AttrMap::new(),
        });
        insert_sorted(&mut self.adj_out[src.index()], (dst, id));
        insert_sorted(&mut self.adj_in[dst.index()], (src, id));
        self.edge_index.insert((src, dst), id);
        if self.direction == Direction::Undirected {
            insert_sorted(&mut self.adj_out[dst.index()], (src, id));
            insert_sorted(&mut self.adj_in[src.index()], (dst, id));
            self.edge_index.insert((dst, src), id);
        }
        id
    }

    /// Node id for `name`.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names.get(name).copied()
    }

    /// Name of `node`.
    #[inline]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Endpoints of `edge` as stored (source, target).
    #[inline]
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.src, e.dst)
    }

    /// Edge between `u` and `v`, if any. For undirected graphs the order of
    /// `u` and `v` does not matter.
    #[inline]
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(u, v)).copied()
    }

    /// True when an edge `u → v` exists (either orientation if undirected).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_index.contains_key(&(u, v))
    }

    /// Out-neighbors of `node` as sorted `(neighbor, edge)` pairs. For
    /// undirected graphs this is the full neighbor set.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj_out[node.index()]
    }

    /// In-neighbors of `node` (predecessors). Equal to [`Self::neighbors`]
    /// for undirected graphs.
    #[inline]
    pub fn in_neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj_in[node.index()]
    }

    /// Degree of `node` (out-degree for directed graphs).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj_out[node.index()].len()
    }

    /// Total degree (in + out) — equals `degree` for undirected graphs,
    /// where each incident edge is already counted once in `adj_out`.
    #[inline]
    pub fn total_degree(&self, node: NodeId) -> usize {
        if self.is_undirected() {
            self.adj_out[node.index()].len()
        } else {
            self.adj_out[node.index()].len() + self.adj_in[node.index()].len()
        }
    }

    // ----- attributes ------------------------------------------------------

    /// Intern `name` in the schema and set it on `node`.
    pub fn set_node_attr(&mut self, node: NodeId, name: &str, value: impl Into<AttrValue>) {
        let id = self.schema.intern(name);
        self.nodes[node.index()].attrs.set(id, value.into());
    }

    /// Intern `name` in the schema and set it on `edge`.
    pub fn set_edge_attr(&mut self, edge: EdgeId, name: &str, value: impl Into<AttrValue>) {
        let id = self.schema.intern(name);
        self.edges[edge.index()].attrs.set(id, value.into());
    }

    /// Attribute of `node` by interned id.
    #[inline]
    pub fn node_attr(&self, node: NodeId, id: AttrId) -> Option<&AttrValue> {
        self.nodes[node.index()].attrs.get(id)
    }

    /// Attribute of `edge` by interned id.
    #[inline]
    pub fn edge_attr(&self, edge: EdgeId, id: AttrId) -> Option<&AttrValue> {
        self.edges[edge.index()].attrs.get(id)
    }

    /// Attribute of `node` by name (convenience; resolves through schema).
    pub fn node_attr_by_name(&self, node: NodeId, name: &str) -> Option<&AttrValue> {
        let id = self.schema.get(name)?;
        self.node_attr(node, id)
    }

    /// Attribute of `edge` by name (convenience; resolves through schema).
    pub fn edge_attr_by_name(&self, edge: EdgeId, name: &str) -> Option<&AttrValue> {
        let id = self.schema.get(name)?;
        self.edge_attr(edge, id)
    }

    /// All attributes of `node`.
    pub fn node_attrs(&self, node: NodeId) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.nodes[node.index()].attrs.iter()
    }

    /// All attributes of `edge`.
    pub fn edge_attrs(&self, edge: EdgeId) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.edges[edge.index()].attrs.iter()
    }

    // ----- derived graphs --------------------------------------------------

    /// Build the subgraph induced by `nodes`, copying attributes and
    /// carrying node names over. Returns the new network plus, for each new
    /// node index, the original [`NodeId`] it came from.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Network, Vec<NodeId>) {
        let mut sub = Network::new(self.direction);
        sub.set_name(format!("{}-sub", self.name));
        let mut old_to_new: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut origin = Vec::with_capacity(nodes.len());
        for &old in nodes {
            let new = sub.add_node(self.node_name(old).to_string());
            old_to_new.insert(old, new);
            origin.push(old);
            for (aid, v) in self.node_attrs(old) {
                let name = self.schema.name(aid).to_string();
                sub.set_node_attr(new, &name, v.clone());
            }
        }
        for e in self.edge_refs() {
            let (Some(&ns), Some(&nd)) = (old_to_new.get(&e.src), old_to_new.get(&e.dst)) else {
                continue;
            };
            // For undirected graphs the edge index contains both
            // orientations but `edge_refs` yields each edge once.
            let new_e = sub.add_edge(ns, nd);
            for (aid, v) in self.edge_attrs(e.id) {
                let name = self.schema.name(aid).to_string();
                sub.set_edge_attr(new_e, &name, v.clone());
            }
        }
        (sub, origin)
    }
}

fn insert_sorted(list: &mut Vec<(NodeId, EdgeId)>, item: (NodeId, EdgeId)) {
    match list.binary_search(&item) {
        Ok(_) => {}
        Err(pos) => list.insert(pos, item),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3(direction: Direction) -> Network {
        let mut g = Network::new(direction);
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g
    }

    #[test]
    fn undirected_edge_lookup_is_symmetric() {
        let g = path3(Direction::Undirected);
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(g.find_edge(a, b), g.find_edge(b, a));
        assert!(g.has_edge(b, a));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn directed_edge_lookup_is_asymmetric() {
        let g = path3(Direction::Directed);
        let (a, b) = (NodeId(0), NodeId(1));
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn neighbors_sorted_and_degree() {
        let mut g = Network::new(Direction::Undirected);
        let hub = g.add_node("hub");
        let others: Vec<NodeId> = (0..5).map(|i| g.add_node(format!("n{i}"))).collect();
        // Insert in reverse to exercise the sorted insert.
        for &o in others.iter().rev() {
            g.add_edge(hub, o);
        }
        let ns: Vec<NodeId> = g.neighbors(hub).iter().map(|(n, _)| *n).collect();
        let mut expect = others.clone();
        expect.sort();
        assert_eq!(ns, expect);
        assert_eq!(g.degree(hub), 5);
        assert_eq!(g.total_degree(hub), 5);
    }

    #[test]
    fn directed_in_out_neighbors() {
        let g = path3(Direction::Directed);
        let b = NodeId(1);
        assert_eq!(g.neighbors(b).len(), 1);
        assert_eq!(g.in_neighbors(b).len(), 1);
        assert_eq!(g.total_degree(b), 2);
    }

    #[test]
    fn attrs_round_trip() {
        let mut g = path3(Direction::Undirected);
        let a = NodeId(0);
        let e = EdgeId(0);
        g.set_node_attr(a, "osType", "linux-2.6");
        g.set_edge_attr(e, "avgDelay", 12.5);
        assert_eq!(
            g.node_attr_by_name(a, "osType").and_then(AttrValue::as_str),
            Some("linux-2.6")
        );
        assert_eq!(
            g.edge_attr_by_name(e, "avgDelay")
                .and_then(AttrValue::as_num),
            Some(12.5)
        );
        assert_eq!(g.node_attr_by_name(a, "missing"), None);
    }

    #[test]
    fn node_by_name() {
        let g = path3(Direction::Undirected);
        assert_eq!(g.node_by_name("b"), Some(NodeId(1)));
        assert_eq!(g.node_by_name("zz"), None);
        assert_eq!(g.node_name(NodeId(2)), "c");
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = path3(Direction::Undirected);
        g.add_edge(NodeId(1), NodeId(0)); // (a,b) exists as undirected
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_panics() {
        let mut g = path3(Direction::Undirected);
        g.add_edge(NodeId(0), NodeId(0));
    }

    #[test]
    fn induced_subgraph_preserves_attrs_and_edges() {
        let mut g = Network::new(Direction::Undirected);
        let n: Vec<NodeId> = (0..4).map(|i| g.add_node(format!("v{i}"))).collect();
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            let e = g.add_edge(n[u], n[v]);
            g.set_edge_attr(e, "avgDelay", (u * 10 + v) as f64);
        }
        g.set_node_attr(n[1], "cpu", 2.0);

        let (sub, origin) = g.induced_subgraph(&[n[0], n[1], n[3]]);
        assert_eq!(sub.node_count(), 3);
        // Edges kept: (0,1) and (0,3); edge (1,2),(2,3) dropped.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(origin, vec![n[0], n[1], n[3]]);
        let b = sub.node_by_name("v1").unwrap();
        assert_eq!(
            sub.node_attr_by_name(b, "cpu").and_then(AttrValue::as_num),
            Some(2.0)
        );
        let e = sub
            .find_edge(sub.node_by_name("v0").unwrap(), b)
            .expect("edge v0-v1 kept");
        assert_eq!(
            sub.edge_attr_by_name(e, "avgDelay")
                .and_then(AttrValue::as_num),
            Some(1.0)
        );
    }

    #[test]
    fn edge_refs_enumerates_each_edge_once() {
        let g = path3(Direction::Undirected);
        let refs: Vec<EdgeRef> = g.edge_refs().collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].id, EdgeId(0));
        assert_eq!((refs[1].src, refs[1].dst), (NodeId(1), NodeId(2)));
    }
}

//! # netgraph — attributed graph substrate for NETEMBED
//!
//! This crate provides the graph data model shared by every other crate in
//! the NETEMBED workspace: hosting (real) networks and query (virtual)
//! networks are both [`Network`] values.
//!
//! Design goals, in order:
//!
//! 1. **Cheap id-based access.** Nodes and edges are dense `u32` indices
//!    ([`NodeId`], [`EdgeId`]); adjacency is a flat CSR-like structure so the
//!    embedding search can iterate neighbors without hashing or pointer
//!    chasing.
//! 2. **Typed, interned attributes.** Node/edge attributes (delay,
//!    bandwidth, OS type, …) carry an [`attr::AttrValue`] and are keyed by an
//!    [`attr::AttrId`] interned per network in an [`attr::AttrSchema`]. The
//!    constraint-expression compiler resolves names to ids once, so attribute
//!    lookup during the search is a scan of a tiny inline vector.
//! 3. **Directed and undirected graphs.** The paper's filter-matrix
//!    construction differs for the two cases (§V-A, footnote 3), so the
//!    distinction is a first-class property of the network.
//!
//! The crate also provides small graph algorithms used by the generators and
//! by the Lazy Neighborhood Search (connectivity, BFS, degree statistics) and
//! a cache-friendly bitset ([`bitset::NodeBitSet`]) used for candidate sets.

pub mod algo;
pub mod attr;
pub mod bitset;
pub mod builder;
pub mod graph;
pub mod metrics;

pub use attr::{AttrId, AttrSchema, AttrValue};
pub use bitset::NodeBitSet;
pub use builder::NetworkBuilder;
pub use graph::{Direction, EdgeId, EdgeRef, Network, NodeId};

/// Errors produced by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node name was registered twice.
    DuplicateNodeName(String),
    /// An edge endpoint refers to a node id that does not exist.
    InvalidNode(NodeId),
    /// An edge between the two endpoints already exists.
    DuplicateEdge(NodeId, NodeId),
    /// A self-loop was requested but the builder forbids them.
    SelfLoop(NodeId),
    /// Attribute value type conflicts with a previously recorded type.
    AttrTypeConflict {
        /// Attribute name whose type conflicted.
        name: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateNodeName(n) => write!(f, "duplicate node name: {n}"),
            GraphError::InvalidNode(id) => write!(f, "invalid node id: {}", id.index()),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge: ({}, {})", a.index(), b.index())
            }
            GraphError::SelfLoop(id) => write!(f, "self loop on node {}", id.index()),
            GraphError::AttrTypeConflict { name } => {
                write!(f, "attribute type conflict for `{name}`")
            }
        }
    }
}

impl std::error::Error for GraphError {}

//! Topology metrics used to sanity-check generated networks against the
//! shapes reported in the paper (edge density of the PlanetLab trace,
//! power-law-ish degree distribution of BRITE graphs, …).

use crate::algo::bfs_distances;
use crate::graph::{Network, NodeId};

/// Edge density: |E| divided by the maximum possible edge count for the
/// graph's direction mode. Zero for graphs with fewer than two nodes.
pub fn density(net: &Network) -> f64 {
    let n = net.node_count() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let max = if net.is_undirected() {
        n * (n - 1.0) / 2.0
    } else {
        n * (n - 1.0)
    };
    net.edge_count() as f64 / max
}

/// Histogram of total degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(net: &Network) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in net.node_ids() {
        let d = net.total_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Mean total degree.
pub fn mean_degree(net: &Network) -> f64 {
    let n = net.node_count();
    if n == 0 {
        return 0.0;
    }
    let total: usize = net.node_ids().map(|v| net.total_degree(v)).sum();
    total as f64 / n as f64
}

/// Maximum total degree.
pub fn max_degree(net: &Network) -> usize {
    net.node_ids()
        .map(|v| net.total_degree(v))
        .max()
        .unwrap_or(0)
}

/// Exact hop-count diameter via all-sources BFS; `None` when the graph is
/// disconnected or empty. Quadratic — fine for the network sizes in the
/// paper's evaluation, and only used in tests/reports.
pub fn diameter(net: &Network) -> Option<u32> {
    let n = net.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0u32;
    for s in net.node_ids() {
        let dist = bfs_distances(net, s);
        for d in dist {
            match d {
                Some(x) => best = best.max(x),
                None => return None,
            }
        }
    }
    Some(best)
}

/// Approximate diameter from `samples` BFS sources (deterministic stride
/// sampling). Lower bound of the true diameter.
pub fn diameter_sampled(net: &Network, samples: usize) -> Option<u32> {
    let n = net.node_count();
    if n == 0 || samples == 0 {
        return None;
    }
    let stride = (n / samples.min(n)).max(1);
    let mut best = 0u32;
    for s in (0..n).step_by(stride) {
        let dist = bfs_distances(net, NodeId(s as u32));
        for d in dist.into_iter().flatten() {
            best = best.max(d);
        }
    }
    Some(best)
}

/// Global clustering coefficient (transitivity) for undirected graphs:
/// 3·triangles / open-or-closed triplets. Returns 0 when no triplets exist.
pub fn clustering_coefficient(net: &Network) -> f64 {
    assert!(
        net.is_undirected(),
        "clustering defined for undirected graphs"
    );
    let mut triangles = 0usize;
    let mut triplets = 0usize;
    for v in net.node_ids() {
        let d = net.degree(v);
        triplets += d * d.saturating_sub(1) / 2;
        let ns = net.neighbors(v);
        for i in 0..ns.len() {
            for j in (i + 1)..ns.len() {
                if net.has_edge(ns[i].0, ns[j].0) {
                    triangles += 1;
                }
            }
        }
    }
    if triplets == 0 {
        return 0.0;
    }
    // Each triangle is counted once at each of its three vertices.
    triangles as f64 / triplets as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn clique(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(ids[i], ids[j]);
            }
        }
        g
    }

    #[test]
    fn clique_metrics() {
        let g = clique(5);
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(mean_degree(&g), 4.0);
        assert_eq!(max_degree(&g), 4);
        assert_eq!(diameter(&g), Some(1));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_metrics() {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        assert_eq!(diameter(&g), Some(3));
        assert_eq!(clustering_coefficient(&g), 0.0);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 2, 2]); // two endpoints deg 1, two inner deg 2
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let mut g = clique(3);
        g.add_node("island");
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn sampled_diameter_lower_bounds_exact() {
        let g = clique(8);
        let exact = diameter(&g).unwrap();
        let approx = diameter_sampled(&g, 3).unwrap();
        assert!(approx <= exact);
        assert_eq!(approx, 1);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Network::new(Direction::Undirected);
        assert_eq!(density(&g), 0.0);
        assert_eq!(mean_degree(&g), 0.0);
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter_sampled(&g, 4), None);
    }
}

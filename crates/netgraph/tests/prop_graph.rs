//! Property-based tests for the graph substrate.

use netgraph::{algo, bitset::NodeBitSet, Direction, Network, NodeId};
use proptest::prelude::*;

/// Strategy: a random undirected graph as (node_count, edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> Network {
    let mut g = Network::new(Direction::Undirected);
    for i in 0..n {
        g.add_node(format!("n{i}"));
    }
    for &(u, v) in edges {
        let (u, v) = (NodeId(u), NodeId(v));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

proptest! {
    #[test]
    fn handshake_lemma((n, edges) in arb_graph(40)) {
        let g = build(n, &edges);
        let degree_sum: usize = g.node_ids().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn components_partition_nodes((n, edges) in arb_graph(40)) {
        let g = build(n, &edges);
        let comps = algo::connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        // Each node appears exactly once.
        let mut seen = vec![false; g.node_count()];
        for c in &comps {
            for &v in c {
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
        prop_assert_eq!(comps.len() == 1, algo::is_connected(&g));
    }

    #[test]
    fn bfs_reaches_exactly_the_component((n, edges) in arb_graph(40)) {
        let g = build(n, &edges);
        let comps = algo::connected_components(&g);
        let start = comps[0][0];
        let order = algo::bfs_order(&g, start);
        prop_assert_eq!(order.len(), comps[0].len());
    }

    #[test]
    fn induced_subgraph_edge_subset((n, edges) in arb_graph(30), pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..10)) {
        let g = build(n, &edges);
        let mut keep: Vec<NodeId> = pick
            .iter()
            .map(|ix| NodeId(ix.index(g.node_count()) as u32))
            .collect();
        keep.sort();
        keep.dedup();
        let (sub, origin) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.len());
        // Every subgraph edge corresponds to a host edge between the origins.
        for e in sub.edge_refs() {
            let (s, d) = (origin[e.src.index()], origin[e.dst.index()]);
            prop_assert!(g.has_edge(s, d));
        }
        // Every host edge between kept nodes is present in the subgraph.
        let mut expected = 0;
        for (i, &u) in keep.iter().enumerate() {
            for &v in keep.iter().skip(i + 1) {
                if g.has_edge(u, v) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(sub.edge_count(), expected);
    }

    #[test]
    fn bitset_matches_btreeset(ops in proptest::collection::vec((0u32..256, any::<bool>()), 0..200)) {
        let mut bs = NodeBitSet::new(256);
        let mut model = std::collections::BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                bs.insert(NodeId(id));
                model.insert(id);
            } else {
                bs.remove(NodeId(id));
                model.remove(&id);
            }
        }
        prop_assert_eq!(bs.len(), model.len());
        let got: Vec<u32> = bs.iter().map(|n| n.0).collect();
        let want: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bitset_demorgan(a in proptest::collection::btree_set(0u32..128, 0..64),
                       b in proptest::collection::btree_set(0u32..128, 0..64)) {
        let sa = NodeBitSet::from_iter(128, a.iter().map(|&i| NodeId(i)));
        let sb = NodeBitSet::from_iter(128, b.iter().map(|&i| NodeId(i)));
        // a \ b == a ∩ complement(b)
        let mut diff = sa.clone();
        diff.subtract(&sb);
        let mut comp_b = NodeBitSet::full(128);
        comp_b.subtract(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&comp_b);
        prop_assert_eq!(diff, inter);
    }
}

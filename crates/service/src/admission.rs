//! Admission control, load shedding and overload telemetry.
//!
//! PR 4–5 made the service warm and burst-deduplicating, but left it
//! **unbounded**: planner queue depth, group size and in-flight dedup
//! waiters could all grow without limit, so a sustained oversubscribed
//! burst degraded into latency collapse instead of graceful
//! degradation. This module is the missing resilience layer:
//!
//! * [`AdmissionPolicy`] bounds the three unbounded dimensions
//!   (queue depth, group size, dedup waiters) and picks what happens to
//!   the excess ([`ShedMode`]): a deterministic
//!   [`ServiceError::Overloaded`](crate::ServiceError::Overloaded)
//!   rejection, or degradation to a fast timed-out
//!   `Inconclusive` — the ℓp-Box ADMM philosophy (best-effort bounded
//!   answers beat queueing forever) applied at the service level;
//! * [`Priority`] orders requests for shedding: when the queue is full,
//!   the lowest-priority **newest-arrival** queued request is evicted
//!   to make room for a higher-priority arrival, so reservation commits
//!   and monitor-driven re-checks ([`Priority::High`]) outrank
//!   speculative probes ([`Priority::Low`]);
//! * [`ServiceConfig`] is the per-service knob block (builder style):
//!   the admission policy, the previously hard-coded parked-scratch and
//!   parked-pool-thread caps, and a [`FaultPlan`] for chaos testing;
//! * `OverloadStats` (exposed through
//!   [`ServiceTelemetry`](crate::ServiceTelemetry)) carries the
//!   queue-depth gauge, per-reason shed counters, the dispatch-latency
//!   EWMA that powers deadline-aware enqueue shedding, and fixed-bucket
//!   queue-wait / dispatch-latency histograms.
//!
//! ## Accounting invariant
//!
//! Every submitted planner request resolves exactly once, so the
//! counters partition: `accepted + shed_total == submitted` whenever the
//! queue is drained. A request sheds either *at* submit (bounds or a
//! hopeless deadline) or *after* admission (evicted by a
//! higher-priority arrival — its provisional `accepted` credit moves to
//! the shed column); it never double-counts. The chaos harness
//! (`tests/chaos.rs`) asserts this under randomized interleavings.

use netembed::{HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-request importance, consulted only under overload: admission
/// sheds strictly lower-priority work first and never evicts an equal
/// or higher priority. The default ([`Priority::Normal`]) keeps plain
/// clients symmetric; infrastructure traffic that *must* land
/// (reservation commits, monitor-driven re-verification sweeps) should
/// submit [`Priority::High`], and speculative probes (prefetches,
/// negotiation look-aheads) [`Priority::Low`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Sheds first: speculative or retryable work.
    Low,
    /// The default for plain client queries.
    #[default]
    Normal,
    /// Sheds last: control-plane traffic (reservations, monitors).
    High,
}

/// What happens to a request the admission policy refuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedMode {
    /// Fail fast and loud: the submitter gets a deterministic
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded)
    /// carrying the [`ShedReason`]. Right for clients with their own
    /// retry/backoff logic.
    #[default]
    Reject,
    /// Degrade instead of failing: the request resolves as a fast
    /// timed-out `Inconclusive` — observably identical to a request
    /// whose deadline died in the queue, which is exactly what
    /// admission predicted would happen. Right for callers that treat
    /// `Inconclusive` as "try again later" anyway.
    DegradeInconclusive,
}

/// Why a request was shed. Each variant maps to its own telemetry
/// counter ([`ShedCounters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// Total queued requests (across all pending groups) reached
    /// [`AdmissionPolicy::max_queue_depth`] and no lower-priority
    /// victim existed.
    QueueFull,
    /// The request's coalescing group reached
    /// [`AdmissionPolicy::max_group_size`] and no lower-priority
    /// group member could be evicted.
    GroupFull,
    /// The request's deadline cannot survive the estimated queue wait
    /// (pending groups × dispatch-latency EWMA): it would die in the
    /// queue, so it is answered now instead of occupying a slot.
    DeadlineHopeless,
    /// The filter cache's in-flight build for this key already has
    /// [`AdmissionPolicy::max_dedup_waiters`] waiters blocked on it.
    DedupWaitersFull,
    /// The service's model feed is degraded and the [`StalenessPolicy`]
    /// refuses to serve from the stale snapshot: either the policy is
    /// [`StalenessPolicy::Block`], or the feed's staleness lag exceeded
    /// [`StalenessPolicy::ServeStale`]'s `max_lag`.
    StaleModel,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "planner queue depth limit reached"),
            ShedReason::GroupFull => write!(f, "coalescing group size limit reached"),
            ShedReason::DeadlineHopeless => {
                write!(f, "deadline cannot survive the estimated queue wait")
            }
            ShedReason::DedupWaitersFull => {
                write!(f, "in-flight filter build already has the maximum waiters")
            }
            ShedReason::StaleModel => {
                write!(f, "model feed degraded beyond the staleness policy")
            }
        }
    }
}

/// How the service serves while its model feed is degraded (the feed is
/// catching up, resyncing, or stalled — see
/// [`FeedState`](crate::feed::FeedState)). Irrelevant while the feed is
/// live (or when no feed is attached at all): fresh models serve
/// normally under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessPolicy {
    /// Answer from the last good epoch, stamping every response with a
    /// [`Staleness`](crate::Staleness) marker, until the feed's lag (in
    /// deltas behind the stream head) exceeds `max_lag` — beyond that,
    /// submits shed as [`ShedReason::StaleModel`] through the normal
    /// [`AdmissionPolicy`] machinery. `max_lag: u64::MAX` (the default)
    /// reproduces the historical feed-less behaviour: serve whatever
    /// the registry holds, forever.
    ServeStale {
        /// Maximum tolerated staleness, in deltas behind the feed head.
        max_lag: u64,
    },
    /// Never answer from a stale snapshot: every submit during feed
    /// degradation sheds as [`ShedReason::StaleModel`].
    Block,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy::ServeStale { max_lag: u64::MAX }
    }
}

/// Bounds on the service's formerly-unbounded queues, plus the shed
/// behaviour. The default is **unbounded** (`usize::MAX` everywhere) so
/// existing callers see no behaviour change; production deployments set
/// explicit bounds via [`ServiceConfig`].
///
/// Since the planner's queue became sharded, `max_queue_depth` and
/// eviction scans are interpreted **per dispatch shard** (with one
/// shard this is exactly the old global meaning), while
/// `max_total_queue_depth` optionally caps the whole service.
/// `max_dispatch_burst` is the cross-shard fairness bound: one
/// dispatcher turn runs at most that many members of one group before
/// re-queueing the rest behind already-waiting groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum requests queued across the pending groups of **one
    /// planner shard**. Eviction under this bound also stays within the
    /// shard (requests never displace work in another dispatch lane).
    pub max_queue_depth: usize,
    /// Maximum admitted-but-unresolved requests across **all** shards.
    /// Violations always shed the incoming request — there is no
    /// cross-shard eviction, because touching another lane's queue
    /// would serialize the lanes on each other.
    pub max_total_queue_depth: usize,
    /// Maximum members in one coalescing group.
    pub max_group_size: usize,
    /// Maximum group members one dispatcher turn executes before the
    /// remainder is re-queued as a fresh group *behind* every group
    /// already waiting in the shard — the bound on how long a hot key
    /// can make a cold key wait. Coalescing survives the split: the
    /// re-queued members score filter-cache hits, so the burst identity
    /// `Σhits + Σcoalesced == N − 1` is unchanged.
    pub max_dispatch_burst: usize,
    /// Maximum threads allowed to block on one in-flight filter build
    /// (the cache's dedup table); the excess is shed instead of piling
    /// onto a single build's completion.
    pub max_dedup_waiters: usize,
    /// What shed requests resolve to.
    pub shed: ShedMode,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_queue_depth: usize::MAX,
            max_total_queue_depth: usize::MAX,
            max_group_size: usize::MAX,
            max_dispatch_burst: usize::MAX,
            max_dedup_waiters: usize::MAX,
            shed: ShedMode::default(),
        }
    }
}

impl AdmissionPolicy {
    /// Bound one planner shard's queue depth (clamped to ≥ 1).
    pub fn max_queue_depth(mut self, n: usize) -> Self {
        self.max_queue_depth = n.max(1);
        self
    }

    /// Bound the service-wide admitted-but-unresolved request count
    /// across all shards (clamped to ≥ 1).
    pub fn max_total_queue_depth(mut self, n: usize) -> Self {
        self.max_total_queue_depth = n.max(1);
        self
    }

    /// Bound one coalescing group's size (clamped to ≥ 1).
    pub fn max_group_size(mut self, n: usize) -> Self {
        self.max_group_size = n.max(1);
        self
    }

    /// Bound one dispatcher turn's group burst (clamped to ≥ 1).
    pub fn max_dispatch_burst(mut self, n: usize) -> Self {
        self.max_dispatch_burst = n.max(1);
        self
    }

    /// Bound the waiters on one in-flight filter build.
    pub fn max_dedup_waiters(mut self, n: usize) -> Self {
        self.max_dedup_waiters = n;
        self
    }

    /// Choose the shed behaviour.
    pub fn shed(mut self, mode: ShedMode) -> Self {
        self.shed = mode;
        self
    }
}

/// Deterministic fault injection for the chaos harness: counters tick
/// on every candidate site, firing every `N`-th time. `0` disables a
/// site (the default), so production services pay one relaxed atomic
/// load per request at most. Injection is *semantic*, not memory-unsafe:
/// an injected panic exercises the planner's per-member panic isolation
/// (the member gets `ServiceError::Internal`, group-mates are
/// unaffected); an injected build truncation exercises the cache's
/// abandon-and-takeover chain (the designated builder abandons its
/// ticket as if its deadline had cut the build short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic inside every `N`-th planner member run (0 = never).
    pub panic_every_nth_run: u64,
    /// Abandon every `N`-th designated filter build (0 = never).
    pub truncate_every_nth_build: u64,
}

/// The live injector: a [`FaultPlan`] plus its trigger counters.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    runs: AtomicU64,
    builds: AtomicU64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            runs: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// True when the current planner member run should panic.
    pub(crate) fn should_panic_run(&self) -> bool {
        fire(&self.runs, self.plan.panic_every_nth_run)
    }

    /// True when the current designated build should be abandoned as if
    /// deadline-truncated.
    pub(crate) fn should_truncate_build(&self) -> bool {
        fire(&self.builds, self.plan.truncate_every_nth_build)
    }
}

fn fire(counter: &AtomicU64, every: u64) -> bool {
    every != 0 && (counter.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(every)
}

/// Per-service configuration (builder style): admission policy, the
/// scratch/pool parking caps that used to be hard-coded constants, and
/// the chaos-testing fault plan. Pass to
/// [`NetEmbedService::with_config`](crate::NetEmbedService::with_config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceConfig {
    /// Warm scratches parked between prepared queries. `None` (the
    /// default) is **adaptive**: the service derives the cap from its
    /// shard count and the observed peak of concurrently leased
    /// scratches, never below the historical fixed cap of 8 (see
    /// [`NetEmbedService::effective_max_parked_scratches`](crate::NetEmbedService::effective_max_parked_scratches)).
    /// An explicit `Some` value is authoritative.
    pub max_parked_scratches: Option<usize>,
    /// A scratch whose worker pool exceeds this many threads is dropped
    /// at check-in instead of parked. `None` (the default) is adaptive
    /// like `max_parked_scratches`, never below the historical fixed
    /// cap of 32; an explicit `Some` value is authoritative.
    pub max_parked_pool_threads: Option<usize>,
    /// Number of planner dispatch shards. `None` (the default) resolves
    /// at service construction: the `NETEMBED_PLANNER_SHARDS`
    /// environment variable if set, else the machine's available
    /// parallelism (capped at 8). An explicit `Some` always wins over
    /// the environment, so tests that pin a shard count stay pinned
    /// under CI matrices that export the variable.
    pub planner_shards: Option<usize>,
    /// Queue bounds and shed behaviour.
    pub admission: AdmissionPolicy,
    /// Serving behaviour while the model feed is degraded. The default
    /// ([`StalenessPolicy::ServeStale`] with unlimited lag) matches the
    /// historical feed-less behaviour.
    pub staleness: StalenessPolicy,
    /// Chaos fault injection (disabled by default).
    pub faults: FaultPlan,
}

impl ServiceConfig {
    /// Set an explicit (authoritative) parked-scratch cap.
    pub fn max_parked_scratches(mut self, n: usize) -> Self {
        self.max_parked_scratches = Some(n);
        self
    }

    /// Set an explicit parked-pool-thread cap (clamped to ≥ 1).
    pub fn max_parked_pool_threads(mut self, n: usize) -> Self {
        self.max_parked_pool_threads = Some(n.max(1));
        self
    }

    /// Pin the planner shard count (clamped to ≥ 1). One shard
    /// reproduces the pre-sharding fully-serialized dispatch exactly.
    pub fn planner_shards(mut self, n: usize) -> Self {
        self.planner_shards = Some(n.max(1));
        self
    }

    /// Set the admission policy.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Set the degraded-feed serving policy.
    pub fn staleness(mut self, policy: StalenessPolicy) -> Self {
        self.staleness = policy;
        self
    }

    /// Set the fault-injection plan (chaos testing only).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// Snapshot of the per-reason shed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShedCounters {
    /// Requests shed because the planner queue was full.
    pub queue_full: u64,
    /// Requests shed because their coalescing group was full.
    pub group_full: u64,
    /// Requests shed at enqueue because their deadline could not
    /// survive the estimated queue wait.
    pub deadline_hopeless: u64,
    /// Requests shed because an in-flight build's waiter cap was hit.
    pub dedup_waiters_full: u64,
    /// Requests shed because the model feed was degraded beyond the
    /// [`StalenessPolicy`].
    pub stale_model: u64,
}

impl ShedCounters {
    /// Total sheds across all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.group_full
            + self.deadline_hopeless
            + self.dedup_waiters_full
            + self.stale_model
    }

    /// Accumulate another counter block into this one — the roll-up
    /// primitive for per-shard telemetry.
    pub fn merge(&mut self, other: &ShedCounters) {
        self.queue_full += other.queue_full;
        self.group_full += other.group_full;
        self.deadline_hopeless += other.deadline_hopeless;
        self.dedup_waiters_full += other.dedup_waiters_full;
        self.stale_model += other.stale_model;
    }
}

/// EWMA smoothing: `new = old − old/4 + sample/4` (α = ¼) — reactive
/// enough to track a load shift within a few groups, smooth enough that
/// one outlier dispatch doesn't swing admission.
const EWMA_SHIFT: u32 = 2;

/// The per-shard overload instrumentation: one block of relaxed
/// atomics per planner dispatch shard, shared by every planner of a
/// service (so multiple planners over one service report one coherent
/// per-lane picture; the service-wide view is the bucket-wise roll-up
/// across shards, computed in
/// [`telemetry`](crate::NetEmbedService::telemetry)). All counters are
/// lifetime totals; `queue_depth` is a gauge. The ledger identity
/// `accepted + shed == submitted` holds **per shard** — every request
/// is routed to exactly one shard and all of its counter traffic stays
/// there — and therefore also in the roll-up.
#[derive(Debug, Default)]
pub(crate) struct OverloadStats {
    submitted: AtomicU64,
    accepted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_group_full: AtomicU64,
    shed_deadline: AtomicU64,
    shed_dedup: AtomicU64,
    shed_stale: AtomicU64,
    /// Admitted-but-unresolved planner requests. Every admission path
    /// increments exactly once and every resolution path (delivery,
    /// cancellation at any lifecycle stage, eviction) decrements exactly
    /// once — audited by `tests/chaos.rs` and the planner's
    /// ticket-lifecycle regression tests.
    queue_depth: AtomicU64,
    /// EWMA of recent group dispatch wall times, in nanoseconds.
    ewma_dispatch_nanos: AtomicU64,
    pub(crate) queue_wait: LatencyHistogram,
    pub(crate) dispatch: LatencyHistogram,
}

impl OverloadStats {
    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request passed admission: provisional `accepted` credit plus a
    /// queue-depth slot.
    pub(crate) fn record_admitted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused at submit (it never took a queue slot).
    pub(crate) fn record_shed(&self, reason: ShedReason) {
        self.shed_counter(reason).fetch_add(1, Ordering::Relaxed);
    }

    /// An *admitted* request was evicted by a higher-priority arrival:
    /// its provisional `accepted` credit moves to the shed column and
    /// its queue slot frees — `accepted + shed == submitted` stays
    /// exact.
    pub(crate) fn record_evicted(&self, reason: ShedReason) {
        self.accepted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shed_counter(reason).fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was shed *mid-dispatch* (dedup waiter cap):
    /// `accepted` → shed, but the queue-depth slot stays — delivery of
    /// the shed resolution releases it like any other member's.
    pub(crate) fn record_shed_admitted(&self, reason: ShedReason) {
        self.accepted.fetch_sub(1, Ordering::Relaxed);
        self.shed_counter(reason).fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request resolved (delivered, discarded at delivery,
    /// or cancelled): its queue slot frees.
    pub(crate) fn release_slot(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn shed_counter(&self, reason: ShedReason) -> &AtomicU64 {
        match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::GroupFull => &self.shed_group_full,
            ShedReason::DeadlineHopeless => &self.shed_deadline,
            ShedReason::DedupWaitersFull => &self.shed_dedup,
            ShedReason::StaleModel => &self.shed_stale,
        }
    }

    /// Fold one group's dispatch wall time into the EWMA.
    pub(crate) fn observe_dispatch(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        // Racy read-modify-write on purpose: a lost update under
        // contention skews the estimate by one sample, which the next
        // sample corrects — admission needs a trend, not a ledger.
        let old = self.ewma_dispatch_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - (old >> EWMA_SHIFT) + (sample >> EWMA_SHIFT)
        };
        self.ewma_dispatch_nanos.store(new, Ordering::Relaxed);
    }

    /// Estimated wait for a request enqueued behind `groups_ahead`
    /// pending groups. Zero until the first dispatch has been observed
    /// (no evidence ⇒ never shed on deadline).
    pub(crate) fn estimated_queue_wait(&self, groups_ahead: usize) -> Duration {
        let ewma = self.ewma_dispatch_nanos.load(Ordering::Relaxed);
        Duration::from_nanos(ewma.saturating_mul(groups_ahead as u64))
    }

    pub(crate) fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    pub(crate) fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed) as usize
    }

    pub(crate) fn shed_counters(&self) -> ShedCounters {
        ShedCounters {
            queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            group_full: self.shed_group_full.load(Ordering::Relaxed),
            deadline_hopeless: self.shed_deadline.load(Ordering::Relaxed),
            dedup_waiters_full: self.shed_dedup.load(Ordering::Relaxed),
            stale_model: self.shed_stale.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.queue_wait.snapshot()
    }

    pub(crate) fn dispatch_snapshot(&self) -> HistogramSnapshot {
        self.dispatch.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_normal_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn policy_builder_clamps_and_sets() {
        let p = AdmissionPolicy::default()
            .max_queue_depth(0)
            .max_total_queue_depth(0)
            .max_group_size(0)
            .max_dispatch_burst(0)
            .max_dedup_waiters(3)
            .shed(ShedMode::DegradeInconclusive);
        assert_eq!(p.max_queue_depth, 1, "zero depth would deadlock; clamp");
        assert_eq!(p.max_total_queue_depth, 1);
        assert_eq!(p.max_group_size, 1);
        assert_eq!(p.max_dispatch_burst, 1, "zero burst would never dispatch");
        assert_eq!(p.max_dedup_waiters, 3);
        assert_eq!(p.shed, ShedMode::DegradeInconclusive);
        // The default policy is fully open: no behaviour change for
        // services that never set bounds.
        let open = AdmissionPolicy::default();
        assert_eq!(open.max_queue_depth, usize::MAX);
        assert_eq!(open.max_total_queue_depth, usize::MAX);
        assert_eq!(open.max_group_size, usize::MAX);
        assert_eq!(open.max_dispatch_burst, usize::MAX);
        assert_eq!(open.max_dedup_waiters, usize::MAX);
        assert_eq!(open.shed, ShedMode::Reject);
    }

    #[test]
    fn service_config_park_caps_and_shards_are_optional() {
        // Defaults are adaptive (None); builders pin explicit values.
        let d = ServiceConfig::default();
        assert_eq!(d.max_parked_scratches, None);
        assert_eq!(d.max_parked_pool_threads, None);
        assert_eq!(d.planner_shards, None);
        let c = ServiceConfig::default()
            .max_parked_scratches(3)
            .max_parked_pool_threads(0)
            .planner_shards(0);
        assert_eq!(c.max_parked_scratches, Some(3));
        assert_eq!(c.max_parked_pool_threads, Some(1), "clamped to ≥ 1");
        assert_eq!(c.planner_shards, Some(1), "clamped to ≥ 1");
    }

    #[test]
    fn shed_counters_merge_sums_per_reason() {
        let mut a = ShedCounters {
            queue_full: 1,
            group_full: 2,
            deadline_hopeless: 3,
            dedup_waiters_full: 4,
            stale_model: 5,
        };
        let b = ShedCounters {
            queue_full: 10,
            group_full: 20,
            deadline_hopeless: 30,
            dedup_waiters_full: 40,
            stale_model: 50,
        };
        a.merge(&b);
        assert_eq!(a.queue_full, 11);
        assert_eq!(a.group_full, 22);
        assert_eq!(a.deadline_hopeless, 33);
        assert_eq!(a.dedup_waiters_full, 44);
        assert_eq!(a.stale_model, 55);
        assert_eq!(a.total(), 165);
    }

    #[test]
    fn staleness_policy_defaults_to_unbounded_serve_stale() {
        assert_eq!(
            StalenessPolicy::default(),
            StalenessPolicy::ServeStale { max_lag: u64::MAX }
        );
        let c = ServiceConfig::default().staleness(StalenessPolicy::Block);
        assert_eq!(c.staleness, StalenessPolicy::Block);
    }

    #[test]
    fn fault_injector_fires_every_nth() {
        let inj = FaultInjector::new(FaultPlan {
            panic_every_nth_run: 3,
            truncate_every_nth_build: 0,
        });
        let fired: Vec<bool> = (0..6).map(|_| inj.should_panic_run()).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        // Disabled sites never fire.
        assert!((0..100).all(|_| !inj.should_truncate_build()));
    }

    #[test]
    fn overload_accounting_partitions() {
        let stats = OverloadStats::default();
        // 3 submitted: one admitted+resolved, one shed at submit, one
        // admitted then evicted.
        for _ in 0..3 {
            stats.record_submitted();
        }
        stats.record_admitted();
        stats.release_slot();
        stats.record_shed(ShedReason::QueueFull);
        stats.record_admitted();
        stats.record_evicted(ShedReason::GroupFull);
        assert_eq!(stats.submitted(), 3);
        assert_eq!(stats.accepted(), 1);
        assert_eq!(stats.shed_counters().total(), 2);
        assert_eq!(
            stats.accepted() + stats.shed_counters().total(),
            stats.submitted()
        );
        assert_eq!(stats.queue_depth(), 0, "all slots released");
    }

    #[test]
    fn ewma_tracks_dispatch_latency() {
        let stats = OverloadStats::default();
        assert_eq!(
            stats.estimated_queue_wait(10),
            Duration::ZERO,
            "no evidence, no shedding"
        );
        stats.observe_dispatch(Duration::from_millis(8));
        let est1 = stats.estimated_queue_wait(1);
        assert_eq!(est1, Duration::from_millis(8), "first sample seeds");
        assert_eq!(stats.estimated_queue_wait(3), est1 * 3);
        // Repeated fast samples pull the estimate down geometrically.
        for _ in 0..40 {
            stats.observe_dispatch(Duration::from_micros(100));
        }
        assert!(stats.estimated_queue_wait(1) < Duration::from_millis(1));
    }
}
